#include "verify/diagnostics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace netseer::verify {
namespace {

Diagnostic make(Severity severity, std::string pass, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.pass = std::move(pass);
  d.message = std::move(message);
  return d;
}

TEST(ReportTest, EmptyReportIsOkEvenInStrictMode) {
  Report report;
  EXPECT_TRUE(report.ok(false));
  EXPECT_TRUE(report.ok(true));
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 0u);
  EXPECT_NE(report.render_text().find("0 error(s), 0 warning(s) across 0 pass(es)"),
            std::string::npos);
}

TEST(ReportTest, ErrorsAlwaysFail) {
  Report report;
  report.add(make(Severity::kError, "acl", "dead rule"));
  EXPECT_FALSE(report.ok(false));
  EXPECT_FALSE(report.ok(true));
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 0u);
}

TEST(ReportTest, WarningsOnlyFailInStrictMode) {
  Report report;
  report.add(make(Severity::kWarning, "capacity", "near the bound"));
  EXPECT_TRUE(report.ok(false));
  EXPECT_FALSE(report.ok(true));
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(ReportTest, MarkPassDeduplicates) {
  Report report;
  report.mark_pass("resources");
  report.mark_pass("capacity");
  report.mark_pass("resources");
  ASSERT_EQ(report.passes_run().size(), 2u);
  EXPECT_EQ(report.passes_run()[0], "resources");
  EXPECT_EQ(report.passes_run()[1], "capacity");
}

TEST(ReportTest, MergeConcatenatesDiagnosticsAndDedupesPasses) {
  Report a;
  a.mark_pass("acl");
  a.add(make(Severity::kError, "acl", "dead rule"));

  Report b;
  b.mark_pass("acl");
  b.mark_pass("capacity");
  b.add(make(Severity::kWarning, "capacity", "near the bound"));

  a.merge(b);
  EXPECT_EQ(a.diagnostics().size(), 2u);
  EXPECT_EQ(a.error_count(), 1u);
  EXPECT_EQ(a.warning_count(), 1u);
  ASSERT_EQ(a.passes_run().size(), 2u);
  EXPECT_EQ(a.passes_run()[1], "capacity");
}

TEST(ReportTest, RepeatedMergeKeepsSummaryPassCountStable) {
  // Regression: folding N per-switch reports that all ran the same passes
  // must count each pass once in the summary, not N times.
  Report total;
  for (int i = 0; i < 5; ++i) {
    Report per_switch;
    per_switch.mark_pass("resources");
    per_switch.mark_pass("capacity");
    per_switch.add(make(Severity::kError, "capacity", "overflow on switch " + std::to_string(i)));
    total.merge(per_switch);
  }
  EXPECT_EQ(total.passes_run().size(), 2u);
  EXPECT_EQ(total.diagnostics().size(), 5u);
  EXPECT_NE(total.render_text().find("5 error(s), 0 warning(s) across 2 pass(es)"),
            std::string::npos);
}

TEST(ReportTest, RenderTextIncludesSwitchComponentAndBudget) {
  Report report;
  report.mark_pass("resources");
  Diagnostic d = make(Severity::kError, "resources", "TCAM budget exceeded");
  d.switch_name = "tor0-0";
  d.component = "TCAM";
  d.measured = 1.074;
  d.limit = 1.0;
  report.add(std::move(d));

  const std::string text = report.render_text();
  EXPECT_NE(text.find("error [resources] tor0-0 TCAM: TCAM budget exceeded"),
            std::string::npos);
  EXPECT_NE(text.find("(measured 1.074, limit 1)"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 0 warning(s) across 1 pass(es)"), std::string::npos);
}

TEST(ReportTest, RenderJsonEscapesAndStructures) {
  Report report;
  report.mark_pass("acl");
  Diagnostic d = make(Severity::kWarning, "acl", "message with \"quotes\"\nand newline");
  d.switch_name = "tor0-0";
  d.switch_id = 7;
  report.add(std::move(d));

  const std::string json = report.render_json();
  EXPECT_NE(json.find("\"passes\": [\"acl\"]"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"switch_id\": 7"), std::string::npos);
  EXPECT_NE(json.find("message with \\\"quotes\\\"\\nand newline"), std::string::npos);
}

TEST(ReportTest, RenderJsonEmitsNullForUnknownSwitchId) {
  Report report;
  report.add(make(Severity::kError, "capacity", "fabric-wide finding"));
  EXPECT_NE(report.render_json().find("\"switch_id\": null"), std::string::npos);
}

// ---- JSON round-trip golden test --------------------------------------------
// A minimal strict JSON reader (objects, arrays, strings with all escape
// forms, numbers, null) — just enough to prove render_json() emits valid
// JSON whose strings decode back to the original bytes. No external JSON
// dependency is available, which is exactly why the escaping must be
// proven here rather than assumed.

struct JsonValue {
  enum class Type { kNull, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  [[nodiscard]] bool parse(JsonValue& out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return string(out.string);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out.type = JsonValue::Type::kNull;
      return true;
    }
    return number(out);
  }

  bool object(JsonValue& out) {
    if (!consume('{')) return false;
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      skip_ws();
      if (!string(key)) return false;
      if (!consume(':')) return false;
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace(std::move(key), std::move(member));
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool array(JsonValue& out) {
    if (!consume('[')) return false;
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // must be escaped
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          std::uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<std::uint32_t>(h - 'A' + 10);
            else return false;
          }
          if (code > 0x7f) return false;  // renderer only \u-escapes control bytes
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(ReportJsonRoundTripTest, HostileStringsSurviveAStrictParser) {
  // Every byte class a diagnostic can carry: quotes, backslashes, all
  // named escapes, raw control bytes, UTF-8 multibyte, and JSON-looking
  // payloads that must stay inert.
  const std::string hostile_message =
      "quote:\" backslash:\\ newline:\n tab:\t cr:\r bs:\b ff:\f bell:\x01\x1f"
      " utf8:\xc3\xa9 json:{\"k\": [1, null]} slash:/";
  const std::string hostile_switch = "tor\"0\\0\n";
  const std::string hostile_component = "ring[\x02]\t\"buf\"";
  const std::string hostile_pass = "acl\\\"pass\n";

  Report report;
  report.mark_pass(hostile_pass);
  Diagnostic d = make(Severity::kWarning, hostile_pass, hostile_message);
  d.switch_name = hostile_switch;
  d.switch_id = 3;
  d.component = hostile_component;
  d.measured = 1.5;
  d.limit = 2.0;
  report.add(std::move(d));

  const std::string json = report.render_json();
  JsonValue root;
  ASSERT_TRUE(JsonReader(json).parse(root)) << json;
  ASSERT_EQ(root.type, JsonValue::Type::kObject);

  const JsonValue& passes = root.object.at("passes");
  ASSERT_EQ(passes.type, JsonValue::Type::kArray);
  ASSERT_EQ(passes.array.size(), 1u);
  EXPECT_EQ(passes.array[0].string, hostile_pass);

  EXPECT_EQ(root.object.at("errors").number, 0.0);
  EXPECT_EQ(root.object.at("warnings").number, 1.0);

  const JsonValue& diags = root.object.at("diagnostics");
  ASSERT_EQ(diags.type, JsonValue::Type::kArray);
  ASSERT_EQ(diags.array.size(), 1u);
  const JsonValue& entry = diags.array[0];
  EXPECT_EQ(entry.object.at("severity").string, "warning");
  EXPECT_EQ(entry.object.at("pass").string, hostile_pass);
  EXPECT_EQ(entry.object.at("switch").string, hostile_switch);
  EXPECT_EQ(entry.object.at("switch_id").number, 3.0);
  EXPECT_EQ(entry.object.at("component").string, hostile_component);
  EXPECT_EQ(entry.object.at("message").string, hostile_message);
  EXPECT_EQ(entry.object.at("measured").number, 1.5);
  EXPECT_EQ(entry.object.at("limit").number, 2.0);
}

TEST(ReportJsonRoundTripTest, NonFiniteBudgetsRenderAsNull) {
  Report report;
  Diagnostic d = make(Severity::kError, "capacity", "unbounded");
  d.measured = std::numeric_limits<double>::infinity();
  report.add(std::move(d));
  JsonValue root;
  ASSERT_TRUE(JsonReader(report.render_json()).parse(root));
  EXPECT_EQ(root.object.at("diagnostics").array[0].object.at("measured").type,
            JsonValue::Type::kNull);
}

}  // namespace
}  // namespace netseer::verify
