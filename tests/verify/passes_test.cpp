#include <gtest/gtest.h>

#include "core/event.h"
#include "fabric/fat_tree.h"
#include "packet/packet.h"
#include "pdp/acl.h"
#include "pdp/switch.h"
#include "sim/simulator.h"
#include "verify/passes.h"

namespace netseer::verify {
namespace {

using packet::Ipv4Addr;
using packet::Ipv4Prefix;

pdp::AclRule rule_any(std::uint16_t id, bool permit) {
  pdp::AclRule rule;
  rule.rule_id = id;
  rule.permit = permit;
  return rule;
}

bool any_component_is(const Report& report, const std::string& component, Severity severity) {
  for (const auto& d : report.diagnostics()) {
    if (d.component == component && d.severity == severity) return true;
  }
  return false;
}

// ---- ACL shadowing ---------------------------------------------------------

TEST(AclSemanticsTest, WildcardCoversSpecificButNotViceVersa) {
  const pdp::AclRule any = rule_any(1, true);
  pdp::AclRule specific = rule_any(2, false);
  specific.src = Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  EXPECT_TRUE(rule_covers(any, specific));
  EXPECT_FALSE(rule_covers(specific, any));
  EXPECT_TRUE(rules_intersect(any, specific));
}

TEST(AclSemanticsTest, ProtoWildcardCoversProtoSpecific) {
  pdp::AclRule tcp_only = rule_any(1, false);
  tcp_only.proto = 6;
  const pdp::AclRule any_proto = rule_any(2, false);
  EXPECT_TRUE(rule_covers(any_proto, tcp_only));
  // A proto-specific rule cannot cover a proto-wildcard one.
  EXPECT_FALSE(rule_covers(tcp_only, any_proto));
  EXPECT_TRUE(rules_intersect(tcp_only, any_proto));
}

TEST(AclSemanticsTest, PortRangeContainmentAndDisjointness) {
  pdp::AclRule wide = rule_any(1, false);
  wide.dport_lo = 1000;
  wide.dport_hi = 2000;
  pdp::AclRule narrow = rule_any(2, false);
  narrow.dport_lo = 1500;
  narrow.dport_hi = 1600;
  pdp::AclRule disjoint = rule_any(3, false);
  disjoint.dport_lo = 5000;
  disjoint.dport_hi = 6000;

  EXPECT_TRUE(rule_covers(wide, narrow));
  EXPECT_FALSE(rule_covers(narrow, wide));
  EXPECT_TRUE(rules_intersect(wide, narrow));
  EXPECT_FALSE(rules_intersect(wide, disjoint));
}

TEST(AclSemanticsTest, DisjointPrefixesNeverIntersect) {
  pdp::AclRule a = rule_any(1, false);
  a.dst = Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  pdp::AclRule b = rule_any(2, true);
  b.dst = Ipv4Prefix{Ipv4Addr::from_octets(192, 168, 0, 0), 16};
  EXPECT_FALSE(rules_intersect(a, b));
  EXPECT_FALSE(rule_covers(a, b));
}

class AclCheckTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  pdp::Switch sw_{sim_, 1, "sw1", pdp::SwitchConfig{}};
};

TEST_F(AclCheckTest, CleanTableProducesNoDiagnostics) {
  pdp::AclRule a = rule_any(1, false);
  a.dst = Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  pdp::AclRule b = rule_any(2, false);
  b.dst = Ipv4Prefix{Ipv4Addr::from_octets(192, 168, 0, 0), 16};
  sw_.acl().add_rule(a);
  sw_.acl().add_rule(b);

  Report report;
  check_acl(report, sw_);
  EXPECT_TRUE(report.diagnostics().empty()) << report.render_text();
}

TEST_F(AclCheckTest, FullyShadowedRuleIsAnError) {
  sw_.acl().add_rule(rule_any(10, true));  // wildcard permit first
  pdp::AclRule deny = rule_any(20, false);
  deny.src = Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  sw_.acl().add_rule(deny);

  Report report;
  check_acl(report, sw_);
  ASSERT_EQ(report.error_count(), 1u);
  const Diagnostic& d = report.diagnostics()[0];
  EXPECT_EQ(d.component, "acl rule 20");
  EXPECT_NE(d.message.find("shadowed by higher-priority rule 10"), std::string::npos);
}

TEST_F(AclCheckTest, ConflictingPartialOverlapIsAWarning) {
  pdp::AclRule deny_net = rule_any(1, false);
  deny_net.src = Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  pdp::AclRule permit_ports = rule_any(2, true);
  permit_ports.dport_lo = 80;
  permit_ports.dport_hi = 80;
  sw_.acl().add_rule(deny_net);
  sw_.acl().add_rule(permit_ports);

  Report report;
  check_acl(report, sw_);
  EXPECT_EQ(report.error_count(), 0u);
  ASSERT_EQ(report.warning_count(), 1u);
  EXPECT_NE(report.diagnostics()[0].message.find("conflicting actions"), std::string::npos);
}

TEST_F(AclCheckTest, ShadowingReportsOneWitnessPerDeadRule) {
  sw_.acl().add_rule(rule_any(1, true));
  sw_.acl().add_rule(rule_any(2, true));  // shadowed by 1 (and only reported once)
  Report report;
  check_acl(report, sw_);
  EXPECT_EQ(report.error_count(), 1u);
}

// ---- Resource fitting ------------------------------------------------------

class ResourceCheckTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  pdp::Switch sw_{sim_, 1, "sw1", pdp::SwitchConfig{}};
  core::NetSeerConfig config_;
};

TEST_F(ResourceCheckTest, DefaultDeploymentFits) {
  Report report;
  check_resources(report, sw_, config_, VerifyOptions{});
  EXPECT_TRUE(report.ok(true)) << report.render_text();
}

TEST_F(ResourceCheckTest, TcamOverflowIsAnErrorNamingTheDominantConsumer) {
  for (std::uint32_t i = 0; i < 15000; ++i) {
    pdp::AclRule rule = rule_any(static_cast<std::uint16_t>(1000 + (i % 60000)), false);
    rule.dst = Ipv4Prefix{Ipv4Addr{(std::uint32_t{172} << 24) | (std::uint32_t{16} << 16) | i},
                          32};
    sw_.acl().add_rule(rule);
  }
  Report report;
  check_resources(report, sw_, config_, VerifyOptions{});
  ASSERT_GE(report.error_count(), 1u);
  bool found = false;
  for (const auto& d : report.diagnostics()) {
    if (d.component != "TCAM") continue;
    found = true;
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_GT(d.measured, 1.0);
    EXPECT_DOUBLE_EQ(d.limit, 1.0);
    EXPECT_NE(d.message.find("largest consumer: tables"), std::string::npos);
  }
  EXPECT_TRUE(found) << report.render_text();
}

TEST_F(ResourceCheckTest, NearBudgetUsageIsAWarningNotAnError) {
  // ~12500 ternary rules land TCAM between the 90% headroom line and the
  // hard budget.
  for (std::uint32_t i = 0; i < 12500; ++i) {
    pdp::AclRule rule = rule_any(static_cast<std::uint16_t>(1000 + (i % 60000)), false);
    rule.dst = Ipv4Prefix{Ipv4Addr{(std::uint32_t{172} << 24) | (std::uint32_t{16} << 16) | i},
                          32};
    sw_.acl().add_rule(rule);
  }
  Report report;
  check_resources(report, sw_, config_, VerifyOptions{});
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_TRUE(any_component_is(report, "TCAM", Severity::kWarning)) << report.render_text();
}

TEST_F(ResourceCheckTest, ModelSramGrowsWithGroupCacheEntries) {
  const pdp::ResourceModel small = build_resource_model(sw_, config_);
  config_.group_cache.entries *= 8;
  const pdp::ResourceModel big = build_resource_model(sw_, config_);
  EXPECT_GT(big.raw_total(pdp::Resource::kSram), small.raw_total(pdp::Resource::kSram));
}

// ---- Recirculation termination ---------------------------------------------

class RecirculationCheckTest : public ::testing::Test {
 protected:
  Report run() {
    Report report;
    check_recirculation(report, config_, mtu_, "sw1", 1);
    return report;
  }

  core::NetSeerConfig config_;
  std::uint32_t mtu_ = packet::kDefaultMtu;
};

TEST_F(RecirculationCheckTest, DefaultsTerminate) {
  const Report report = run();
  EXPECT_TRUE(report.ok(true)) << report.render_text();
}

TEST_F(RecirculationCheckTest, ZeroCebpsNeverCollect) {
  config_.cebp.num_cebps = 0;
  EXPECT_TRUE(any_component_is(run(), "cebp", Severity::kError));
}

TEST_F(RecirculationCheckTest, ZeroBatchSizeLivelocks) {
  config_.cebp.batch_size = 0;
  EXPECT_TRUE(any_component_is(run(), "cebp", Severity::kError));
}

TEST_F(RecirculationCheckTest, ZeroRecircLatencyIsUnbounded) {
  config_.cebp.recirc_latency = 0;
  EXPECT_TRUE(any_component_is(run(), "cebp", Severity::kError));
}

TEST_F(RecirculationCheckTest, FullBatchMustFitTheMtu) {
  // kHeaderSize + 100 * kWireSize = 2410 B > 1500 B MTU.
  config_.cebp.batch_size = 100;
  const Report report = run();
  ASSERT_TRUE(any_component_is(report, "cebp", Severity::kError)) << report.render_text();
  bool found = false;
  for (const auto& d : report.diagnostics()) {
    if (d.message.find("MTU") == std::string::npos) continue;
    found = true;
    EXPECT_DOUBLE_EQ(d.measured, static_cast<double>(core::EventBatch::kHeaderSize +
                                                     100 * core::FlowEvent::kWireSize));
    EXPECT_DOUBLE_EQ(d.limit, static_cast<double>(mtu_));
  }
  EXPECT_TRUE(found);
}

TEST_F(RecirculationCheckTest, JumboMtuAdmitsTheSameBatch) {
  config_.cebp.batch_size = 100;
  mtu_ = 9000;
  EXPECT_TRUE(run().ok(true));
}

TEST_F(RecirculationCheckTest, ZeroNotifyCopiesLoseGaps) {
  config_.interswitch.notify_copies = 0;
  EXPECT_TRUE(any_component_is(run(), "iswitch.notify", Severity::kError));
}

TEST_F(RecirculationCheckTest, ExcessNotifyCopiesOnlyWarn) {
  config_.interswitch.notify_copies = 9;
  const Report report = run();
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_TRUE(any_component_is(report, "iswitch.notify", Severity::kWarning));
}

TEST_F(RecirculationCheckTest, ZeroMaxGapSilencesLossDetection) {
  config_.interswitch.max_gap = 0;
  EXPECT_TRUE(any_component_is(run(), "iswitch.rx", Severity::kError));
}

TEST_F(RecirculationCheckTest, MmuRedirectAboveInternalPortIsUnservable) {
  config_.mmu_redirect_rate = util::BitRate::gbps(200);
  EXPECT_TRUE(any_component_is(run(), "mmu_redirect", Severity::kError));
}

// ---- Capacity proofs -------------------------------------------------------

TEST(CapacityCheckTest, WorstCaseEventRateScalesWithEventFraction) {
  const fabric::Testbed tb = fabric::make_testbed();
  Assumptions assumptions;
  const double base = worst_case_event_rate_eps(*tb.tors[0], assumptions);
  EXPECT_GT(base, 0.0);
  assumptions.event_fraction *= 2;
  EXPECT_DOUBLE_EQ(worst_case_event_rate_eps(*tb.tors[0], assumptions), 2 * base);
}

TEST(CapacityCheckTest, IsolatedSwitchHasZeroEventRate) {
  sim::Simulator sim;
  pdp::Switch sw{sim, 1, "sw1", pdp::SwitchConfig{}};
  EXPECT_DOUBLE_EQ(worst_case_event_rate_eps(sw, Assumptions{}), 0.0);
}

TEST(CapacityCheckTest, UndersizedRingIsAnError) {
  const fabric::Testbed tb = fabric::make_testbed();
  core::NetSeerConfig config;
  config.interswitch.ring_slots = 64;
  Report report;
  check_capacity(report, *tb.tors[0], config, VerifyOptions{});
  ASSERT_TRUE(any_component_is(report, "iswitch.ring", Severity::kError))
      << report.render_text();
  for (const auto& d : report.diagnostics()) {
    if (d.component != "iswitch.ring") continue;
    EXPECT_DOUBLE_EQ(d.measured, 64.0);
    EXPECT_GT(d.limit, 64.0);
  }
}

TEST(CapacityCheckTest, ShippedRingSizeSurvivesTheNotificationRoundTrip) {
  const fabric::Testbed tb = fabric::make_testbed();
  Report report;
  check_capacity(report, *tb.tors[0], core::NetSeerConfig{}, VerifyOptions{});
  EXPECT_TRUE(report.ok(true)) << report.render_text();
}

TEST(CapacityCheckTest, StructuralZerosAreErrors) {
  sim::Simulator sim;
  pdp::Switch sw{sim, 1, "sw1", pdp::SwitchConfig{}};
  core::NetSeerConfig config;
  config.event_stack_capacity = 0;
  config.group_cache.report_interval = 0;
  Report report;
  check_capacity(report, sw, config, VerifyOptions{});
  EXPECT_TRUE(any_component_is(report, "batch.stack", Severity::kError));
  EXPECT_TRUE(any_component_is(report, "dedup.cache", Severity::kError));
}

TEST(CapacityCheckTest, DisabledGroupCacheOnlyWarns) {
  sim::Simulator sim;
  pdp::Switch sw{sim, 1, "sw1", pdp::SwitchConfig{}};
  core::NetSeerConfig config;
  config.group_cache.entries = 0;
  Report report;
  check_capacity(report, sw, config, VerifyOptions{});
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_TRUE(any_component_is(report, "dedup.cache", Severity::kWarning));
}

TEST(CapacityCheckTest, StarvedCebpDrainCannotKeepUp) {
  const fabric::Testbed tb = fabric::make_testbed();
  core::NetSeerConfig config;
  config.cebp.num_cebps = 1;
  config.cebp.batch_size = 1;
  config.cebp.recirc_latency = util::milliseconds(1);
  Report report;
  check_capacity(report, *tb.tors[0], config, VerifyOptions{});
  EXPECT_TRUE(any_component_is(report, "cebp", Severity::kError)) << report.render_text();
}

}  // namespace
}  // namespace netseer::verify
