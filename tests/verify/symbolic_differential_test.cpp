// Differential property test keeping the symbolic executor honest: random
// concrete packets pushed through the real pdp pipeline must each land on
// an enumerated symbolic path with the same verdict. If the model and the
// pipeline ever disagree — a path the model missed, a verdict it got
// wrong, an emission point that doesn't line up with a real drop hook —
// this test localizes the packet that proves it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/fat_tree.h"
#include "packet/builder.h"
#include "pdp/agent.h"
#include "pdp/introspect.h"
#include "pdp/switch.h"
#include "verify/symbolic.h"

namespace netseer::verify {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;

/// What the concrete pipeline did with one packet, keyed by uid.
struct Observed {
  enum class Kind : std::uint8_t {
    kNone = 0,    // no hook fired (PFC frames are consumed hook-free)
    kForward,     // admitted to an egress queue
    kPipelineDrop,
    kMmuDrop,
    kCorrupt,     // MAC discarded on FCS failure
  };
  Kind kind = Kind::kNone;
  pdp::DropReason reason = pdp::DropReason::kNone;
  util::PortId egress = util::kInvalidPort;
};

/// SwitchAgent recording the terminal pipeline hook per packet uid.
class VerdictRecorder : public pdp::SwitchAgent {
 public:
  void on_mac_rx(pdp::Switch&, const packet::Packet& pkt, util::PortId,
                 bool corrupted) override {
    if (corrupted) records_[pkt.uid].kind = Observed::Kind::kCorrupt;
  }
  void on_pipeline_drop(pdp::Switch&, const packet::Packet& pkt,
                        const pdp::PipelineContext& ctx) override {
    Observed& o = records_[pkt.uid];
    o.kind = Observed::Kind::kPipelineDrop;
    o.reason = ctx.drop;
    o.egress = ctx.egress_port;
  }
  void on_mmu_drop(pdp::Switch&, const packet::Packet& pkt,
                   const pdp::PipelineContext& ctx) override {
    Observed& o = records_[pkt.uid];
    o.kind = Observed::Kind::kMmuDrop;
    o.reason = ctx.drop;
    o.egress = ctx.egress_port;
  }
  void on_enqueue(pdp::Switch&, const packet::Packet& pkt, const pdp::PipelineContext& ctx,
                  bool) override {
    Observed& o = records_[pkt.uid];
    o.kind = Observed::Kind::kForward;
    o.egress = ctx.egress_port;
  }

  [[nodiscard]] Observed lookup(util::PacketUid uid) const {
    const auto it = records_.find(uid);
    return it == records_.end() ? Observed{} : it->second;
  }

 private:
  std::unordered_map<util::PacketUid, Observed> records_;
};

/// The symbolic verdict the concrete observation should map onto.
struct Expected {
  PathVerdict verdict = PathVerdict::kForward;
  pdp::DropReason reason = pdp::DropReason::kNone;
  util::PortId egress = util::kInvalidPort;
  bool compare_egress = false;
};

/// Random packet soup: routed/unrouted dsts, short TTLs, oversized
/// frames, corrupted frames, PFC, non-IP, VLAN shims, TCP and UDP.
packet::Packet random_packet(std::mt19937_64& rng,
                             const std::vector<Ipv4Addr>& routed_dsts) {
  const auto u32 = [&rng]() { return static_cast<std::uint32_t>(rng()); };
  const std::uint32_t roll = u32() % 100;
  if (roll < 3) {
    // Pause/resume frames; mostly resumes so pauses can't pile up.
    return packet::make_pfc(static_cast<std::uint8_t>(u32() % 8),
                            (u32() % 4 == 0) ? std::uint16_t{64} : std::uint16_t{0});
  }
  if (roll < 6) {
    packet::Packet pkt;  // non-IP data frame: parser drop
    pkt.uid = packet::next_packet_uid();
    pkt.payload_bytes = u32() % 256;
    return pkt;
  }

  FlowKey flow;
  flow.src = Ipv4Addr{u32()};
  flow.dst = (u32() % 10 < 7 && !routed_dsts.empty())
                 ? routed_dsts[u32() % routed_dsts.size()]
                 : Ipv4Addr{u32()};
  flow.proto = static_cast<std::uint8_t>(
      (u32() % 2 == 0) ? packet::IpProto::kTcp : packet::IpProto::kUdp);
  flow.sport = static_cast<std::uint16_t>(u32());
  flow.dport = static_cast<std::uint16_t>(u32());

  // Past-MTU payloads are rare but must be exercised (1460 is the TCP
  // payload that exactly fills a 1500 B datagram).
  const std::uint32_t payload = (u32() % 10 == 0) ? 1400 + u32() % 300 : u32() % 1200;
  packet::Packet pkt = (flow.proto == static_cast<std::uint8_t>(packet::IpProto::kTcp))
                           ? packet::make_tcp(flow, payload)
                           : packet::make_udp(flow, payload);
  static constexpr std::uint8_t kTtls[] = {0, 1, 2, 3, 64, 255};
  pkt.ip->ttl = kTtls[u32() % 6];
  pkt.ip->dscp = static_cast<std::uint8_t>(u32() % 64);
  if (u32() % 8 == 0) pkt.vlan = packet::VlanTag{};
  if (roll < 10) pkt.corrupted = true;
  return pkt;
}

void run_differential(fabric::Testbed tb, std::uint64_t seed, std::size_t num_packets) {
  pdp::Switch& sw = *tb.tors[0];
  sim::Simulator& sim = tb.net->simulator();
  constexpr util::PortId kIngressPort = 0;

  // Deploy an ACL so the first-match branches are part of the experiment:
  // deny UDP to a 1000-port band, permit a sub-band above it.
  pdp::AclRule permit_band;
  permit_band.rule_id = 7;
  permit_band.proto = static_cast<std::uint8_t>(packet::IpProto::kUdp);
  permit_band.dport_lo = 7000;
  permit_band.dport_hi = 7099;
  permit_band.permit = true;
  sw.acl().add_rule(permit_band);
  pdp::AclRule deny_band;
  deny_band.rule_id = 8;
  deny_band.proto = static_cast<std::uint8_t>(packet::IpProto::kUdp);
  deny_band.dport_lo = 7000;
  deny_band.dport_hi = 7999;
  deny_band.permit = false;
  sw.acl().add_rule(deny_band);

  VerdictRecorder recorder;
  sw.add_agent(&recorder);

  // Enumerate once against the deployed state; the path set is static.
  const pdp::PipelineView view = pdp::make_pipeline_view(sw);
  const core::NetSeerConfig config;
  const std::vector<SymbolicPath> paths = collect_paths(view, config);
  ASSERT_FALSE(paths.empty());

  std::vector<Ipv4Addr> routed_dsts;
  for (const auto& entry : sw.routes().entries()) routed_dsts.push_back(entry.prefix.network);

  std::mt19937_64 rng(seed);
  std::vector<packet::Packet> originals;
  originals.reserve(num_packets);

  // Main sweep in small bursts: draining between bursts keeps most
  // forwards uncongested while still producing some tail drops.
  constexpr std::size_t kBurst = 64;
  std::size_t sent = 0;
  while (sent < num_packets) {
    const std::size_t batch = std::min(kBurst, num_packets - sent);
    for (std::size_t i = 0; i < batch; ++i) {
      originals.push_back(random_packet(rng, routed_dsts));
      packet::Packet copy = originals.back();
      sw.receive(std::move(copy), kIngressPort);
    }
    sent += batch;
    sim.run();
  }

  // Congestion phase: hammer one host queue back-to-back so tail drop is
  // exercised heavily, not just incidentally.
  if (!routed_dsts.empty()) {
    for (int i = 0; i < 400; ++i) {
      const FlowKey flow{Ipv4Addr{static_cast<std::uint32_t>(rng())}, routed_dsts[0],
                         static_cast<std::uint8_t>(packet::IpProto::kTcp),
                         static_cast<std::uint16_t>(rng()), 80};
      originals.push_back(packet::make_tcp(flow, 1000));
      packet::Packet copy = originals.back();
      sw.receive(std::move(copy), kIngressPort);
    }
    sim.run();
  }

  std::size_t failures = 0;
  std::string first_failure;
  const auto fail = [&failures, &first_failure](const packet::Packet& pkt,
                                                const std::string& why) {
    if (failures++ == 0) first_failure = why + " — packet: " + pkt.summary();
  };

  for (const packet::Packet& pkt : originals) {
    const Observed obs = recorder.lookup(pkt.uid);
    Expected want;
    switch (obs.kind) {
      case Observed::Kind::kNone:
        if (pkt.kind != packet::PacketKind::kPfc || pkt.corrupted) {
          fail(pkt, "packet vanished: no pipeline hook fired and it is not a PFC frame");
          continue;
        }
        want.verdict = PathVerdict::kConsumed;
        break;
      case Observed::Kind::kCorrupt:
        want.verdict = PathVerdict::kDrop;
        want.reason = pdp::DropReason::kCorruption;
        break;
      case Observed::Kind::kPipelineDrop:
        want.verdict = PathVerdict::kDrop;
        want.reason = obs.reason;
        break;
      case Observed::Kind::kMmuDrop:
        want.verdict = PathVerdict::kDrop;
        want.reason = pdp::DropReason::kCongestion;
        want.egress = obs.egress;
        want.compare_egress = true;
        break;
      case Observed::Kind::kForward:
        want.verdict = PathVerdict::kForward;
        want.egress = obs.egress;
        want.compare_egress = true;
        break;
    }

    int admitting = 0;
    int matching = 0;
    for (const SymbolicPath& path : paths) {
      if (!path.admits(pkt, view)) continue;
      ++admitting;
      if (path.verdict == want.verdict && path.reason == want.reason &&
          (!want.compare_egress || path.egress_port == want.egress)) {
        ++matching;
      }
    }
    if (admitting == 0) {
      fail(pkt, "no enumerated symbolic path admits this packet (incomplete enumeration)");
    } else if (matching != 1) {
      fail(pkt, "expected exactly 1 admitting path with verdict " +
                    std::string(to_string(want.verdict)) + "/" +
                    std::string(pdp::to_string(want.reason)) + ", got " +
                    std::to_string(matching) + " of " + std::to_string(admitting) +
                    " admitting");
    }
  }
  EXPECT_EQ(failures, 0u) << "first of " << failures << " disagreement(s): " << first_failure;
}

TEST(SymbolicDifferentialTest, Testbed10kPackets) {
  run_differential(fabric::make_testbed(), 0x5eed0001, 10000);
}

TEST(SymbolicDifferentialTest, Fat4_10kPackets) {
  run_differential(fabric::make_fat_tree(4), 0x5eed0004, 10000);
}

TEST(SymbolicDifferentialTest, Fat6_10kPackets) {
  run_differential(fabric::make_fat_tree(6), 0x5eed0006, 10000);
}

TEST(SymbolicDifferentialTest, Fat8_10kPackets) {
  run_differential(fabric::make_fat_tree(8), 0x5eed0008, 10000);
}

}  // namespace
}  // namespace netseer::verify
