// Unit tests for the symbolic pipeline executor: the value domain, the
// path enumeration over shipped topologies, the invariant passes, and
// the seeded-defect hooks that prove each pass can actually fire.
#include "verify/symbolic.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "fabric/fat_tree.h"
#include "packet/builder.h"
#include "pdp/introspect.h"
#include "pdp/switch.h"
#include "verify/verifier.h"

namespace netseer::verify {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;
using packet::Ipv4Prefix;

// ---- Interval ---------------------------------------------------------------

TEST(IntervalTest, IntersectNarrowsAndDetectsEmpty) {
  Interval i{0, 100};
  EXPECT_TRUE(i.intersect(Interval{50, 200}));
  EXPECT_EQ(i.lo, 50u);
  EXPECT_EQ(i.hi, 100u);
  EXPECT_TRUE(i.contains(50));
  EXPECT_TRUE(i.contains(100));
  EXPECT_FALSE(i.contains(101));
  EXPECT_FALSE(i.intersect(Interval{101, 200}));
  EXPECT_TRUE(i.empty());
}

TEST(IntervalTest, ExactIsSingleton) {
  const Interval i = Interval::exact(7);
  EXPECT_TRUE(i.contains(7));
  EXPECT_FALSE(i.contains(6));
  EXPECT_FALSE(i.contains(8));
}

// ---- PrefixSet --------------------------------------------------------------

TEST(PrefixSetTest, AnyCoversEverything) {
  const PrefixSet any = PrefixSet::any();
  EXPECT_FALSE(any.empty());
  EXPECT_EQ(any.address_count(), std::uint64_t{1} << 32);
  EXPECT_TRUE(any.contains(Ipv4Addr::from_octets(0, 0, 0, 0)));
  EXPECT_TRUE(any.contains(Ipv4Addr::from_octets(255, 255, 255, 255)));
}

TEST(PrefixSetTest, SubtractIsExact) {
  PrefixSet set = PrefixSet::any();
  const Ipv4Prefix ten8{Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  set.subtract(ten8);
  EXPECT_EQ(set.address_count(), (std::uint64_t{1} << 32) - (std::uint64_t{1} << 24));
  EXPECT_FALSE(set.contains(Ipv4Addr::from_octets(10, 1, 2, 3)));
  EXPECT_TRUE(set.contains(Ipv4Addr::from_octets(11, 0, 0, 0)));
  EXPECT_TRUE(set.contains(Ipv4Addr::from_octets(9, 255, 255, 255)));
  // Idempotent: the removed range stays removed.
  set.subtract(ten8);
  EXPECT_EQ(set.address_count(), (std::uint64_t{1} << 32) - (std::uint64_t{1} << 24));
  // Removing everything leaves the empty set.
  set.subtract(Ipv4Prefix{});
  EXPECT_TRUE(set.empty());
}

TEST(PrefixSetTest, SubtractSingleAddressSplitsFully) {
  PrefixSet set = PrefixSet::of(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24});
  set.subtract(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 7), 32});
  EXPECT_EQ(set.address_count(), 255u);
  EXPECT_FALSE(set.contains(Ipv4Addr::from_octets(10, 0, 0, 7)));
  EXPECT_TRUE(set.contains(Ipv4Addr::from_octets(10, 0, 0, 6)));
  EXPECT_TRUE(set.contains(Ipv4Addr::from_octets(10, 0, 0, 8)));
}

TEST(PrefixSetTest, IntersectKeepsOnlyTheOverlap) {
  PrefixSet set = PrefixSet::of(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8});
  set.intersect(Ipv4Prefix{Ipv4Addr::from_octets(10, 1, 0, 0), 16});
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 16);
  EXPECT_TRUE(set.contains(Ipv4Addr::from_octets(10, 1, 2, 3)));
  EXPECT_FALSE(set.contains(Ipv4Addr::from_octets(10, 2, 0, 0)));
  set.intersect(Ipv4Prefix{Ipv4Addr::from_octets(192, 168, 0, 0), 16});
  EXPECT_TRUE(set.empty());
}

TEST(PrefixSetTest, RandomizedSubtractionMatchesReferencePredicate) {
  // Deterministic LCG; membership after a pile of subtractions must equal
  // "no subtracted prefix contains the address".
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(state >> 32);
  };
  PrefixSet set = PrefixSet::any();
  std::vector<Ipv4Prefix> removed;
  for (int i = 0; i < 64; ++i) {
    Ipv4Prefix p;
    p.length = static_cast<std::uint8_t>(next() % 33);
    p.network.value = next() & p.mask();
    removed.push_back(p);
    set.subtract(p);
  }
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Addr addr{next()};
    bool outside = true;
    for (const auto& p : removed) outside = outside && !p.contains(addr);
    EXPECT_EQ(set.contains(addr), outside) << addr.to_string();
  }
}

// ---- SymPacket / mtu_check_bytes -------------------------------------------

TEST(SymPacketTest, MtuCheckBytesMatchesPipelineFormula) {
  packet::Packet pkt = packet::make_tcp(FlowKey{Ipv4Addr{1}, Ipv4Addr{2}, 6, 1, 2}, 1000);
  EXPECT_EQ(mtu_check_bytes(pkt), 1040u);  // 20 IP + 20 TCP + 1000 payload
  pkt.vlan = packet::VlanTag{};
  EXPECT_EQ(mtu_check_bytes(pkt), 1040u);  // VLAN overhead excluded from L3 length
  pkt.seq_tag = 7;
  EXPECT_EQ(mtu_check_bytes(pkt), 1040u);
}

TEST(SymPacketTest, AdmitsChecksEveryConstrainedField) {
  SymPacket sym;
  sym.dst = PrefixSet::of(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8});
  sym.proto = Interval::exact(6);
  sym.ttl = Interval{2, 0xff};

  packet::Packet hit = packet::make_tcp(
      FlowKey{Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(10, 0, 0, 5), 6, 9, 9},
      100);
  EXPECT_TRUE(sym.admits(hit));

  packet::Packet wrong_dst = hit;
  wrong_dst.ip->dst = Ipv4Addr::from_octets(11, 0, 0, 5);
  EXPECT_FALSE(sym.admits(wrong_dst));

  packet::Packet low_ttl = hit;
  low_ttl.ip->ttl = 1;
  EXPECT_FALSE(sym.admits(low_ttl));

  packet::Packet corrupted = hit;
  corrupted.corrupted = true;
  EXPECT_FALSE(sym.admits(corrupted));
}

// ---- Executor on shipped topologies ----------------------------------------

TEST(SymbolicExecTest, CleanTorPathsAreSoundAndDeterministic) {
  const fabric::Testbed tb = fabric::make_testbed();
  const pdp::PipelineView view = pdp::make_pipeline_view(*tb.tors[0]);
  const core::NetSeerConfig config;
  const std::vector<SymbolicPath> paths = collect_paths(view, config);
  ASSERT_FALSE(paths.empty());

  for (const SymbolicPath& path : paths) {
    switch (path.verdict) {
      case PathVerdict::kDrop:
        // Zero-FN: every reachable loss crosses exactly one emission
        // point on a healthy shipped topology.
        EXPECT_NE(path.reason, pdp::DropReason::kNone) << path.describe();
        EXPECT_EQ(path.emissions.size(), 1u) << path.describe();
        break;
      case PathVerdict::kForward:
      case PathVerdict::kConsumed:
        // Zero-FP: delivered or consumed packets owe no loss event.
        EXPECT_TRUE(path.emissions.empty()) << path.describe();
        break;
      case PathVerdict::kBlackhole:
        ADD_FAILURE() << "blackhole on a shipped topology: " << path.describe();
        break;
    }
    EXPECT_TRUE(path.uninit_reads.empty()) << path.describe();
  }

  // Enumeration is a pure function of the deployed state.
  const std::vector<SymbolicPath> again = collect_paths(view, config);
  ASSERT_EQ(paths.size(), again.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths[i].describe(), again[i].describe());
  }
}

TEST(SymbolicExecTest, ReachableReasonsMatchTopologyStructure) {
  const fabric::Testbed tb = fabric::make_testbed();
  Report report;
  const SymbolicSummary summary =
      check_symbolic(report, *tb.tors[0], core::NetSeerConfig{}, VerifyOptions{});
  EXPECT_TRUE(report.ok(true)) << report.render_text();

  const auto reachable = [&summary](pdp::DropReason r) {
    return summary.reason_reachable[static_cast<std::size_t>(r)];
  };
  EXPECT_TRUE(reachable(pdp::DropReason::kParserError));
  EXPECT_TRUE(reachable(pdp::DropReason::kRouteMiss));
  EXPECT_TRUE(reachable(pdp::DropReason::kTtlExpired));
  EXPECT_TRUE(reachable(pdp::DropReason::kMtuExceeded));
  EXPECT_TRUE(reachable(pdp::DropReason::kCongestion));
  EXPECT_TRUE(reachable(pdp::DropReason::kCorruption));
  // No ACL rules and no down ports on the shipped testbed.
  EXPECT_FALSE(reachable(pdp::DropReason::kAclDeny));
  EXPECT_FALSE(reachable(pdp::DropReason::kPortDown));
  EXPECT_GT(summary.paths, 0u);
  EXPECT_EQ(summary.silent_drop_paths, 0u);
  EXPECT_EQ(summary.max_emissions_per_packet, 1);
}

TEST(SymbolicExecTest, AclDenyBranchesAreEnumeratedPerRoute) {
  const fabric::Testbed tb = fabric::make_testbed();
  pdp::Switch& sw = *tb.tors[0];
  pdp::AclRule deny;
  deny.rule_id = 42;
  deny.proto = 17;  // UDP
  deny.permit = false;
  sw.acl().add_rule(deny);

  Report report;
  const SymbolicSummary summary =
      check_symbolic(report, sw, core::NetSeerConfig{}, VerifyOptions{});
  EXPECT_TRUE(report.ok(true)) << report.render_text();
  EXPECT_TRUE(summary.reason_reachable[static_cast<std::size_t>(pdp::DropReason::kAclDeny)]);

  // Every deny path still emits exactly once (coverage holds with ACLs).
  const pdp::PipelineView view = pdp::make_pipeline_view(sw);
  for (const SymbolicPath& path : collect_paths(view, core::NetSeerConfig{})) {
    if (path.reason == pdp::DropReason::kAclDeny) {
      EXPECT_EQ(path.emissions.size(), 1u) << path.describe();
      EXPECT_EQ(path.acl_rule_index, 0) << path.describe();
    }
  }
}

TEST(SymbolicExecTest, PortDownBecomesReachableWhenALinkGoesDown) {
  const fabric::Testbed tb = fabric::make_testbed();
  pdp::Switch& sw = *tb.tors[0];
  sw.set_port_up(0, false);
  Report report;
  const SymbolicSummary summary =
      check_symbolic(report, sw, core::NetSeerConfig{}, VerifyOptions{});
  EXPECT_TRUE(summary.reason_reachable[static_cast<std::size_t>(pdp::DropReason::kPortDown)]);
  EXPECT_TRUE(report.ok(true)) << report.render_text();  // covered, so still clean
}

// ---- Invariant passes: each must fire on its seeded defect ------------------

TEST(SymbolicPassTest, BlackholeRouteIsACoverageError) {
  const fabric::Testbed tb = fabric::make_testbed();
  pdp::Switch& sw = *tb.aggs[0];  // aggs have up-but-unwired spare ports
  util::PortId spare = util::kInvalidPort;
  for (util::PortId p = 0; p < sw.config().num_ports; ++p) {
    if (sw.link(p) == nullptr && sw.port_up(p)) {
      spare = p;
      break;
    }
  }
  ASSERT_NE(spare, util::kInvalidPort);
  sw.routes().insert(Ipv4Prefix{Ipv4Addr::from_octets(99, 0, 0, 0), 8},
                     pdp::EcmpGroup{{spare}});

  Report report;
  const SymbolicSummary summary =
      check_symbolic(report, sw, core::NetSeerConfig{}, VerifyOptions{});
  EXPECT_FALSE(report.ok(false)) << report.render_text();
  EXPECT_GT(summary.silent_drop_paths, 0u);
  bool found = false;
  for (const auto& d : report.diagnostics()) {
    found = found || (d.pass == "symbolic.coverage" && d.component == "path.blackhole" &&
                      d.severity == Severity::kError);
  }
  EXPECT_TRUE(found) << report.render_text();
}

TEST(SymbolicPassTest, DisabledInterswitchUncoversWireLoss) {
  const fabric::Testbed tb = fabric::make_testbed();
  core::NetSeerConfig config;
  config.enable_interswitch = false;
  Report report;
  const SymbolicSummary summary =
      check_symbolic(report, *tb.tors[0], config, VerifyOptions{});
  // Corruption/link-loss drops now cross no emission point.
  EXPECT_GT(summary.silent_drop_paths, 0u);
  EXPECT_FALSE(report.ok(false)) << report.render_text();
}

TEST(SymbolicPassTest, HardwareFaultIsAnUncoverableSilentDrop) {
  const fabric::Testbed tb = fabric::make_testbed();
  tb.tors[0]->inject_hardware_fault(pdp::HardwareFault::kAsicFailure, false);
  Report report;
  check_symbolic(report, *tb.tors[0], core::NetSeerConfig{}, VerifyOptions{});
  bool found = false;
  for (const auto& d : report.diagnostics()) {
    found = found || (d.pass == "symbolic.coverage" && d.severity == Severity::kError);
  }
  EXPECT_TRUE(found) << report.render_text();
}

TEST(SymbolicPassTest, ExtraEmissionIsADuplicateError) {
  const fabric::Testbed tb = fabric::make_testbed();
  pdp::Switch& sw = *tb.tors[0];
  pdp::AclRule deny;
  deny.rule_id = 30;
  deny.proto = 17;
  deny.permit = false;
  sw.acl().add_rule(deny);

  SymbolicOptions symopts;
  symopts.defects.extra_emissions.push_back(
      {pdp::Stage::kAcl, pdp::DropReason::kAclDeny, "rogue.acl_mirror"});
  Report report;
  const SymbolicSummary summary =
      check_symbolic(report, sw, core::NetSeerConfig{}, VerifyOptions{}, symopts);
  EXPECT_GT(summary.double_report_paths, 0u);
  EXPECT_EQ(summary.max_emissions_per_packet, 2);
  bool found = false;
  for (const auto& d : report.diagnostics()) {
    found = found || (d.pass == "symbolic.duplicate" && d.severity == Severity::kError);
  }
  EXPECT_TRUE(found) << report.render_text();
}

TEST(SymbolicPassTest, EmissionOnForwardPathsIsAFalsePositiveError) {
  const fabric::Testbed tb = fabric::make_testbed();
  SymbolicOptions symopts;
  // Unconditional emission at the egress stage: fires on delivered
  // packets — events for traffic that was never lost.
  symopts.defects.extra_emissions.push_back(
      {pdp::Stage::kEgress, pdp::DropReason::kNone, "rogue.postcard"});
  Report report;
  check_symbolic(report, *tb.tors[0], core::NetSeerConfig{}, VerifyOptions{}, symopts);
  bool found = false;
  for (const auto& d : report.diagnostics()) {
    found = found || (d.pass == "symbolic.duplicate" && d.component == "rogue.postcard");
  }
  EXPECT_TRUE(found) << report.render_text();
}

TEST(SymbolicPassTest, UninitializedMetadataReadIsAnError) {
  const fabric::Testbed tb = fabric::make_testbed();
  SymbolicOptions symopts;
  symopts.defects.extra_reads.push_back(
      {pdp::Stage::kMmuAdmit, pdp::MetaField::kAclRuleId, "rogue acl aggregator"});
  Report report;
  const SymbolicSummary summary =
      check_symbolic(report, *tb.tors[0], core::NetSeerConfig{}, VerifyOptions{}, symopts);
  EXPECT_GT(summary.uninit_read_paths, 0u);
  bool found = false;
  for (const auto& d : report.diagnostics()) {
    found = found || (d.pass == "symbolic.metadata" && d.severity == Severity::kError);
  }
  EXPECT_TRUE(found) << report.render_text();
}

TEST(SymbolicPassTest, GuardedAclRuleIdReadIsNotFlagged) {
  const fabric::Testbed tb = fabric::make_testbed();
  pdp::Switch& sw = *tb.tors[0];
  pdp::AclRule deny;
  deny.rule_id = 30;
  deny.proto = 17;
  deny.permit = false;
  sw.acl().add_rule(deny);
  // The real NetSeer ACL aggregation reads acl_rule_id at the ACL stage,
  // where the deny branch has just written it: defined, not a defect.
  SymbolicOptions symopts;
  symopts.defects.extra_reads.push_back(
      {pdp::Stage::kAcl, pdp::MetaField::kAclRuleId, "acl drop aggregation"});
  Report report;
  const SymbolicSummary summary =
      check_symbolic(report, sw, core::NetSeerConfig{}, VerifyOptions{}, symopts);
  // Deny paths read a defined value; permit/default paths never wrote it
  // and are flagged — which is exactly the P4-style discipline: an
  // unconditional read of a conditionally-written field is a bug.
  EXPECT_GT(summary.uninit_read_paths, 0u);
  const pdp::PipelineView view = pdp::make_pipeline_view(sw);
  for (const SymbolicPath& path : collect_paths(view, core::NetSeerConfig{}, symopts)) {
    if (path.reason == pdp::DropReason::kAclDeny) {
      EXPECT_TRUE(path.uninit_reads.empty()) << path.describe();
    }
  }
}

TEST(SymbolicPassTest, DeadRoutesAndShadowedRulesAreReachabilityWarnings) {
  const fabric::Testbed tb = fabric::make_testbed();
  pdp::Switch& sw = *tb.tors[0];

  // A /31 fully covered by its two /32s can never match.
  const auto& first = sw.routes().entries().front();
  ASSERT_EQ(first.prefix.length, 32);
  const std::uint32_t addr = first.prefix.network.value;
  const pdp::EcmpGroup group = first.nexthops;
  sw.routes().insert(Ipv4Prefix{Ipv4Addr{addr ^ 1U}, 32}, group);
  sw.routes().insert(Ipv4Prefix{Ipv4Addr{addr & ~1U}, 31}, group);

  // A deny shadowed by an earlier wildcard permit can never be first
  // match.
  pdp::AclRule permit_any;
  permit_any.rule_id = 10;
  permit_any.permit = true;
  sw.acl().add_rule(permit_any);
  pdp::AclRule dead_deny;
  dead_deny.rule_id = 20;
  dead_deny.permit = false;
  sw.acl().add_rule(dead_deny);

  Report report;
  check_symbolic(report, sw, core::NetSeerConfig{}, VerifyOptions{});
  EXPECT_TRUE(report.ok(false)) << report.render_text();   // warnings only
  EXPECT_FALSE(report.ok(true)) << report.render_text();
  bool dead_route = false;
  bool dead_rule = false;
  for (const auto& d : report.diagnostics()) {
    if (d.pass != "symbolic.reachability") continue;
    EXPECT_EQ(d.severity, Severity::kWarning);
    dead_route = dead_route || d.component.rfind("lpm.", 0) == 0;
    dead_rule = dead_rule || d.component == "acl.rule.20";
  }
  EXPECT_TRUE(dead_route) << report.render_text();
  EXPECT_TRUE(dead_rule) << report.render_text();
}

TEST(SymbolicPassTest, CorruptedLpmEntryIsWarnedAndItsTrafficFallsToMiss) {
  const fabric::Testbed tb = fabric::make_testbed();
  pdp::Switch& sw = *tb.tors[0];
  const Ipv4Prefix victim = sw.routes().entries().front().prefix;
  ASSERT_TRUE(sw.routes().set_corrupted(victim, true));

  Report report;
  check_symbolic(report, sw, core::NetSeerConfig{}, VerifyOptions{});
  bool warned = false;
  for (const auto& d : report.diagnostics()) {
    warned = warned || (d.pass == "symbolic.reachability" &&
                        d.component == "lpm." + victim.to_string());
  }
  EXPECT_TRUE(warned) << report.render_text();

  // The corrupted entry's addresses take the (covered) route-miss path.
  const pdp::PipelineView view = pdp::make_pipeline_view(sw);
  bool miss_covers_victim = false;
  for (const SymbolicPath& path : collect_paths(view, core::NetSeerConfig{})) {
    if (path.reason == pdp::DropReason::kRouteMiss && path.lpm_entry == -1) {
      miss_covers_victim = miss_covers_victim || path.packet.dst.contains(victim.network);
    }
  }
  EXPECT_TRUE(miss_covers_victim);
}

TEST(SymbolicPassTest, TruncationIsAnExplicitError) {
  const fabric::Testbed tb = fabric::make_testbed();
  SymbolicOptions symopts;
  symopts.max_paths = 3;
  Report report;
  check_symbolic(report, *tb.tors[0], core::NetSeerConfig{}, VerifyOptions{}, symopts);
  bool found = false;
  for (const auto& d : report.diagnostics()) {
    found = found || (d.pass == "symbolic.coverage" && d.component == "executor");
  }
  EXPECT_TRUE(found) << report.render_text();
}

TEST(SymbolicPassTest, MonitoredPrefixesDowngradeZeroFnToAWarning) {
  const fabric::Testbed tb = fabric::make_testbed();
  core::NetSeerConfig config;
  config.monitored_prefixes.push_back(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8});
  Report report;
  check_symbolic(report, *tb.tors[0], config, VerifyOptions{});
  EXPECT_TRUE(report.ok(false)) << report.render_text();
  EXPECT_FALSE(report.ok(true)) << report.render_text();
}

// ---- Path-sensitive capacity ------------------------------------------------

TEST(SymbolicCapacityTest, PathSensitiveRateIsCappedByTheInternalPort) {
  const fabric::Testbed tb = fabric::make_testbed();
  core::NetSeerConfig config;
  VerifyOptions options;
  // Pathological assumption: every packet is eventful. The structural
  // bound explodes; the internal-port ceiling keeps the proven bound
  // finite and tighter.
  options.assumptions.event_fraction = 1.0;
  Report report;
  const SymbolicSummary summary = check_symbolic(report, *tb.tors[0], config, options);
  EXPECT_GT(summary.structural_event_rate_eps, summary.path_sensitive_event_rate_eps);
  const double ceiling =
      static_cast<double>(config.internal_port_rate.bits_per_second()) /
      (8.0 * static_cast<double>(options.assumptions.event_pkt_bytes));
  EXPECT_DOUBLE_EQ(summary.path_sensitive_event_rate_eps,
                   ceiling * summary.max_emissions_per_packet);
}

TEST(SymbolicCapacityTest, DoubleEmissionInflatesTheProvenBound) {
  const fabric::Testbed tb = fabric::make_testbed();
  pdp::Switch& sw = *tb.tors[0];
  pdp::AclRule deny;
  deny.rule_id = 30;
  deny.proto = 17;
  deny.permit = false;
  sw.acl().add_rule(deny);
  SymbolicOptions symopts;
  symopts.defects.extra_emissions.push_back(
      {pdp::Stage::kAcl, pdp::DropReason::kAclDeny, "rogue.acl_mirror"});

  Report clean_report;
  const SymbolicSummary clean =
      check_symbolic(clean_report, sw, core::NetSeerConfig{}, VerifyOptions{});
  Report defect_report;
  const SymbolicSummary defect =
      check_symbolic(defect_report, sw, core::NetSeerConfig{}, VerifyOptions{}, symopts);
  EXPECT_DOUBLE_EQ(defect.path_sensitive_event_rate_eps,
                   2.0 * clean.path_sensitive_event_rate_eps);
}

// ---- Path-condition membership (admits) ------------------------------------

TEST(SymbolicAdmitsTest, EachCraftedPacketLandsOnExactlyOneMatchingPath) {
  const fabric::Testbed tb = fabric::make_testbed();
  pdp::Switch& sw = *tb.tors[0];
  const pdp::PipelineView view = pdp::make_pipeline_view(sw);
  const std::vector<SymbolicPath> paths = collect_paths(view, core::NetSeerConfig{});

  const auto expect_unique = [&](const packet::Packet& pkt, PathVerdict verdict,
                                 pdp::DropReason reason) {
    int matching = 0;
    for (const SymbolicPath& path : paths) {
      if (path.admits(pkt, view) && path.verdict == verdict && path.reason == reason) {
        ++matching;
      }
    }
    EXPECT_EQ(matching, 1) << pkt.summary();
  };

  // A routed host address forwards (and can also tail-drop — two
  // admitting paths, one per verdict).
  const Ipv4Addr host = sw.routes().entries().front().prefix.network;
  packet::Packet good =
      packet::make_tcp(FlowKey{Ipv4Addr::from_octets(1, 2, 3, 4), host, 6, 999, 80}, 200);
  expect_unique(good, PathVerdict::kForward, pdp::DropReason::kNone);
  expect_unique(good, PathVerdict::kDrop, pdp::DropReason::kCongestion);

  packet::Packet miss = good;
  miss.ip->dst = Ipv4Addr::from_octets(203, 0, 113, 9);
  expect_unique(miss, PathVerdict::kDrop, pdp::DropReason::kRouteMiss);

  packet::Packet expired = good;
  expired.ip->ttl = 1;
  expect_unique(expired, PathVerdict::kDrop, pdp::DropReason::kTtlExpired);

  packet::Packet oversized =
      packet::make_tcp(FlowKey{Ipv4Addr::from_octets(1, 2, 3, 4), host, 6, 999, 80}, 1600);
  expect_unique(oversized, PathVerdict::kDrop, pdp::DropReason::kMtuExceeded);

  packet::Packet corrupt = good;
  corrupt.corrupted = true;
  expect_unique(corrupt, PathVerdict::kDrop, pdp::DropReason::kCorruption);

  const packet::Packet pause = packet::make_pfc(3, 0xff);
  expect_unique(pause, PathVerdict::kConsumed, pdp::DropReason::kNone);

  packet::Packet non_ip;
  non_ip.uid = packet::next_packet_uid();
  expect_unique(non_ip, PathVerdict::kDrop, pdp::DropReason::kParserError);
}

}  // namespace
}  // namespace netseer::verify
