// Golden guarantee: every topology this repo ships, deployed with the
// default NetSeer configuration, verifies clean under --strict. If a
// future change to the defaults (ring sizing, CEBP parameters, cache
// geometry) breaks a deployability invariant, these tests name the
// diagnostic instead of letting the regression ship silently.
#include <gtest/gtest.h>

#include "fabric/fat_tree.h"
#include "verify/verifier.h"

namespace netseer::verify {
namespace {

void expect_clean(const fabric::Testbed& tb, const char* what, bool symbolic = false) {
  VerifyOptions options;
  options.strict = true;
  options.symbolic = symbolic;
  const Report report = verify_testbed(tb, core::NetSeerConfig{}, options);
  EXPECT_TRUE(report.ok(true)) << what << ":\n" << report.render_text();
  EXPECT_TRUE(report.diagnostics().empty()) << what << ":\n" << report.render_text();
  // All passes ran: the five structural ones, plus the five symbolic
  // passes when the executor is enabled.
  EXPECT_EQ(report.passes_run().size(), symbolic ? 10u : 5u);
}

TEST(GoldenVerifyTest, TestbedVerifiesCleanStrict) {
  expect_clean(fabric::make_testbed(), "testbed");
}

TEST(GoldenVerifyTest, FatTree4VerifiesCleanStrict) {
  expect_clean(fabric::make_fat_tree(4), "fat4");
}

TEST(GoldenVerifyTest, FatTree6VerifiesCleanStrict) {
  expect_clean(fabric::make_fat_tree(6), "fat6");
}

TEST(GoldenVerifyTest, TestbedVerifiesCleanStrictSymbolic) {
  expect_clean(fabric::make_testbed(), "testbed --symbolic", /*symbolic=*/true);
}

TEST(GoldenVerifyTest, FatTree4VerifiesCleanStrictSymbolic) {
  expect_clean(fabric::make_fat_tree(4), "fat4 --symbolic", /*symbolic=*/true);
}

TEST(GoldenVerifyTest, FatTree6VerifiesCleanStrictSymbolic) {
  expect_clean(fabric::make_fat_tree(6), "fat6 --symbolic", /*symbolic=*/true);
}

TEST(GoldenVerifyTest, GoldenSummaryLineIsStable) {
  const fabric::Testbed tb = fabric::make_testbed();
  const Report report = verify_testbed(tb, core::NetSeerConfig{}, VerifyOptions{});
  EXPECT_EQ(report.render_text(), "0 error(s), 0 warning(s) across 5 pass(es)\n");
}

TEST(GoldenVerifyTest, VerifySwitchesSkipsNulls) {
  const fabric::Testbed tb = fabric::make_testbed();
  std::vector<pdp::Switch*> with_null = tb.all_switches();
  with_null.push_back(nullptr);
  const Report report = verify_switches(with_null, core::NetSeerConfig{}, VerifyOptions{});
  EXPECT_TRUE(report.ok(true)) << report.render_text();
}

TEST(GoldenVerifyTest, SingleSwitchOverloadMatchesTestbedResult) {
  const fabric::Testbed tb = fabric::make_testbed();
  const Report report = verify_switch(*tb.tors[0], core::NetSeerConfig{});
  EXPECT_TRUE(report.ok(true)) << report.render_text();
  EXPECT_EQ(report.passes_run().size(), 5u);
}

}  // namespace
}  // namespace netseer::verify
