// Alert-pipeline state machine: fingerprint dedup, raise_after
// debounce, escalation on persistence, resolution on quiescence, and
// flap damping (a re-fire straight after resolving reopens the same
// record instead of paging again).
#include <gtest/gtest.h>

#include "detect/alerts.h"

namespace netseer::detect {
namespace {

struct Fixture {
  RuleSet set;
  Rule rule;
  AlertManager manager;

  Fixture() : set(make_set()), rule(make_rule()), manager(set) {}

  static RuleSet make_set() {
    RuleSet s = RuleSet::defaults();
    s.window = util::milliseconds(1);
    return s;
  }
  static Rule make_rule() {
    Rule r;
    r.name = "r";
    r.raise_after = 2;
    r.clear_after = 2;
    r.escalate_after = 4;
    r.damp_windows = 3;
    return r;
  }

  /// Feed one closed window for window index `i` of key (switch 1, group 9).
  void window(std::int64_t i, bool firing) {
    WindowResult w;
    w.rule = &rule;
    w.key = WindowKey{1, 9};
    w.window_start = i * set.window;
    w.result.firing = firing;
    w.result.value = firing ? 50.0 : 0.0;
    w.result.score = firing ? 2.0 : 0.0;
    manager.observe(w);
  }
};

TEST(AlertManagerTest, RaiseAfterDebouncesSingleWindowBlips) {
  Fixture f;
  f.window(0, true);
  EXPECT_TRUE(f.manager.alerts().empty());  // one window is not an incident
  f.window(1, false);
  f.window(2, true);
  EXPECT_TRUE(f.manager.alerts().empty());  // streak was broken
  f.window(3, true);
  ASSERT_EQ(f.manager.alerts().size(), 1u);  // two consecutive -> raised
  const Alert& alert = f.manager.alerts()[0];
  EXPECT_EQ(alert.state, AlertState::kActive);
  EXPECT_EQ(alert.severity, AlertSeverity::kWarning);
  // Back-dated to the first window of the streak for latency reporting.
  EXPECT_EQ(alert.raised_at, 2 * f.set.window);
  EXPECT_EQ(f.manager.stats().raised, 1u);
  EXPECT_EQ(f.manager.stats().active, 1u);
}

TEST(AlertManagerTest, PersistenceEscalatesToCritical) {
  Fixture f;
  for (std::int64_t i = 0; i < 3; ++i) f.window(i, true);
  ASSERT_EQ(f.manager.alerts().size(), 1u);
  EXPECT_EQ(f.manager.alerts()[0].severity, AlertSeverity::kWarning);
  f.window(3, true);  // 4th firing window = escalate_after
  EXPECT_EQ(f.manager.alerts()[0].severity, AlertSeverity::kCritical);
  EXPECT_EQ(f.manager.stats().escalated, 1u);
}

TEST(AlertManagerTest, QuiescenceResolves) {
  Fixture f;
  f.window(0, true);
  f.window(1, true);
  f.window(2, false);
  EXPECT_EQ(f.manager.alerts()[0].state, AlertState::kActive);  // 1 quiet < clear_after
  f.window(3, false);
  EXPECT_EQ(f.manager.alerts()[0].state, AlertState::kResolved);
  EXPECT_EQ(f.manager.alerts()[0].resolved_at, 3 * f.set.window);
  EXPECT_EQ(f.manager.stats().resolved, 1u);
  EXPECT_EQ(f.manager.stats().active, 0u);
}

TEST(AlertManagerTest, FlapWithinDampingHorizonReopensSameRecord) {
  Fixture f;
  f.window(0, true);
  f.window(1, true);
  f.window(2, false);
  f.window(3, false);  // resolved at window 3
  // Re-fires at windows 4-5: within damp_windows (3) of resolution.
  f.window(4, true);
  f.window(5, true);
  ASSERT_EQ(f.manager.alerts().size(), 1u);  // same record, not a new page
  const Alert& alert = f.manager.alerts()[0];
  EXPECT_EQ(alert.state, AlertState::kActive);
  EXPECT_EQ(alert.flaps, 1u);
  EXPECT_EQ(alert.episodes, 2u);
  EXPECT_EQ(f.manager.stats().reopened, 1u);
  EXPECT_EQ(f.manager.stats().raised, 1u);
}

TEST(AlertManagerTest, ReFireAfterDampingHorizonIsANewAlert) {
  Fixture f;
  f.window(0, true);
  f.window(1, true);
  f.window(2, false);
  f.window(3, false);  // resolved at window 3; horizon ends at window 6
  f.window(10, true);
  f.window(11, true);
  ASSERT_EQ(f.manager.alerts().size(), 2u);
  EXPECT_EQ(f.manager.alerts()[0].flaps, 0u);
  EXPECT_EQ(f.manager.stats().raised, 2u);
}

TEST(AlertManagerTest, DistinctKeysGetDistinctFingerprints) {
  Fixture f;
  WindowResult w;
  w.rule = &f.rule;
  w.result.firing = true;
  w.key = WindowKey{1, 9};
  f.manager.observe(w);
  f.manager.observe(w);  // raise_after=2
  w.key = WindowKey{2, 9};
  f.manager.observe(w);
  f.manager.observe(w);
  ASSERT_EQ(f.manager.alerts().size(), 2u);
  EXPECT_NE(f.manager.alerts()[0].fingerprint, f.manager.alerts()[1].fingerprint);
}

TEST(AlertManagerTest, FingerprintIsStable) {
  Rule rule;
  rule.name = "drop-burst";
  const WindowKey key{3, 42};
  const auto fp1 = AlertManager::fingerprint(rule, key);
  const auto fp2 = AlertManager::fingerprint(rule, key);
  EXPECT_EQ(fp1, fp2);
  Rule other;
  other.name = "acl-deny";
  EXPECT_NE(fp1, AlertManager::fingerprint(other, key));
}

TEST(AlertManagerTest, QuietWindowsForUnknownKeysAllocateNothing) {
  Fixture f;
  for (std::int64_t i = 0; i < 100; ++i) f.window(i, false);
  EXPECT_TRUE(f.manager.alerts().empty());
  EXPECT_EQ(f.manager.stats().raised, 0u);
}

}  // namespace
}  // namespace netseer::detect
