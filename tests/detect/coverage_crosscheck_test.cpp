// Verify/detect coverage cross-check: the symbolic verifier emits the
// machine-readable list of loss classes a deployment can exhibit, and
// every class must either map to a detect rule that observes its event
// stream or carry an explicit waiver in the RuleSet. This is the test
// that keeps the two subsystems honest with each other — a new drop
// path cannot ship without either a detector or a written-down reason
// there is none.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "detect/rules.h"
#include "fabric/fat_tree.h"
#include "pdp/switch.h"
#include "verify/coverage.h"

namespace netseer::detect {
namespace {

using verify::CoverageClass;

/// The cross-check itself: classes with no rule and no waiver.
std::vector<std::string> uncovered(const std::vector<CoverageClass>& classes,
                                   const RuleSet& rules) {
  std::vector<std::string> missing;
  for (const CoverageClass& c : classes) {
    if (rules.waiver(c.name) != nullptr) continue;
    if (!c.silent && rules.covering(c.name) != nullptr) continue;
    missing.push_back(c.name);
  }
  return missing;
}

std::vector<CoverageClass> classes_for(const fabric::Testbed& tb) {
  verify::Report report;
  return verify::collect_coverage(report, tb.all_switches(), core::NetSeerConfig{},
                                  verify::VerifyOptions{});
}

bool has_class(const std::vector<CoverageClass>& classes, std::string_view name,
               bool* silent = nullptr) {
  for (const CoverageClass& c : classes) {
    if (c.name == name) {
      if (silent != nullptr) *silent = c.silent;
      return true;
    }
  }
  return false;
}

// Replicas of the netseer_verify CLI fixtures, seeded directly.
bool seed_silent_drop(pdp::Switch& sw) {
  for (util::PortId p = 0; p < sw.config().num_ports; ++p) {
    if (sw.link(p) == nullptr && sw.port_up(p)) {
      sw.routes().insert(packet::Ipv4Prefix{packet::Ipv4Addr::from_octets(99, 0, 0, 0), 8},
                         pdp::EcmpGroup{{p}});
      return true;
    }
  }
  return false;
}

bool seed_dead_route(pdp::Switch& sw) {
  for (const auto& entry : sw.routes().entries()) {
    if (entry.prefix.length != 32 || entry.corrupted) continue;
    const pdp::EcmpGroup group = entry.nexthops;
    const std::uint32_t addr = entry.prefix.network.value;
    sw.routes().insert(packet::Ipv4Prefix{packet::Ipv4Addr{addr ^ 1U}, 32}, group);
    sw.routes().insert(packet::Ipv4Prefix{packet::Ipv4Addr{addr & ~1U}, 31}, group);
    return true;
  }
  return false;
}

TEST(CoverageCrosscheckTest, CleanTestbedIsFullyCoveredOrWaived) {
  const fabric::Testbed tb = fabric::make_testbed();
  const auto classes = classes_for(tb);
  // A clean deployment still has reachable drop reasons (that is the
  // point of flow event telemetry); the default rules must cover them.
  ASSERT_FALSE(classes.empty());
  const auto missing = uncovered(classes, RuleSet::defaults());
  EXPECT_TRUE(missing.empty()) << "uncovered loss classes: " << [&] {
    std::string joined;
    for (const auto& m : missing) joined += m + " ";
    return joined;
  }();
}

TEST(CoverageCrosscheckTest, ReachableDropClassesMapToEventStreamRules) {
  const fabric::Testbed tb = fabric::make_testbed();
  const auto classes = classes_for(tb);
  const RuleSet rules = RuleSet::defaults();
  for (const CoverageClass& c : classes) {
    if (c.silent) continue;
    const Rule* rule = rules.covering(c.name);
    ASSERT_NE(rule, nullptr) << c.name;
    if (c.name == "drop.acl-deny") {
      EXPECT_EQ(rule->type, core::EventType::kAclDrop) << c.name;
    } else {
      EXPECT_EQ(rule->type, core::EventType::kDrop) << c.name;
    }
  }
}

TEST(CoverageCrosscheckTest, SilentDropSurfacesBlackholeClassAndIsWaived) {
  fabric::Testbed tb = fabric::make_testbed();
  ASSERT_TRUE(seed_silent_drop(*tb.aggs[0]));
  const auto classes = classes_for(tb);
  bool silent = false;
  ASSERT_TRUE(has_class(classes, "path.blackhole", &silent));
  EXPECT_TRUE(silent);  // structurally invisible to the event stream
  const RuleSet rules = RuleSet::defaults();
  EXPECT_EQ(rules.covering("path.blackhole"), nullptr);
  EXPECT_NE(rules.waiver("path.blackhole"), nullptr);
  EXPECT_TRUE(uncovered(classes, rules).empty());
}

TEST(CoverageCrosscheckTest, DeadRouteSurfacesLpmClassAndIsWaived) {
  fabric::Testbed tb = fabric::make_testbed();
  ASSERT_TRUE(seed_dead_route(*tb.tors[0]));
  const auto classes = classes_for(tb);
  bool found_lpm = false;
  bool silent = false;
  for (const CoverageClass& c : classes) {
    if (c.name.rfind("lpm.", 0) == 0) {
      found_lpm = true;
      silent = c.silent;
    }
  }
  ASSERT_TRUE(found_lpm);
  EXPECT_TRUE(silent);
  EXPECT_TRUE(uncovered(classes, RuleSet::defaults()).empty());
}

TEST(CoverageCrosscheckTest, MissingRuleAndWaiverIsDetected) {
  const fabric::Testbed tb = fabric::make_testbed();
  const auto classes = classes_for(tb);
  // Strip the rule set down to nothing: every non-silent class must now
  // show up as uncovered — the cross-check has teeth.
  RuleSet bare = RuleSet::defaults();
  bare.rules.clear();
  bare.waivers.clear();
  std::size_t non_silent = 0;
  for (const CoverageClass& c : classes) non_silent += c.silent ? 0 : 1;
  ASSERT_GT(non_silent, 0u);
  EXPECT_EQ(uncovered(classes, bare).size(), classes.size());

  // And a waiver-less seeded blackhole is uncovered too.
  fabric::Testbed seeded = fabric::make_testbed();
  ASSERT_TRUE(seed_silent_drop(*seeded.aggs[0]));
  RuleSet no_waivers = RuleSet::defaults();
  no_waivers.waivers.clear();
  const auto missing = uncovered(classes_for(seeded), no_waivers);
  EXPECT_FALSE(missing.empty());
  bool blackhole_missing = false;
  for (const auto& m : missing) blackhole_missing |= (m == "path.blackhole");
  EXPECT_TRUE(blackhole_missing);
}

TEST(CoverageCrosscheckTest, JsonRenderingIsStable) {
  std::vector<CoverageClass> classes;
  classes.push_back({"drop.route-miss", false, "symbolic.summary"});
  classes.push_back({"path.blackhole", true, "symbolic.coverage"});
  EXPECT_EQ(verify::render_coverage_json(classes),
            "{\"classes\":[{\"name\":\"drop.route-miss\",\"silent\":false,"
            "\"source\":\"symbolic.summary\"},{\"name\":\"path.blackhole\","
            "\"silent\":true,\"source\":\"symbolic.coverage\"}]}\n");
}

}  // namespace
}  // namespace netseer::detect
