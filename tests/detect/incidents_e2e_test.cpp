// End-to-end detection over the five replayed §5.1 incidents: the
// streaming detection service, fed each incident's event store, must
// raise exactly the expected alert set — right rule, right device,
// right flow fingerprint — and stay silent on the fault-free baseline.
// These are the pinned expectations the detect-e2e CI job runs under
// ASan/UBSan; the replays are fully deterministic, so exact counts and
// fingerprints are stable.
#include <gtest/gtest.h>

#include <set>

#include "fabric/fat_tree.h"
#include "net/host.h"
#include "pdp/switch.h"
#include "scenarios/incidents.h"

namespace netseer::scenarios {
namespace {

/// Device ids and host addresses of the default testbed the suite
/// replays on (construction is deterministic, so the mapping holds for
/// every incident's private harness).
struct Topo {
  fabric::Testbed tb = fabric::make_testbed();

  [[nodiscard]] util::NodeId agg0() const { return tb.aggs[0]->id(); }
  [[nodiscard]] util::NodeId tor0() const { return tb.tors[0]->id(); }
  [[nodiscard]] util::NodeId tor3() const { return tb.tors[3]->id(); }
  [[nodiscard]] packet::Ipv4Addr host(std::size_t i) const { return tb.hosts[i]->addr(); }
};

TEST(IncidentDetectE2eTest, BaselineRaisesNothing) {
  IncidentSuite suite;
  const IncidentReport report = suite.baseline();
  EXPECT_TRUE(report.alerts.empty()) << report.evidence;
  EXPECT_TRUE(report.located());  // for the baseline: "no false alarm"
}

TEST(IncidentDetectE2eTest, RoutingErrorRaisesOneDropBurstOnTheVictimFlow) {
  Topo topo;
  IncidentSuite suite;
  const IncidentReport report = suite.routing_error();

  // Exactly one alert: the victim flow's TTL deaths, fingerprinted at
  // pod 0's first aggregation switch (where the core<->agg loop expires).
  ASSERT_EQ(report.alerts.size(), 1u);
  const IncidentAlert& alert = report.alerts[0];
  EXPECT_EQ(alert.rule, "drop-burst");
  EXPECT_EQ(alert.severity, "warning");
  EXPECT_EQ(alert.state, "active");
  EXPECT_EQ(alert.switch_id, topo.agg0());
  EXPECT_EQ(alert.flow.src, topo.host(0));
  EXPECT_EQ(alert.flow.dst, topo.host(31));
  EXPECT_EQ(alert.flow.sport, 5001);
  EXPECT_EQ(alert.flow.dport, 80);
  EXPECT_EQ(alert.raised_at, report.fault_onset);  // caught in the first window
  EXPECT_GE(alert.firing_windows, 2u);             // loop persists across windows
  EXPECT_EQ(report.alert_count("drop-burst", topo.agg0()), 1u);
}

TEST(IncidentDetectE2eTest, AclMisconfigurationRaisesOneAclDenyNamingTheRule) {
  Topo topo;
  IncidentSuite suite;
  const IncidentReport report = suite.acl_misconfiguration();

  ASSERT_EQ(report.alerts.size(), 1u);
  const IncidentAlert& alert = report.alerts[0];
  EXPECT_EQ(alert.rule, "acl-deny");
  EXPECT_EQ(alert.severity, "warning");
  EXPECT_EQ(alert.switch_id, topo.tor0());
  EXPECT_EQ(alert.group, 501u);  // device-rule scope: the ACL rule id IS the fingerprint
  EXPECT_EQ(alert.flow.src, topo.host(5));  // the blackholed VM
  EXPECT_GE(alert.raised_at, report.fault_onset);
  EXPECT_EQ(report.alert_count("acl-deny", topo.tor0()), 1u);
}

TEST(IncidentDetectE2eTest, ParityErrorRaisesPerFlowBurstsAtTheFaultyAgg) {
  Topo topo;
  IncidentSuite suite;
  const IncidentReport report = suite.parity_error();

  // Six of the twelve client flows ECMP onto the corrupted route; each
  // raises its own drop-burst at the faulty aggregation switch.
  ASSERT_EQ(report.alerts.size(), 6u);
  std::set<std::uint64_t> groups;
  for (const IncidentAlert& alert : report.alerts) {
    EXPECT_EQ(alert.rule, "drop-burst");
    EXPECT_EQ(alert.switch_id, topo.agg0());
    EXPECT_EQ(alert.flow.dst, topo.host(2));  // all victims target the redis VIP
    EXPECT_EQ(alert.flow.dport, 6379);
    EXPECT_EQ(alert.raised_at, report.fault_onset);
    groups.insert(alert.group);
  }
  EXPECT_EQ(groups.size(), 6u);  // distinct per-flow fingerprints, no dedup collisions
  EXPECT_EQ(report.alert_count("drop-burst", topo.agg0()), 6u);
}

TEST(IncidentDetectE2eTest, UnexpectedVolumeRaisesIncastBurstsAtTheVictimTor) {
  Topo topo;
  IncidentSuite suite;
  const IncidentReport report = suite.unexpected_volume();

  // The incast overruns the victim ToR's MMU: per-sender drop bursts,
  // all fingerprinted at that ToR, all targeting the victim service.
  ASSERT_EQ(report.alerts.size(), 6u);
  std::set<std::uint64_t> groups;
  for (const IncidentAlert& alert : report.alerts) {
    EXPECT_EQ(alert.rule, "drop-burst");
    EXPECT_EQ(alert.switch_id, topo.tor0());
    EXPECT_EQ(alert.flow.dst, topo.host(0));
    EXPECT_EQ(alert.flow.dport, 80);
    EXPECT_EQ(alert.raised_at, report.fault_onset);
    groups.insert(alert.group);
  }
  EXPECT_EQ(groups.size(), 6u);
  EXPECT_EQ(report.alert_count("drop-burst", topo.tor0()), 6u);
}

TEST(IncidentDetectE2eTest, ServerSideBugExoneratesTheStorageFlow) {
  Topo topo;
  IncidentSuite suite;
  const IncidentReport report = suite.server_side_bug();

  EXPECT_TRUE(report.network_exonerated);
  // The red-herring incast at the noise senders' ToR does alert — those
  // drops are real — but nothing fingerprints the storage flow, which is
  // the exoneration: the suspect flow has a clean bill of health.
  ASSERT_EQ(report.alerts.size(), 4u);
  for (const IncidentAlert& alert : report.alerts) {
    EXPECT_EQ(alert.rule, "drop-burst");
    EXPECT_EQ(alert.switch_id, topo.tor3());
    EXPECT_EQ(alert.flow.dst, topo.host(17));  // the incast target, not the storage server
    EXPECT_NE(alert.flow.src, topo.host(0));   // never the storage client
    EXPECT_NE(alert.flow.dport, 3260);         // never the iSCSI victim flow
  }
  EXPECT_EQ(report.alert_count("drop-burst", topo.tor3()), 4u);
}

}  // namespace
}  // namespace netseer::scenarios
