// Windowed-aggregation contracts: tumbling event-time buckets, eager
// rollover within a key, watermark-driven close with empty-window
// emission, idle-key GC with detector recycling, and the per-scope
// grouping (device-flow / device / device-rule).
#include <gtest/gtest.h>

#include <vector>

#include "core/event.h"
#include "detect/window.h"

namespace netseer::detect {
namespace {

constexpr util::NodeId kSwitch = 7;

backend::StoredEvent drop_row(util::SimTime at, std::uint16_t counter = 1,
                              util::NodeId node = kSwitch, std::uint16_t src_port = 1000) {
  packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                       packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, src_port, 80};
  auto ev = core::make_event(core::EventType::kDrop, flow, node, at);
  ev.counter = counter;
  return backend::StoredEvent{ev, at};
}

RuleSet test_set(util::SimDuration window = util::milliseconds(1)) {
  RuleSet set = RuleSet::defaults();
  set.window = window;
  set.lateness = util::microseconds(100);
  set.idle_gc_windows = 4;
  return set;
}

Rule drop_rule() {
  Rule rule;
  rule.name = "t";
  rule.type = core::EventType::kDrop;
  rule.family = Family::kThreshold;
  rule.feature = Feature::kPackets;
  rule.scope = Scope::kDeviceFlow;
  rule.threshold = 5;
  return rule;
}

TEST(WindowEngineTest, TumblingBucketsAndEagerRollover) {
  const RuleSet set = test_set();
  const Rule rule = drop_rule();
  WindowEngine engine(rule, set);
  std::vector<WindowResult> closed;
  const auto sink = [&](const WindowResult& w) { closed.push_back(w); };

  engine.offer(drop_row(util::microseconds(100), 2), sink);
  engine.offer(drop_row(util::microseconds(900), 3), sink);
  EXPECT_TRUE(closed.empty());  // window [0,1ms) still open

  // A row in the next bucket closes the first window eagerly.
  engine.offer(drop_row(util::microseconds(1100), 1), sink);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].window_start, 0);
  EXPECT_FALSE(closed[0].empty);
  EXPECT_DOUBLE_EQ(closed[0].result.value, 5.0);  // 2 + 3 packets
  EXPECT_TRUE(closed[0].result.firing);           // threshold 5 reached

  EXPECT_EQ(engine.stats().rows, 3u);
  EXPECT_EQ(engine.stats().windows_closed, 1u);
}

TEST(WindowEngineTest, WatermarkClosesAndEmitsEmptyWindows) {
  const RuleSet set = test_set();
  const Rule rule = drop_rule();
  WindowEngine engine(rule, set);
  std::vector<WindowResult> closed;
  const auto sink = [&](const WindowResult& w) { closed.push_back(w); };

  engine.offer(drop_row(util::microseconds(500), 9), sink);
  // Watermark passes windows 0 and 1: window 0 closes non-empty, window
  // 1 closes empty (quiescence signal for the alert pipeline).
  engine.advance(util::milliseconds(2) + set.lateness, sink);
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_FALSE(closed[0].empty);
  EXPECT_TRUE(closed[0].result.firing);
  EXPECT_TRUE(closed[1].empty);
  EXPECT_DOUBLE_EQ(closed[1].result.value, 0.0);
  EXPECT_FALSE(closed[1].result.firing);  // 0 fell to the clear level
  EXPECT_EQ(engine.stats().windows_empty, 1u);
}

TEST(WindowEngineTest, LatenessHoldsTheCurrentWindowOpen) {
  const RuleSet set = test_set();
  WindowEngine engine(drop_rule(), set);
  std::vector<WindowResult> closed;
  const auto sink = [&](const WindowResult& w) { closed.push_back(w); };

  engine.offer(drop_row(util::microseconds(500)), sink);
  // Watermark exactly at the window end: lateness keeps it open.
  engine.advance(util::milliseconds(1), sink);
  EXPECT_TRUE(closed.empty());
  engine.advance(util::milliseconds(1) + set.lateness, sink);
  EXPECT_EQ(closed.size(), 1u);
}

TEST(WindowEngineTest, IdleKeysAreGarbageCollectedAndDetectorsRecycled) {
  const RuleSet set = test_set();  // idle_gc_windows = 4
  WindowEngine engine(drop_rule(), set);
  const auto sink = [](const WindowResult&) {};

  engine.offer(drop_row(util::microseconds(100)), sink);
  EXPECT_EQ(engine.active_keys(), 1u);
  // Way past the GC horizon: the key dies after 4 empty windows.
  engine.advance(util::milliseconds(100), sink);
  EXPECT_EQ(engine.active_keys(), 0u);
  EXPECT_EQ(engine.stats().keys_recycled, 1u);
  // 4 empties were still emitted before GC (alerts resolve first).
  EXPECT_GE(engine.stats().windows_empty, 4u);

  // A new key reuses the recycled detector instance.
  engine.offer(drop_row(util::milliseconds(200), 1, kSwitch, 2000), sink);
  EXPECT_EQ(engine.active_keys(), 1u);
  EXPECT_EQ(engine.stats().keys_created, 2u);
}

TEST(WindowEngineTest, LateRowsAreCountedNotCrashed) {
  const RuleSet set = test_set();
  WindowEngine engine(drop_rule(), set);
  const auto sink = [](const WindowResult&) {};

  engine.offer(drop_row(util::milliseconds(5)), sink);
  engine.offer(drop_row(util::microseconds(100)), sink);  // behind closed window
  EXPECT_EQ(engine.stats().late_rows, 1u);
  EXPECT_EQ(engine.stats().rows, 1u);
}

TEST(WindowEngineTest, DeviceScopeMergesFlowsPerSwitch) {
  RuleSet set = test_set();
  Rule rule = drop_rule();
  rule.scope = Scope::kDevice;
  rule.feature = Feature::kEvents;
  WindowEngine engine(rule, set);
  const auto sink = [](const WindowResult&) {};

  engine.offer(drop_row(util::microseconds(100), 1, kSwitch, 1000), sink);
  engine.offer(drop_row(util::microseconds(200), 1, kSwitch, 2000), sink);
  engine.offer(drop_row(util::microseconds(300), 1, 8, 3000), sink);
  EXPECT_EQ(engine.active_keys(), 2u);  // two switches, flows merged
}

TEST(WindowEngineTest, DeviceRuleScopeGroupsByAclRule) {
  RuleSet set = test_set();
  Rule rule = drop_rule();
  rule.type = core::EventType::kAclDrop;
  rule.scope = Scope::kDeviceRule;
  WindowEngine engine(rule, set);
  const auto sink = [](const WindowResult&) {};

  auto mk = [](std::uint16_t rule_id) {
    auto row = drop_row(util::microseconds(100));
    row.event.type = core::EventType::kAclDrop;
    row.event.acl_rule_id = rule_id;
    return row;
  };
  engine.offer(mk(501), sink);
  engine.offer(mk(501), sink);
  engine.offer(mk(502), sink);
  EXPECT_EQ(engine.active_keys(), 2u);
}

TEST(WindowEngineTest, TypeFilterIgnoresOtherEvents) {
  WindowEngine engine(drop_rule(), test_set());
  const auto sink = [](const WindowResult&) {};
  auto row = drop_row(util::microseconds(100));
  row.event.type = core::EventType::kCongestion;
  engine.offer(row, sink);
  EXPECT_EQ(engine.stats().rows, 0u);
  EXPECT_EQ(engine.active_keys(), 0u);
}

TEST(WindowEngineTest, LatencyMeanFeature) {
  RuleSet set = test_set();
  Rule rule;
  rule.name = "lat";
  rule.type = core::EventType::kCongestion;
  rule.family = Family::kThreshold;
  rule.feature = Feature::kLatencyMeanUs;
  rule.scope = Scope::kDevice;
  rule.threshold = 1000;
  WindowEngine engine(rule, set);
  std::vector<WindowResult> closed;
  const auto sink = [&](const WindowResult& w) { closed.push_back(w); };

  auto mk = [](util::SimTime at, std::uint16_t lat) {
    auto row = drop_row(at);
    row.event.type = core::EventType::kCongestion;
    row.event.queue_latency_us = lat;
    return row;
  };
  engine.offer(mk(util::microseconds(100), 10), sink);
  engine.offer(mk(util::microseconds(200), 30), sink);
  engine.advance(util::milliseconds(1) + set.lateness + 1, sink);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_DOUBLE_EQ(closed[0].result.value, 20.0);
}

}  // namespace
}  // namespace netseer::detect
