// Golden unit tests for the three detector families: exact hysteresis
// levels for the static threshold, warm-up / frozen-while-firing / decay
// behaviour for the EWMA residual, and the CUSUM detection-delay law
// (delay ~ decision_h / (shift - slack) windows). These are the math
// contracts the e2e expectations are derived from — if one of these
// moves, the incident alert sets move with it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "detect/detectors.h"
#include "detect/rules.h"

namespace netseer::detect {
namespace {

std::vector<bool> feed(Detector& detector, const std::vector<double>& values) {
  std::vector<bool> firing;
  firing.reserve(values.size());
  for (const double v : values) firing.push_back(detector.observe(v, false).firing);
  return firing;
}

TEST(ThresholdDetectorTest, HysteresisGolden) {
  ThresholdDetector d(/*trigger=*/10, /*clear=*/5);
  const auto firing = feed(d, {3, 10, 7, 6, 5, 9, 10});
  const std::vector<bool> expected{false,  // 3 below trigger
                                   true,   // 10 reaches trigger
                                   true,   // 7 holds (above clear)
                                   true,   // 6 holds
                                   false,  // 5 falls to the clear level
                                   false,  // 9 below trigger again
                                   true};  // 10 re-triggers
  EXPECT_EQ(firing, expected);
}

TEST(ThresholdDetectorTest, ScoreIsValueOverTrigger) {
  ThresholdDetector d(10, 5);
  EXPECT_DOUBLE_EQ(d.observe(20, false).score, 2.0);
  EXPECT_DOUBLE_EQ(d.observe(15, false).score, 1.5);
}

TEST(ThresholdDetectorTest, ClearClampedToTrigger) {
  // clear > trigger would deadband inverted; ctor clamps it down.
  ThresholdDetector d(10, 50);
  EXPECT_TRUE(d.observe(10, false).firing);
  EXPECT_FALSE(d.observe(10, false).firing);  // releases at value <= trigger
}

TEST(EwmaDetectorTest, WarmupNeverFires) {
  EwmaDetector d(0.5, 3.0, /*warmup=*/4, 1.0, false);
  // Wildly anomalous values inside the warm-up train the baseline
  // instead of firing — the family has no reference to judge against.
  EXPECT_FALSE(d.observe(1000, false).firing);
  EXPECT_FALSE(d.observe(0, false).firing);
  EXPECT_FALSE(d.observe(1000, false).firing);
  EXPECT_FALSE(d.observe(0, false).firing);
  EXPECT_TRUE(d.warmed_up());
}

TEST(EwmaDetectorTest, GoldenSequence) {
  EwmaDetector d(0.5, 3.0, /*warmup=*/4, /*min_sigma=*/1.0, false);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(d.observe(10, false).firing);
  EXPECT_DOUBLE_EQ(d.mean(), 10.0);
  EXPECT_DOUBLE_EQ(d.sigma(), 1.0);  // flat warm-up floors at min_sigma

  // 12: residual 2 < 3*sigma -> in control, learns.
  EXPECT_FALSE(d.observe(12, false).firing);
  EXPECT_DOUBLE_EQ(d.mean(), 11.0);  // 10 + 0.5 * 2

  // 20: residual 9 > gate -> fires; moments freeze while firing.
  const auto fired = d.observe(20, false);
  EXPECT_TRUE(fired.firing);
  EXPECT_GT(fired.score, 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 11.0);  // unchanged: anomaly must not teach

  // Back inside the gate: releases, resumes learning.
  EXPECT_FALSE(d.observe(11, false).firing);
}

TEST(EwmaDetectorTest, SkipEmptyReleasesWithoutLearning) {
  EwmaDetector d(0.5, 3.0, 2, 1.0, /*skip_empty=*/true);
  (void)d.observe(10, false);
  (void)d.observe(10, false);
  EXPECT_TRUE(d.observe(100, false).firing);
  const double mean_before = d.mean();
  // Empty window of a sample-statistic feature: no samples arrived, so
  // the firing state releases and the baseline is untouched.
  EXPECT_FALSE(d.observe(0, true).firing);
  EXPECT_DOUBLE_EQ(d.mean(), mean_before);
}

TEST(EwmaDetectorTest, RateFeatureTreatsEmptyAsZeroSample) {
  EwmaDetector d(0.5, 3.0, 2, 1.0, /*skip_empty=*/false);
  (void)d.observe(10, false);
  (void)d.observe(10, false);
  const double mean_before = d.mean();
  (void)d.observe(0, true);  // a real zero: the rate fell to nothing
  EXPECT_LT(d.mean(), mean_before);
}

TEST(CusumDetectorTest, DetectionDelayLaw) {
  // reference 10, slack 1, h 8: a shift to 13 contributes drift 2 per
  // window, so the statistic crosses h=8 after ceil(8/2)+1 = 5 windows.
  CusumDetector d(/*slack=*/1, /*decision_h=*/8, /*warmup=*/4);
  for (int i = 0; i < 4; ++i) (void)d.observe(10, false);
  EXPECT_DOUBLE_EQ(d.reference(), 10.0);

  int windows_to_fire = 0;
  while (!d.observe(13, false).firing) {
    ++windows_to_fire;
    ASSERT_LT(windows_to_fire, 100);
  }
  EXPECT_EQ(windows_to_fire, 4);  // fires ON the 5th shifted window
}

TEST(CusumDetectorTest, SlackAbsorbsJitter) {
  CusumDetector d(/*slack=*/1, /*decision_h=*/8, /*warmup=*/8);
  for (int i = 0; i < 8; ++i) (void)d.observe(10 + (i % 2), false);  // ref ~10.5
  // Jitter inside the slack band never accumulates.
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(d.observe(10 + (i % 2), false).firing);
  }
  EXPECT_LT(d.statistic(), 8.0);
}

TEST(CusumDetectorTest, DrainsAndClearsAfterShiftEnds) {
  CusumDetector d(1, 8, 4);
  for (int i = 0; i < 4; ++i) (void)d.observe(10, false);
  while (!d.observe(13, false).firing) {
  }
  // Back in control: drift is now -1 per window; clears below h/2.
  int windows_to_clear = 0;
  while (d.observe(10, false).firing) {
    ++windows_to_clear;
    ASSERT_LT(windows_to_clear, 100);
  }
  EXPECT_GT(windows_to_clear, 2);  // hysteresis: not a one-window release
  EXPECT_DOUBLE_EQ(d.statistic(), 0.0);
}

TEST(DetectorFactoryTest, BuildsEveryFamily) {
  RuleSet set = RuleSet::defaults();
  bool saw_threshold = false, saw_ewma = false, saw_cusum = false;
  for (const Rule& rule : set.rules) {
    const auto detector = make_detector(rule);
    ASSERT_NE(detector, nullptr) << rule.name;
    EXPECT_STREQ(detector->family(), to_string(rule.family));
    saw_threshold |= rule.family == Family::kThreshold;
    saw_ewma |= rule.family == Family::kEwma;
    saw_cusum |= rule.family == Family::kCusum;
  }
  EXPECT_TRUE(saw_threshold && saw_ewma && saw_cusum);
}

TEST(DetectorResetTest, ResetForgetsEverything) {
  EwmaDetector e(0.5, 3, 2, 1, false);
  (void)e.observe(100, false);
  (void)e.observe(100, false);
  e.reset();
  EXPECT_FALSE(e.warmed_up());
  EXPECT_DOUBLE_EQ(e.mean(), 0.0);

  CusumDetector c(1, 8, 1);
  (void)c.observe(10, false);
  while (!c.observe(50, false).firing) {
  }
  c.reset();
  EXPECT_DOUBLE_EQ(c.statistic(), 0.0);
  EXPECT_DOUBLE_EQ(c.reference(), 0.0);
}

}  // namespace
}  // namespace netseer::detect
