// Rule-file parser: the text format netseer_detect --rules consumes.
#include <gtest/gtest.h>

#include "detect/rules.h"

namespace netseer::detect {
namespace {

TEST(RulesParseTest, GoldenFile) {
  const std::string text =
      "# detection rules\n"
      "window_us 500\n"
      "lateness_us 50\n"
      "idle_gc_windows 8\n"
      "rule drop-burst type=drop family=threshold feature=packets scope=device-flow "
      "threshold=20 clear_ratio=0.25 raise_after=2\n"
      "rule lat family=ewma feature=latency-mean-us scope=device alpha=0.1 k_sigma=4 "
      "warmup=16 min_sigma=2\n"
      "rule shift type=congestion family=cusum feature=events scope=device "
      "cusum_slack=4 cusum_h=32 clear_after=5 escalate_after=6 damp_windows=2\n"
      "waive path.blackhole probed out of band\n";
  std::string error;
  const auto set = parse_rules(text, &error);
  ASSERT_TRUE(set.has_value()) << error;
  EXPECT_EQ(set->window, util::microseconds(500));
  EXPECT_EQ(set->lateness, util::microseconds(50));
  EXPECT_EQ(set->idle_gc_windows, 8u);
  ASSERT_EQ(set->rules.size(), 3u);

  const Rule& burst = set->rules[0];
  EXPECT_EQ(burst.name, "drop-burst");
  EXPECT_EQ(burst.type, core::EventType::kDrop);
  EXPECT_EQ(burst.family, Family::kThreshold);
  EXPECT_EQ(burst.feature, Feature::kPackets);
  EXPECT_EQ(burst.scope, Scope::kDeviceFlow);
  EXPECT_DOUBLE_EQ(burst.threshold, 20.0);
  EXPECT_DOUBLE_EQ(burst.clear_ratio, 0.25);
  EXPECT_EQ(burst.raise_after, 2u);

  const Rule& lat = set->rules[1];
  EXPECT_EQ(lat.family, Family::kEwma);
  EXPECT_EQ(lat.feature, Feature::kLatencyMeanUs);
  EXPECT_DOUBLE_EQ(lat.alpha, 0.1);
  EXPECT_DOUBLE_EQ(lat.k_sigma, 4.0);
  EXPECT_EQ(lat.warmup, 16u);
  EXPECT_DOUBLE_EQ(lat.min_sigma, 2.0);

  const Rule& shift = set->rules[2];
  EXPECT_EQ(shift.family, Family::kCusum);
  EXPECT_DOUBLE_EQ(shift.cusum_slack, 4.0);
  EXPECT_DOUBLE_EQ(shift.cusum_h, 32.0);
  EXPECT_EQ(shift.clear_after, 5u);
  EXPECT_EQ(shift.escalate_after, 6u);
  EXPECT_EQ(shift.damp_windows, 2u);

  ASSERT_EQ(set->waivers.size(), 1u);
  EXPECT_EQ(set->waivers[0].class_prefix, "path.blackhole");
  EXPECT_EQ(set->waivers[0].reason, "probed out of band");
  EXPECT_NE(set->waiver("path.blackhole"), nullptr);
  EXPECT_EQ(set->waiver("lpm.10.0.0.0/31"), nullptr);
}

TEST(RulesParseTest, ErrorsNameTheLine) {
  std::string error;
  EXPECT_FALSE(parse_rules("window_us -5\nrule r\n", &error).has_value());
  EXPECT_EQ(error, "line 1: expected a number after window_us");

  EXPECT_FALSE(parse_rules("rule\n", &error).has_value());
  EXPECT_EQ(error, "line 1: rule needs a name");

  EXPECT_FALSE(parse_rules("rule r threshold\n", &error).has_value());
  EXPECT_EQ(error, "line 1: expected key=value, got 'threshold'");

  EXPECT_FALSE(parse_rules("rule r bogus=1\n", &error).has_value());
  EXPECT_EQ(error, "line 1: bad rule setting 'bogus=1'");

  EXPECT_FALSE(parse_rules("rule r family=fourier\n", &error).has_value());
  EXPECT_EQ(error, "line 1: bad rule setting 'family=fourier'");

  EXPECT_FALSE(parse_rules("frobnicate\n", &error).has_value());
  EXPECT_EQ(error, "line 1: unknown directive 'frobnicate'");

  EXPECT_FALSE(parse_rules("# only comments\n", &error).has_value());
  EXPECT_NE(error.find("no rules defined"), std::string::npos);
}

TEST(RulesParseTest, CommentsAndBlankLinesAreIgnored) {
  std::string error;
  const auto set = parse_rules("\n# header\nrule r threshold=3  # trailing\n\n", &error);
  ASSERT_TRUE(set.has_value()) << error;
  ASSERT_EQ(set->rules.size(), 1u);
  EXPECT_DOUBLE_EQ(set->rules[0].threshold, 3.0);
}

TEST(RulesParseTest, LoadRulesMissingFile) {
  std::string error;
  EXPECT_FALSE(load_rules("/nonexistent/netseer/rules.conf", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(RulesDefaultsTest, CoverEveryIncidentEventType) {
  const RuleSet set = RuleSet::defaults();
  EXPECT_NE(set.rule_for(core::EventType::kDrop), nullptr);
  EXPECT_NE(set.rule_for(core::EventType::kAclDrop), nullptr);
  EXPECT_NE(set.rule_for(core::EventType::kCongestion), nullptr);
  EXPECT_NE(set.rule_for(core::EventType::kPause), nullptr);
  // All three detector families are represented.
  bool threshold = false, ewma = false, cusum = false;
  for (const auto& rule : set.rules) {
    threshold |= rule.family == Family::kThreshold;
    ewma |= rule.family == Family::kEwma;
    cusum |= rule.family == Family::kCusum;
  }
  EXPECT_TRUE(threshold && ewma && cusum);
}

}  // namespace
}  // namespace netseer::detect
