// DetectService end-to-end over a FlowEventStore: pump/finish over the
// subscription, the constant-rate zero-alert property, and resume-LSN
// checkpointing (exactly-once restart at row granularity).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/event.h"
#include "detect/service.h"

namespace netseer::detect {
namespace {

namespace stdfs = std::filesystem;

constexpr util::NodeId kSwitch = 3;

core::FlowEvent drop_event(util::SimTime at, std::uint16_t counter = 1,
                           std::uint16_t src_port = 4000) {
  packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, 1, 0, 1),
                       packet::Ipv4Addr::from_octets(10, 1, 0, 2), 6, src_port, 80};
  auto ev = core::make_event(core::EventType::kDrop, flow, kSwitch, at);
  ev.counter = counter;
  return ev;
}

TEST(DetectServiceTest, PumpRaisesAlertOnDropBurst) {
  store::FlowEventStore fs{store::StoreOptions{}};
  // 3 ms of a drop burst: ~50 dropped packets per 1 ms window, well
  // past drop-burst's threshold of 20.
  for (util::SimTime t = 0; t < util::milliseconds(3); t += util::microseconds(20)) {
    fs.add(drop_event(t), t);
  }
  fs.flush();
  (void)fs.sync();

  DetectService service(fs);
  EXPECT_GT(service.pump(), 0u);
  service.finish();

  ASSERT_EQ(service.alerts().alerts().size(), 1u);
  const Alert& alert = service.alerts().alerts()[0];
  EXPECT_EQ(alert.rule->name, "drop-burst");
  EXPECT_EQ(alert.key.switch_id, kSwitch);
  EXPECT_GE(alert.firing_windows, 2u);
  EXPECT_EQ(service.subscription().last_lsn(), fs.durable_lsn());
}

TEST(DetectServiceTest, ConstantRateStreamRaisesZeroAlertsAtAnyWindowSize) {
  // The adaptive families' core property: a constant-rate event stream
  // is "normal" by definition, whatever the window width — EWMA learns
  // it, CUSUM's slack absorbs the +/-1 bucketing jitter, and a sane
  // static threshold sits above it.
  for (const util::SimDuration window :
       {util::microseconds(100), util::microseconds(250), util::microseconds(700),
        util::milliseconds(1), util::milliseconds(2), util::milliseconds(3)}) {
    store::FlowEventStore fs{store::StoreOptions{}};
    for (util::SimTime t = 0; t < util::milliseconds(30); t += util::microseconds(20)) {
      fs.add(drop_event(t), t);
    }
    fs.flush();
    (void)fs.sync();

    DetectOptions options;
    options.rules.window = window;
    options.rules.rules.clear();
    Rule ewma;
    ewma.name = "ewma-rate";
    ewma.family = Family::kEwma;
    ewma.feature = Feature::kEvents;
    ewma.scope = Scope::kDevice;
    options.rules.rules.push_back(ewma);
    Rule cusum;
    cusum.name = "cusum-rate";
    cusum.family = Family::kCusum;
    cusum.feature = Feature::kEvents;
    cusum.scope = Scope::kDevice;
    cusum.cusum_slack = 2.0;
    options.rules.rules.push_back(cusum);
    Rule threshold;
    threshold.name = "threshold-rate";
    threshold.family = Family::kThreshold;
    threshold.feature = Feature::kEvents;
    threshold.scope = Scope::kDevice;
    threshold.threshold = 1e6;
    options.rules.rules.push_back(threshold);

    DetectService service(fs, std::move(options));
    service.pump();
    service.finish();
    EXPECT_EQ(service.alerts().stats().raised, 0u)
        << "window = " << window << " ns raised a false alert";
  }
}

TEST(DetectServiceTest, CheckpointRoundtrip) {
  const auto path =
      (stdfs::temp_directory_path() / "netseer_detect_ckpt_roundtrip.nsdc").string();
  stdfs::remove(path);
  EXPECT_FALSE(DetectService::load_checkpoint(path).has_value());
  ASSERT_TRUE(DetectService::save_checkpoint(path, 123456789));
  const auto loaded = DetectService::load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, 123456789u);

  // Flip a payload byte: the CRC must reject the file.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 9, SEEK_SET);
    std::fputc(0x7f, f);
    std::fclose(f);
  }
  EXPECT_FALSE(DetectService::load_checkpoint(path).has_value());
  stdfs::remove(path);
}

TEST(DetectServiceTest, RestartResumesExactlyOnce) {
  const auto ckpt =
      (stdfs::temp_directory_path() / "netseer_detect_ckpt_restart.nsdc").string();
  stdfs::remove(ckpt);

  store::FlowEventStore fs{store::StoreOptions{}};
  for (util::SimTime t = 0; t < util::milliseconds(3); t += util::microseconds(20)) {
    fs.add(drop_event(t), t);
  }
  fs.flush();
  (void)fs.sync();
  const auto first_batch = fs.durable_lsn();

  DetectOptions options;
  options.checkpoint_path = ckpt;
  std::uint64_t alerts_before = 0;
  {
    DetectService service(fs, options);
    EXPECT_FALSE(service.stats().resumed);
    service.pump();
    EXPECT_GT(service.stats().checkpoints, 0u);
    alerts_before = service.alerts().stats().raised;
    EXPECT_GE(alerts_before, 1u);
  }

  // New rows land while no service is running: one benign drop, far in
  // the future so it cannot extend the old burst's windows.
  fs.add(drop_event(util::milliseconds(50), 1, 5000), util::milliseconds(50));
  fs.flush();
  (void)fs.sync();

  DetectService restarted(fs, options);
  EXPECT_TRUE(restarted.stats().resumed);
  EXPECT_EQ(restarted.stats().resumed_lsn, first_batch);
  const std::size_t rows = restarted.pump();
  restarted.finish();
  // Exactly the rows after the checkpoint — the burst is not re-scored,
  // so it cannot re-raise, and the single benign drop stays silent.
  EXPECT_EQ(rows, fs.durable_lsn() - first_batch);
  EXPECT_EQ(restarted.alerts().stats().raised, 0u);
  stdfs::remove(ckpt);
}

TEST(DetectServiceTest, InlineSimulatorDriverPumps) {
  store::FlowEventStore fs{store::StoreOptions{}};
  sim::Simulator sim;
  DetectService service(fs);
  auto handle = service.start(sim, util::microseconds(500));
  for (util::SimTime t = 0; t < util::milliseconds(2); t += util::microseconds(20)) {
    (void)sim.schedule_at(t, [&fs, t] { fs.add(drop_event(t), t); });
  }
  sim.run_until(util::milliseconds(3));
  handle.cancel();
  sim.run();
  fs.flush();
  (void)fs.sync();
  service.pump();
  service.finish();
  EXPECT_GE(service.alerts().stats().raised, 1u);
  EXPECT_EQ(service.stats().rows, fs.durable_lsn());
}

}  // namespace
}  // namespace netseer::detect
