#include <gtest/gtest.h>

#include "backend/collector.h"
#include "backend/event_store.h"
#include "core/netseer_app.h"
#include "core/nic_agent.h"
#include "fabric/network.h"
#include "monitors/everflow.h"
#include "monitors/ground_truth.h"
#include "monitors/netsight.h"
#include "monitors/pingmesh.h"
#include "monitors/sampling.h"
#include "monitors/snmp.h"
#include "packet/builder.h"

namespace netseer::monitors {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;
using packet::Ipv4Prefix;

constexpr auto kCongestionThreshold = util::microseconds(20);

/// h1,h3 -- s1 -- s2 -- h2 with every monitor attached. Agent order:
/// ground truth first, baselines, NetSeer last.
struct Rig {
  Rig() : net(11), channel(net.simulator(), util::Rng(3), util::milliseconds(1), 0.0),
          sampler10(10), sampler1000(1000),
          everflow(net.simulator(),
                   EverflowMonitor::Config{.telemetry_flows = 4,
                                           .reselect_interval = util::milliseconds(5)},
                   util::Rng(13)) {
    pdp::SwitchConfig sc;
    sc.num_ports = 4;
    sc.port_rate = util::BitRate::gbps(10);
    s1 = &net.add_switch("s1", sc);
    s2 = &net.add_switch("s2", sc);
    h1 = &net.add_host("h1", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(10));
    h2 = &net.add_host("h2", Ipv4Addr::from_octets(10, 0, 1, 1), util::BitRate::gbps(10));
    h3 = &net.add_host("h3", Ipv4Addr::from_octets(10, 0, 0, 2), util::BitRate::gbps(10));
    net.connect_host(*s1, 0, *h1, util::microseconds(1));
    net.connect_host(*s2, 0, *h2, util::microseconds(1));
    net.connect_host(*s1, 2, *h3, util::microseconds(1));
    auto [l12, l21] = net.connect_switches(*s1, 1, *s2, 1, util::microseconds(1));
    s1_to_s2 = l12;
    (void)l21;
    net.compute_routes();

    truth = std::make_unique<GroundTruth>(kCongestionThreshold);
    net.set_link_observer(truth.get());
    net.add_agent_everywhere(truth.get());
    net.add_agent_everywhere(&netsight);
    net.add_agent_everywhere(&sampler10);
    net.add_agent_everywhere(&sampler1000);
    net.add_agent_everywhere(&everflow);

    delivery = std::make_unique<NetSightMonitor::DeliveryTracker>(netsight);
    for (auto& host : net.hosts()) host->add_app(delivery.get());

    store = std::make_unique<backend::EventStore>();
    collector = std::make_unique<backend::Collector>(net.simulator(), 1000, channel, *store);
    core::NetSeerConfig ns;
    ns.congestion_threshold = kCongestionThreshold;
    app1 = std::make_unique<core::NetSeerApp>(*s1, ns, &channel, 1000);
    app2 = std::make_unique<core::NetSeerApp>(*s2, ns, &channel, 1000);
    nic1 = std::make_unique<core::NetSeerNicAgent>();
    nic2 = std::make_unique<core::NetSeerNicAgent>();
    nic3 = std::make_unique<core::NetSeerNicAgent>();
    h1->set_nic_agent(nic1.get());
    h2->set_nic_agent(nic2.get());
    h3->set_nic_agent(nic3.get());
  }

  FlowKey flow(std::uint16_t sport) const { return FlowKey{h1->addr(), h2->addr(), 6, sport, 80}; }

  void send_burst(int packets, std::uint16_t sport = 1000, std::uint32_t payload = 500) {
    for (int i = 0; i < packets; ++i) h1->send(packet::make_tcp(flow(sport), payload));
  }

  /// Bounded settle: lets in-flight traffic drain without requiring the
  /// event queue to empty (EverFlow's periodic task keeps it non-empty).
  void settle(util::SimDuration span = util::milliseconds(5)) {
    net.simulator().run_until(net.simulator().now() + span);
  }

  void finish() {
    everflow.stop();  // periodic tasks must stop before draining run()
    net.simulator().run();
    app1->flush();
    app2->flush();
    net.simulator().run();
    app1->flush();
    app2->flush();
    net.simulator().run();
  }

  /// NetSeer's detected groups from the backend store.
  [[nodiscard]] EventGroupSet netseer_groups(std::optional<core::EventType> type = {}) const {
    EventGroupSet set;
    for (const auto& stored : store->all()) {
      if (type && stored.event.type != *type) continue;
      set.insert(EventGroup{stored.event.switch_id, stored.event.flow.hash64(),
                            stored.event.type});
    }
    return set;
  }

  fabric::Network net;
  core::ReportChannel channel;
  pdp::Switch* s1;
  pdp::Switch* s2;
  net::Host* h1;
  net::Host* h2;
  net::Host* h3;
  net::Link* s1_to_s2;
  std::unique_ptr<GroundTruth> truth;
  NetSightMonitor netsight;
  SamplingMonitor sampler10;
  SamplingMonitor sampler1000;
  EverflowMonitor everflow;
  std::unique_ptr<NetSightMonitor::DeliveryTracker> delivery;
  std::unique_ptr<backend::EventStore> store;
  std::unique_ptr<backend::Collector> collector;
  std::unique_ptr<core::NetSeerApp> app1;
  std::unique_ptr<core::NetSeerApp> app2;
  std::unique_ptr<core::NetSeerNicAgent> nic1;
  std::unique_ptr<core::NetSeerNicAgent> nic2;
  std::unique_ptr<core::NetSeerNicAgent> nic3;
};

double coverage(const EventGroupSet& detected, const EventGroupSet& actual) {
  if (actual.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& group : actual) hit += detected.contains(group);
  return static_cast<double>(hit) / static_cast<double>(actual.size());
}

TEST(GroundTruthTest, RecordsPipelineDrop) {
  Rig rig;
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  rig.send_burst(10);
  rig.finish();
  EXPECT_EQ(rig.truth->count(core::EventType::kDrop), 10u);
  const auto groups = rig.truth->drop_groups(pdp::DropReason::kRouteMiss);
  EXPECT_EQ(groups.size(), 1u);
}

TEST(GroundTruthTest, RecordsLinkFaultsUpstream) {
  Rig rig;
  rig.send_burst(5);
  rig.settle();
  net::LinkFaultModel faults;
  faults.drop_prob = 0.1;
  rig.s1_to_s2->set_fault_model(faults);
  rig.send_burst(200);
  rig.finish();
  const auto groups = rig.truth->drop_groups(pdp::DropReason::kLinkLoss);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.begin()->node, rig.s1->id());
}

TEST(GroundTruthTest, PathTrackingIsExact) {
  Rig rig;
  rig.send_burst(100);
  rig.finish();
  // One flow, two switches: exactly two path events (no expiry effects).
  EXPECT_EQ(rig.truth->count(core::EventType::kPathChange), 2u);
}

TEST(NetSeerVsTruth, ZeroFalseNegativesZeroFalsePositives) {
  Rig rig;
  // Mixed faults: pipeline drops + link loss + congestion.
  rig.send_burst(5);
  rig.settle();
  net::LinkFaultModel faults;
  faults.drop_prob = 0.02;
  rig.s1_to_s2->set_fault_model(faults);
  rig.send_burst(300, 1000, 1400);
  for (int i = 0; i < 300; ++i) {
    rig.h3->send(packet::make_tcp(FlowKey{rig.h3->addr(), rig.h2->addr(), 6, 1001, 80}, 1400));
  }
  rig.settle();
  rig.s1_to_s2->set_fault_model(net::LinkFaultModel{});
  rig.send_burst(20);
  rig.finish();

  for (const auto type : {core::EventType::kDrop, core::EventType::kCongestion,
                          core::EventType::kPathChange}) {
    const auto actual = rig.truth->groups(type);
    const auto detected = rig.netseer_groups(type);
    // Zero false negatives: every true group detected.
    for (const auto& group : actual) {
      EXPECT_TRUE(detected.contains(group))
          << "missed " << core::to_string(type) << " at node " << group.node;
    }
    if (type != core::EventType::kPathChange) {
      // Zero false positives: nothing detected that did not happen.
      // (Path change exempt: limited table expiry legally re-reports.)
      for (const auto& group : detected) {
        EXPECT_TRUE(actual.contains(group))
            << "phantom " << core::to_string(type) << " at node " << group.node;
      }
    }
  }
}

TEST(NetSightTest, FullDropCoverageIncludingWireLoss) {
  Rig rig;
  rig.send_burst(5);
  rig.settle();
  net::LinkFaultModel faults;
  faults.drop_prob = 0.05;
  rig.s1_to_s2->set_fault_model(faults);
  rig.send_burst(200);
  rig.settle();
  rig.s1_to_s2->set_fault_model(net::LinkFaultModel{});
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  rig.send_burst(20, 1001);
  rig.finish();

  const auto actual = rig.truth->groups(core::EventType::kDrop);
  EXPECT_DOUBLE_EQ(coverage(rig.netsight.drop_groups(), actual), 1.0);
}

TEST(NetSightTest, OverheadIsPerPacketPerHop) {
  Rig rig;
  rig.send_burst(100);
  rig.finish();
  // 100 packets x 2 switch hops x 64 B.
  EXPECT_GE(rig.netsight.overhead_bytes(), 100u * 2u * 64u);
}

TEST(SamplingTest, NeverSeesDrops) {
  Rig rig;
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  rig.send_burst(1000);
  rig.finish();
  // Sampling observes forwarded packets only: drop coverage is zero.
  EXPECT_EQ(coverage(rig.sampler10.congestion_groups(kCongestionThreshold),
                     rig.truth->groups(core::EventType::kDrop)),
            0.0);
}

TEST(SamplingTest, RateControlsCongestionCoverage) {
  Rig rig;
  // Many short congested flows: 1:10 should catch far more than 1:1000.
  for (std::uint16_t s = 0; s < 100; ++s) {
    rig.send_burst(40, 2000 + s, 1400);
    for (int i = 0; i < 40; ++i) {
      rig.h3->send(
          packet::make_tcp(FlowKey{rig.h3->addr(), rig.h2->addr(), 6,
                                   static_cast<std::uint16_t>(2000 + s), 80},
                           1400));
    }
  }
  rig.finish();
  const auto actual = rig.truth->groups(core::EventType::kCongestion);
  ASSERT_GT(actual.size(), 20u);
  const double c10 = coverage(rig.sampler10.congestion_groups(kCongestionThreshold), actual);
  const double c1000 = coverage(rig.sampler1000.congestion_groups(kCongestionThreshold), actual);
  EXPECT_GT(c10, c1000);
  EXPECT_GT(c10, 0.05);
  EXPECT_LT(c1000, 0.2);
}

TEST(EverflowTest, PartialCoverageViaSelectedFlows) {
  Rig rig;
  // 50 flows, only 4 in the telemetry set per window.
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  for (int round = 0; round < 4; ++round) {
    for (std::uint16_t s = 0; s < 50; ++s) rig.send_burst(5, 3000 + s);
    rig.net.simulator().run_until(rig.net.simulator().now() + util::milliseconds(6));
  }
  rig.finish();

  const auto actual = rig.truth->groups(core::EventType::kDrop);
  const double c = coverage(rig.everflow.drop_groups(), actual);
  EXPECT_GT(rig.everflow.known_flow_count(), 40u);
  EXPECT_LT(c, 0.5);  // far from full coverage
}

TEST(SnmpTest, SeesExistenceNotFlows) {
  Rig rig;
  SnmpMonitor snmp(rig.net.simulator(), {rig.s1, rig.s2}, util::milliseconds(1));
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  rig.send_burst(50);
  rig.net.simulator().run_until(util::milliseconds(10));
  snmp.stop();
  rig.finish();
  EXPECT_TRUE(snmp.saw_drops_at(rig.s2->id()));
  EXPECT_FALSE(snmp.saw_drops_at(rig.s1->id()));
  EXPECT_GT(snmp.overhead_bytes(), 0u);
}

TEST(PingmeshTest, DetectsLossExistence) {
  Rig rig;
  PingmeshProber prober(rig.net.simulator(), {rig.h1, rig.h2, rig.h3}, util::milliseconds(2),
                        /*timeout=*/util::milliseconds(5));
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  rig.net.simulator().run_until(util::milliseconds(20));
  EXPECT_GT(prober.lost_probes(), 0u);  // probes toward h2 die
  EXPECT_TRUE(prober.anomaly_in_window(0, util::milliseconds(20), util::milliseconds(1)));
  EXPECT_GT(prober.probe_bytes(), 0u);
}

TEST(PingmeshTest, CleanNetworkNoAnomaly) {
  Rig rig;
  PingmeshProber prober(rig.net.simulator(), {rig.h1, rig.h2, rig.h3}, util::milliseconds(2));
  rig.net.simulator().run_until(util::milliseconds(20));
  EXPECT_EQ(prober.lost_probes(), 0u);
  EXPECT_FALSE(prober.anomaly_in_window(0, util::milliseconds(20), util::milliseconds(1)));
  EXPECT_GT(prober.results().size(), 30u);  // 6 pairs x ~9 rounds
}

TEST(OverheadComparison, NetSeerOrdersOfMagnitudeBelowNetSight) {
  Rig rig;
  for (std::uint16_t s = 0; s < 50; ++s) {
    rig.send_burst(40, 2000 + s, 1400);
    for (int i = 0; i < 40; ++i) {
      rig.h3->send(
          packet::make_tcp(FlowKey{rig.h3->addr(), rig.h2->addr(), 6,
                                   static_cast<std::uint16_t>(2000 + s), 80},
                           1400));
    }
  }
  rig.finish();

  const auto traffic =
      rig.app1->funnel().traffic_bytes + rig.app2->funnel().traffic_bytes;
  const auto netseer_bytes =
      rig.app1->funnel().report_bytes + rig.app2->funnel().report_bytes;
  const auto netsight_bytes = rig.netsight.overhead_bytes();
  ASSERT_GT(traffic, 0u);
  EXPECT_LT(netseer_bytes * 20, netsight_bytes);  // >20x cheaper here
}

}  // namespace
}  // namespace netseer::monitors
