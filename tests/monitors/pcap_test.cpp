#include "monitors/pcap_tap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "fabric/network.h"
#include "packet/builder.h"

namespace netseer::monitors {
namespace {

using packet::Ipv4Addr;

std::uint32_t read_u32le(const std::string& bytes, std::size_t at) {
  return static_cast<std::uint8_t>(bytes[at]) |
         (static_cast<std::uint8_t>(bytes[at + 1]) << 8) |
         (static_cast<std::uint8_t>(bytes[at + 2]) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[at + 3])) << 24);
}

TEST(Pcap, GlobalHeaderIsValid) {
  std::stringstream out;
  net::PcapWriter writer(out);
  const auto bytes = out.str();
  ASSERT_EQ(bytes.size(), 24u);
  EXPECT_EQ(read_u32le(bytes, 0), 0xa1b2c3d4u);   // magic
  EXPECT_EQ(read_u32le(bytes, 20), 1u);           // LINKTYPE_ETHERNET
}

TEST(Pcap, RecordsCarryTimestampAndFrame) {
  std::stringstream out;
  net::PcapWriter writer(out);
  const auto pkt = packet::make_tcp(
      packet::FlowKey{Ipv4Addr::from_octets(10, 0, 0, 1), Ipv4Addr::from_octets(10, 0, 0, 2),
                      6, 1, 2},
      100);
  writer.write(pkt, util::seconds(3) + util::microseconds(250));
  EXPECT_EQ(writer.frames_written(), 1u);

  const auto bytes = out.str();
  ASSERT_GE(bytes.size(), 24u + 16u);
  EXPECT_EQ(read_u32le(bytes, 24), 3u);    // seconds
  EXPECT_EQ(read_u32le(bytes, 28), 250u);  // microseconds
  const auto captured = read_u32le(bytes, 32);
  EXPECT_EQ(captured, pkt.wire_bytes());
  EXPECT_EQ(read_u32le(bytes, 36), captured);
  EXPECT_EQ(bytes.size(), 24u + 16u + captured);

  // The captured frame round-trips through the wire parser.
  std::vector<std::byte> frame(captured);
  std::memcpy(frame.data(), bytes.data() + 40, captured);
  const auto parsed = packet::wire::parse(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->packet.flow(), pkt.flow());
}

TEST(Pcap, TapAgentCapturesForwardedTraffic) {
  fabric::Network net(3);
  pdp::SwitchConfig sc;
  sc.num_ports = 4;
  auto& sw = net.add_switch("s", sc);
  auto& a = net.add_host("a", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(10));
  auto& b = net.add_host("b", Ipv4Addr::from_octets(10, 0, 0, 2), util::BitRate::gbps(10));
  net.connect_host(sw, 0, a, util::microseconds(1));
  net.connect_host(sw, 1, b, util::microseconds(1));
  net.compute_routes();

  std::stringstream out;
  net::PcapWriter writer(out);
  PcapTapAgent tap(writer, /*port=*/1);  // only b-bound traffic
  sw.add_agent(&tap);

  const packet::FlowKey to_b{a.addr(), b.addr(), 6, 1, 2};
  const packet::FlowKey to_a{b.addr(), a.addr(), 6, 3, 4};
  for (int i = 0; i < 7; ++i) a.send(packet::make_tcp(to_b, 100));
  for (int i = 0; i < 5; ++i) b.send(packet::make_tcp(to_a, 100));
  net.simulator().run();

  EXPECT_EQ(writer.frames_written(), 7u);  // port filter applied
}

}  // namespace
}  // namespace netseer::monitors
