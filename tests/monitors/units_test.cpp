// Targeted unit tests of monitor internals (the integration behaviours
// are covered in monitors_test.cpp).
#include <gtest/gtest.h>

#include "monitors/netsight.h"
#include "monitors/observation.h"
#include "monitors/sampling.h"
#include "monitors/syslog.h"
#include "packet/builder.h"
#include "pdp/switch.h"

namespace netseer::monitors {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;

FlowKey flow(std::uint16_t sport) {
  return FlowKey{Ipv4Addr::from_octets(10, 0, 0, 1), Ipv4Addr::from_octets(10, 0, 0, 2), 6,
                 sport, 80};
}

TEST(ObservationLog, GroupsDeduplicateByNodeFlowType) {
  ObservationLog log;
  Observation obs;
  obs.node = 1;
  obs.flow = flow(1);
  obs.type = core::EventType::kCongestion;
  log.record(obs);
  log.record(obs);  // duplicate
  obs.node = 2;
  log.record(obs);  // different node
  obs.type = core::EventType::kPathChange;
  log.record(obs);  // different type
  EXPECT_EQ(log.groups().size(), 3u);
}

TEST(ObservationLog, FlowlessObservationsExcludedFromGroups) {
  ObservationLog log;
  Observation obs;
  obs.node = 1;  // no flow (counter-style observation)
  log.record(obs);
  EXPECT_TRUE(log.groups().empty());
}

TEST(ObservationLog, OverheadAccumulatesAndClears) {
  ObservationLog log;
  log.add_overhead_bytes(64);
  log.add_overhead_bytes(64);
  EXPECT_EQ(log.overhead_bytes(), 128u);
  log.clear();
  EXPECT_EQ(log.overhead_bytes(), 0u);
  EXPECT_TRUE(log.observations().empty());
}

TEST(EventGroup, HashAndEquality) {
  const EventGroup a{1, 42, core::EventType::kDrop};
  const EventGroup b{1, 42, core::EventType::kDrop};
  const EventGroup c{1, 42, core::EventType::kPause};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EventGroupSet set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

struct NetSightRig {
  NetSightRig() : sw(sim, 1, "sw", make_config()) {}
  static pdp::SwitchConfig make_config() {
    pdp::SwitchConfig config;
    config.num_ports = 4;
    return config;
  }
  void egress(NetSightMonitor& monitor, const packet::Packet& pkt, util::SimDuration delay,
              util::PortId in = 0, util::PortId out = 1) {
    pdp::EgressInfo info;
    info.ingress_port = in;
    info.egress_port = out;
    info.queue_delay = delay;
    auto copy = pkt;
    monitor.on_egress(sw, copy, info);
  }
  sim::Simulator sim;
  pdp::Switch sw;
};

TEST(NetSightUnit, ExplicitDropPostcardCreatesGroup) {
  NetSightRig rig;
  NetSightMonitor monitor;
  const auto pkt = packet::make_tcp(flow(1), 100);
  pdp::PipelineContext ctx;
  ctx.drop = pdp::DropReason::kRouteMiss;
  monitor.on_pipeline_drop(rig.sw, pkt, ctx);
  const auto groups = monitor.drop_groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.begin()->node, rig.sw.id());
}

TEST(NetSightUnit, DeliveredPacketIsNotAWireLoss) {
  NetSightRig rig;
  NetSightMonitor monitor;
  NetSightMonitor::DeliveryTracker tracker(monitor);
  auto pkt = packet::make_tcp(flow(1), 100);
  rig.egress(monitor, pkt, 0);
  // Without a delivery record, the last-egress heuristic calls it a loss:
  EXPECT_EQ(monitor.drop_groups().size(), 1u);
  // With the delivery record it is clean:
  net::Host host(rig.sim, 9, "h", Ipv4Addr::from_octets(10, 0, 0, 2), util::BitRate::gbps(1));
  tracker.on_receive(host, pkt);
  EXPECT_TRUE(monitor.drop_groups().empty());
}

TEST(NetSightUnit, WireLossInferenceCanBeDisabled) {
  NetSightRig rig;
  NetSightMonitor monitor;
  auto pkt = packet::make_tcp(flow(1), 100);
  rig.egress(monitor, pkt, 0);
  EXPECT_TRUE(monitor.drop_groups(/*infer_wire_losses=*/false).empty());
}

TEST(NetSightUnit, CongestionGroupsRespectThreshold) {
  NetSightRig rig;
  NetSightMonitor monitor;
  auto pkt = packet::make_tcp(flow(1), 100);
  rig.egress(monitor, pkt, util::microseconds(10));
  EXPECT_TRUE(monitor.congestion_groups(util::microseconds(20)).empty());
  rig.egress(monitor, pkt, util::microseconds(30));
  EXPECT_EQ(monitor.congestion_groups(util::microseconds(20)).size(), 1u);
}

TEST(NetSightUnit, PathGroupsDetectPortChanges) {
  NetSightRig rig;
  NetSightMonitor monitor;
  auto pkt = packet::make_tcp(flow(1), 100);
  rig.egress(monitor, pkt, 0, 0, 1);
  rig.egress(monitor, pkt, 0, 0, 1);  // same path: no new group event
  rig.egress(monitor, pkt, 0, 0, 2);  // changed egress
  // Group identity is (node, flow, type): one group here, observed twice.
  EXPECT_EQ(monitor.path_groups().size(), 1u);
}

TEST(SamplingUnit, ApproximatesConfiguredRate) {
  NetSightRig rig;
  SamplingMonitor sampler(100);
  auto pkt = packet::make_tcp(flow(1), 100);
  pdp::EgressInfo info;
  info.ingress_port = 0;
  info.egress_port = 1;
  for (int i = 0; i < 100000; ++i) {
    auto copy = pkt;
    sampler.on_egress(rig.sw, copy, info);
  }
  const double rate = static_cast<double>(sampler.log().observations().size()) / 100000.0;
  EXPECT_NEAR(rate, 0.01, 0.003);
}

TEST(SamplingUnit, IgnoresControlTraffic) {
  NetSightRig rig;
  SamplingMonitor sampler(1);
  auto notify = packet::make_udp(flow(1), 10);
  notify.kind = packet::PacketKind::kLossNotify;
  pdp::EgressInfo info;
  for (int i = 0; i < 100; ++i) {
    auto copy = notify;
    sampler.on_egress(rig.sw, copy, info);
  }
  EXPECT_TRUE(sampler.log().observations().empty());
}

TEST(SyslogUnit, CollectsAlertsWithTimestamps) {
  sim::Simulator sim;
  pdp::SwitchConfig config;
  config.num_ports = 2;
  pdp::Switch sw(sim, 5, "sw", config);
  SyslogCollector syslog(sim);
  syslog.attach(sw);
  (void)sim.schedule_at(util::milliseconds(3), [&] {
    sw.inject_hardware_fault(pdp::HardwareFault::kMmuFailure);
  });
  sim.run();
  ASSERT_EQ(syslog.alerts().size(), 1u);
  EXPECT_EQ(syslog.alerts()[0].node, 5u);
  EXPECT_EQ(syslog.alerts()[0].at, util::milliseconds(3));
  EXPECT_NE(syslog.alerts()[0].message.find("mmu-failure"), std::string::npos);
  EXPECT_TRUE(syslog.has_alert_for(5));
  EXPECT_FALSE(syslog.has_alert_for(6));
}

TEST(SyslogUnit, UndetectedFaultProducesNoAlert) {
  sim::Simulator sim;
  pdp::SwitchConfig config;
  config.num_ports = 2;
  pdp::Switch sw(sim, 5, "sw", config);
  SyslogCollector syslog(sim);
  syslog.attach(sw);
  sw.inject_hardware_fault(pdp::HardwareFault::kAsicFailure, /*self_check_detects=*/false);
  EXPECT_TRUE(syslog.alerts().empty());
}

}  // namespace
}  // namespace netseer::monitors
