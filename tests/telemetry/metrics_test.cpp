#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace netseer::telemetry {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksLevelAndPeakIndependently) {
  Gauge g;
  g.set(10);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 10);
  g.add(-5);
  EXPECT_EQ(g.value(), -2);
  EXPECT_EQ(g.peak(), 10);
}

TEST(Gauge, UpdateMaxOnlyRaises) {
  Gauge g;
  g.update_max(7);
  g.update_max(4);  // lower sample: no effect
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(g.peak(), 7);
  g.update_max(12);
  EXPECT_EQ(g.peak(), 12);
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 is the underflow bucket; bucket i covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(0.99), 0u);
  EXPECT_EQ(Histogram::bucket_of(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_of(1.99), 1u);
  EXPECT_EQ(Histogram::bucket_of(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_of(1024.0), 11u);
  EXPECT_EQ(Histogram::bucket_of(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::quiet_NaN()), 0u);
  // Beyond 2^63 everything lands in the last bucket.
  EXPECT_EQ(Histogram::bucket_of(1e30), Histogram::kBuckets - 1);
  // bucket_low is the inverse lower edge.
  EXPECT_DOUBLE_EQ(Histogram::bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_low(1), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_low(11), 1024.0);
}

TEST(Histogram, RecordsSummaryAndCounts) {
  Histogram h;
  h.record(1.0);
  h.record(3.0);
  h.record(3.0);
  h.record(0.5);
  EXPECT_EQ(h.summary().count(), 4u);
  EXPECT_DOUBLE_EQ(h.summary().min(), 0.5);
  EXPECT_DOUBLE_EQ(h.summary().max(), 3.0);
  EXPECT_EQ(h.buckets()[0], 1u);  // 0.5
  EXPECT_EQ(h.buckets()[1], 1u);  // 1.0
  EXPECT_EQ(h.buckets()[2], 2u);  // 3.0 x2
}

TEST(Histogram, MergeMatchesSingleStream) {
  Histogram a, b, combined;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.7;
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.summary().count(), combined.summary().count());
  EXPECT_DOUBLE_EQ(a.summary().min(), combined.summary().min());
  EXPECT_DOUBLE_EQ(a.summary().max(), combined.summary().max());
  EXPECT_NEAR(a.summary().mean(), combined.summary().mean(), 1e-9);
  EXPECT_NEAR(a.summary().stddev(), combined.summary().stddev(), 1e-9);
  EXPECT_EQ(a.buckets(), combined.buckets());
}

TEST(Registry, LookupCreatesOnceAndReturnsStableReferences) {
  Registry reg;
  Counter& c1 = reg.counter("pdp", "mmu.drops", 3);
  c1.add(5);
  // Registering more series must not invalidate the held reference
  // (std::map is node-based).
  for (int i = 0; i < 100; ++i) reg.counter("pdp", "filler", static_cast<util::NodeId>(i));
  Counter& c2 = reg.counter("pdp", "mmu.drops", 3);
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 5u);
  EXPECT_EQ(reg.counters().size(), 101u);
}

TEST(Registry, SeriesAreKeyedBySubsystemNameAndNode) {
  Registry reg;
  reg.counter("pdp", "drops", 1).add(1);
  reg.counter("pdp", "drops", 2).add(2);
  reg.counter("core", "drops", 1).add(4);
  reg.counter("pdp", "other", 1).add(8);
  EXPECT_EQ(reg.counter("pdp", "drops", 1).value(), 1u);
  EXPECT_EQ(reg.counter("pdp", "drops", 2).value(), 2u);
  EXPECT_EQ(reg.counter("core", "drops", 1).value(), 4u);
  EXPECT_EQ(reg.total("pdp", "drops"), 3u);
  EXPECT_EQ(reg.total("pdp", "missing"), 0u);
}

TEST(Registry, GlobalSeriesUseInvalidNode) {
  Registry reg;
  reg.counter("sim", "events_processed").add(9);
  EXPECT_EQ(reg.counters().begin()->first.node, util::kInvalidNode);
  EXPECT_EQ(reg.total("sim", "events_processed"), 9u);
}

TEST(Registry, SizeClearAndKinds) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a", "b");
  reg.gauge("a", "c").set(1);
  reg.histogram("a", "d").record(2.0);
  EXPECT_EQ(reg.size(), 3u);
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Registry, MergeFromAddsCountersMaxesGaugesAndMergesHistograms) {
  // The parallel engine's shard registries fold into one at snapshot
  // time: counters are additive, gauges take the max (level and peak),
  // histograms merge sample-for-sample.
  Registry shard_a;
  Registry shard_b;
  shard_a.counter("pdp", "drops", 1).add(3);
  shard_b.counter("pdp", "drops", 1).add(4);
  shard_b.counter("pdp", "drops", 2).add(5);  // only shard b has node 2
  shard_a.gauge("pdp", "queue.peak", 1).set(10);
  shard_b.gauge("pdp", "queue.peak", 1).set(7);
  shard_a.histogram("core", "batch", 1).record(2.0);
  shard_b.histogram("core", "batch", 1).record(8.0);

  Registry merged;
  merged.gauge("pdp", "queue.peak", 1).set(2);  // pre-existing, lower
  merged.merge_from(shard_a);
  merged.merge_from(shard_b);

  EXPECT_EQ(merged.counter("pdp", "drops", 1).value(), 7u);
  EXPECT_EQ(merged.counter("pdp", "drops", 2).value(), 5u);
  EXPECT_EQ(merged.gauge("pdp", "queue.peak", 1).value(), 10);
  EXPECT_EQ(merged.gauge("pdp", "queue.peak", 1).peak(), 10);
  EXPECT_EQ(merged.histogram("core", "batch", 1).summary().count(), 2u);
  EXPECT_EQ(merged.total("pdp", "drops"), 12u);
  // Sources are untouched.
  EXPECT_EQ(shard_a.counter("pdp", "drops", 1).value(), 3u);
}

TEST(Registry, MergeFromPreservesGaugePeaksAboveCurrentLevels) {
  Registry source;
  Gauge& g = source.gauge("sim", "depth");
  g.set(100);  // peak 100
  g.set(1);    // level back down
  Registry merged;
  merged.merge_from(source);
  EXPECT_EQ(merged.gauge("sim", "depth").peak(), 100);
}

TEST(Registry, MergeFromEmptySourceIsANoOp) {
  Registry target;
  target.counter("pdp", "drops", 1).add(3);
  target.gauge("sim", "depth").set(9);
  const Registry empty;
  target.merge_from(empty);
  EXPECT_EQ(target.size(), 2u);
  EXPECT_EQ(target.counter("pdp", "drops", 1).value(), 3u);
  EXPECT_EQ(target.gauge("sim", "depth").value(), 9);
}

TEST(Registry, MergeFromSelfIsANoOp) {
  // A self-merge must not double the counters (merge_from copies the
  // source first, so without the identity check it would fold the copy
  // back into the original).
  Registry registry;
  registry.counter("pdp", "drops", 1).add(3);
  registry.histogram("core", "batch", 1).record(2.0);
  registry.merge_from(registry);
  EXPECT_EQ(registry.counter("pdp", "drops", 1).value(), 3u);
  EXPECT_EQ(registry.histogram("core", "batch", 1).summary().count(), 1u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, MergeFromRepeatedFoldsCountersAndKeepsGaugesStable) {
  // Merging the same unchanged source twice adds counters twice (the
  // documented additive semantics) while max-merged gauges are
  // idempotent — the caller contract is "merge each shard exactly once
  // per snapshot".
  Registry source;
  source.counter("pdp", "drops", 1).add(4);
  source.gauge("pdp", "queue.peak", 1).set(10);
  Registry target;
  target.merge_from(source);
  target.merge_from(source);
  EXPECT_EQ(target.counter("pdp", "drops", 1).value(), 8u);
  EXPECT_EQ(target.gauge("pdp", "queue.peak", 1).value(), 10);
  EXPECT_EQ(target.gauge("pdp", "queue.peak", 1).peak(), 10);
}

}  // namespace
}  // namespace netseer::telemetry
