#include "telemetry/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace netseer::telemetry {
namespace {

Registry populated() {
  Registry reg;
  reg.counter("pdp", "mmu.drops", 1).add(7);
  reg.counter("sim", "events_processed").add(100);  // global: node null/empty
  reg.gauge("core", "ring_buffer.high_water", 2).update_max(31);
  reg.histogram("core", "cpu.batch_size", 2).record(8.0);
  reg.histogram("core", "cpu.batch_size", 2).record(20.0);
  return reg;
}

TEST(MetricsSnapshot, CaptureCopiesState) {
  Registry reg = populated();
  const auto snapshot = MetricsSnapshot::capture(reg);
  reg.counter("pdp", "mmu.drops", 1).add(1000);  // must not affect the copy
  EXPECT_EQ(snapshot.data().total("pdp", "mmu.drops"), 7u);
  EXPECT_FALSE(snapshot.empty());
  EXPECT_TRUE(MetricsSnapshot::capture(Registry{}).empty());
}

TEST(MetricsSnapshot, JsonIsWellFormedAndComplete) {
  const auto snapshot = MetricsSnapshot::capture(populated());
  const std::string json = snapshot.to_json();
  // Structure anchors (full parse happens in CI's bench-smoke job).
  EXPECT_NE(json.find("\"counters\": ["), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": ["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mmu.drops\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"node\":null"), std::string::npos);  // global series
  EXPECT_NE(json.find("\"peak\":31"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  // Balanced braces/brackets (no truncation, no stray quotes).
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(MetricsSnapshot, CsvHasHeaderAndOneRowPerSeries) {
  const auto snapshot = MetricsSnapshot::capture(populated());
  const std::string csv = snapshot.to_csv();
  std::istringstream lines(csv);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "kind,subsystem,name,node,value,peak,count,mean,min,max");
  std::size_t rows = 0;
  bool saw_global = false;
  while (std::getline(lines, line)) {
    ++rows;
    if (line.find("counter,sim,events_processed,,") == 0) saw_global = true;
  }
  EXPECT_EQ(rows, 4u);  // 2 counters + 1 gauge + 1 histogram
  EXPECT_TRUE(saw_global) << csv;
}

TEST(MetricsSnapshot, WriteFilePicksFormatByExtension) {
  const auto snapshot = MetricsSnapshot::capture(populated());
  const std::string json_path = ::testing::TempDir() + "netseer_snapshot_test.json";
  const std::string csv_path = ::testing::TempDir() + "netseer_snapshot_test.csv";
  ASSERT_TRUE(snapshot.write_file(json_path));
  ASSERT_TRUE(snapshot.write_file(csv_path));
  std::ifstream json_in(json_path);
  std::ifstream csv_in(csv_path);
  std::string json((std::istreambuf_iterator<char>(json_in)),
                   std::istreambuf_iterator<char>());
  std::string csv((std::istreambuf_iterator<char>(csv_in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(json, snapshot.to_json());
  EXPECT_EQ(csv, snapshot.to_csv());
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(MetricsSnapshot, WriteFileFailsOnBadPath) {
  const auto snapshot = MetricsSnapshot::capture(populated());
  EXPECT_FALSE(snapshot.write_file("/nonexistent-dir/metrics.json"));
}

TEST(MetricsSnapshot, JsonEscapesControlAndQuoteCharacters) {
  Registry reg;
  // NETSEER_LINT_ALLOW(metric-name): hostile names are the point here.
  reg.counter("weird\"sub", "na\\me\n", 0).add(1);
  const std::string json = MetricsSnapshot::capture(reg).to_json();
  EXPECT_NE(json.find("weird\\\"sub"), std::string::npos);
  EXPECT_NE(json.find("na\\\\me\\n"), std::string::npos);
}

}  // namespace
}  // namespace netseer::telemetry
