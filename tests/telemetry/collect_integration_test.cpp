// End-to-end check that the telemetry layer reports what actually
// happened: drive a congested run, then assert the collected
// pdp.mmu.drops counters equal both the switches' own congestion-drop
// counts and the omniscient ground-truth recorder's per-packet log.
#include <gtest/gtest.h>

#include <map>

#include "scenarios/harness.h"
#include "sim/simulator.h"
#include "telemetry/collect.h"
#include "telemetry/metrics.h"
#include "traffic/generator.h"

namespace netseer {
namespace {

class CollectIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    scenarios::HarnessOptions options;
    options.seed = 11;
    options.topo.host_rate = util::BitRate::gbps(5);
    options.topo.fabric_rate = util::BitRate::gbps(20);
    harness_ = std::make_unique<scenarios::Harness>(options);
    auto& tb = harness_->testbed();

    traffic::GeneratorConfig gen;
    gen.sizes = &traffic::web();
    gen.load = 0.4;
    gen.flow_rate = util::BitRate::gbps(1);
    gen.stop = util::milliseconds(8);
    harness_->add_workload(gen);

    // A 16-way incast into one 5G downlink guarantees MMU tail drops.
    std::vector<net::Host*> senders(tb.hosts.begin() + 16, tb.hosts.end());
    traffic::launch_incast(senders, tb.hosts[9]->addr(), 200 * 1000, 1000,
                           util::milliseconds(2));

    harness_->run_and_settle(util::milliseconds(20));
    harness_->collect_metrics(registry_);
  }

  std::unique_ptr<scenarios::Harness> harness_;
  telemetry::Registry registry_;
};

TEST_F(CollectIntegration, MmuDropCountersMatchGroundTruthExactly) {
  // Ground truth logs one TrueEvent per dropped packet, tagged with the
  // node it died at.
  std::map<util::NodeId, std::uint64_t> truth_drops;
  std::uint64_t truth_total = 0;
  for (const auto& ev : harness_->truth().events()) {
    if (ev.type != core::EventType::kDrop ||
        ev.drop_reason != pdp::DropReason::kCongestion) {
      continue;
    }
    ++truth_drops[ev.node];
    ++truth_total;
  }
  ASSERT_GT(truth_total, 0u) << "scenario failed to congest anything";

  EXPECT_EQ(registry_.total("pdp", "mmu.drops"), truth_total);
  for (auto* sw : harness_->testbed().all_switches()) {
    const auto expected =
        truth_drops.count(sw->id()) ? truth_drops.at(sw->id()) : 0;
    // Series exist only for switches, all initialized by collect().
    EXPECT_EQ(registry_.counter("pdp", "mmu.drops", sw->id()).value(), expected)
        << sw->name();
    // And they agree with the switch's own drop-reason counter.
    EXPECT_EQ(sw->drops(pdp::DropReason::kCongestion), expected) << sw->name();
  }
}

TEST_F(CollectIntegration, PerQueueDropsSumToMmuDrops) {
  for (auto* sw : harness_->testbed().all_switches()) {
    std::uint64_t queue_total = 0;
    for (util::QueueId q = 0; q < util::kNumQueues; ++q) {
      queue_total += sw->queue_counters(q).drops;
    }
    EXPECT_EQ(queue_total, sw->drops(pdp::DropReason::kCongestion)) << sw->name();
  }
}

TEST_F(CollectIntegration, CoreAndBackendSeriesArePopulated) {
  // Traffic flowed, so the pipeline stages and the reporting funnel saw it.
  EXPECT_GT(registry_.total("pdp", "stage.parsed"), 0u);
  EXPECT_GT(registry_.total("core", "group_cache.offered"), 0u);
  EXPECT_GT(registry_.total("core", "ring_buffer.pushes"), 0u);
  EXPECT_GT(registry_.total("core", "reliable.submitted"), 0u);
  EXPECT_GT(registry_.total("backend", "events_ingested"), 0u);
  EXPECT_GT(registry_.total("sim", "events_processed"), 0u);
  // The backend ingested exactly what the store holds.
  EXPECT_EQ(registry_.total("backend", "events_ingested"), harness_->store().size());
}

TEST_F(CollectIntegration, CollectIsAdditiveAcrossRuns) {
  // Folding the same harness in again doubles every counter: multiple
  // runs can share one registry (the --metrics-out accumulation model).
  const auto before = registry_.total("pdp", "mmu.drops");
  ASSERT_GT(before, 0u);
  harness_->collect_metrics(registry_);
  EXPECT_EQ(registry_.total("pdp", "mmu.drops"), 2 * before);
  // Gauges max-merge instead: the high-water mark is unchanged.
  for (const auto& [key, gauge] : registry_.gauges()) {
    EXPECT_EQ(gauge.value(), gauge.peak()) << key.subsystem << "." << key.name;
  }
}

TEST(CollectSimParity, EngineGaugesMatchTheEngineCountersExactly) {
  // The sim.* snapshot must be arithmetic on the engine's own counters,
  // not an independent estimate: events_per_sec is events_processed over
  // the measured wall time, alloc_per_event_ppm is heap spills per
  // million schedules. Integer truncation and all.
  sim::Simulator sim;
  for (int i = 0; i < 1000; ++i) {
    (void)sim.schedule_at(i * 7, [] {});
  }
  sim.run();
  ASSERT_EQ(sim.events_processed(), 1000u);

  telemetry::Registry registry;
  const double wall_seconds = 0.125;
  telemetry::collect(registry, sim, wall_seconds);

  EXPECT_EQ(registry.total("sim", "events_processed"), sim.events_processed());
  EXPECT_EQ(registry.gauge("sim", "virtual_time_ns").value(), sim.now());
  EXPECT_EQ(registry.gauge("sim", "events_per_sec").value(),
            static_cast<std::int64_t>(static_cast<double>(sim.events_processed()) /
                                      wall_seconds));
  EXPECT_EQ(registry.gauge("sim", "alloc_per_event_ppm").value(),
            static_cast<std::int64_t>(sim.task_heap_allocs() * 1'000'000 /
                                      sim.tasks_scheduled()));
}

}  // namespace
}  // namespace netseer
