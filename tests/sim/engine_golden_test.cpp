// Golden-seed determinism test for the event engine. A churn workload —
// same-instant bursts, self-rescheduling chains, periodics that get
// cancelled from other tasks and from themselves — folds every fire's
// (virtual time, task id) into an FNV hash. The hashes below were
// recorded from the pre-rewrite engine (std::function + binary heap);
// the calendar-queue engine must reproduce them bit-for-bit, proving the
// (when, seq) FIFO total order survived the redesign. Any intentional
// ordering change must regenerate these constants and say why.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace netseer::sim {
namespace {

struct Churn {
  Simulator sim;
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t state = 0;
  std::uint64_t budget = 0;
  std::vector<TaskHandle> periodics;
  int self_fired = 0;
  TaskHandle selfp;

  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
  std::uint64_t rnd() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }

  void fire(std::uint32_t id) {
    mix(static_cast<std::uint64_t>(sim.now()));
    mix(id);
    if (budget == 0) return;
    --budget;
    const auto r = rnd();
    if ((r & 7u) == 0) {
      // A burst of same-instant events: FIFO ties must be preserved.
      const SimTime at = sim.now() + static_cast<SimTime>(r % 97);
      for (std::uint32_t i = 0; i < 3; ++i) {
        const std::uint32_t next_id = id * 7919u + i;
        (void)sim.schedule_at(at, [this, next_id] { fire(next_id); });
      }
    } else {
      const std::uint32_t next_id = id * 31u + 1;
      (void)sim.schedule_after(static_cast<SimTime>(r % 1024), [this, next_id] { fire(next_id); });
    }
    if ((r & 31u) == 1 && !periodics.empty()) {
      periodics.back().cancel();
      periodics.pop_back();
    }
  }

  std::uint64_t run(std::uint64_t seed) {
    state = seed;
    budget = 20000;
    for (int i = 0; i < 16; ++i) {
      const auto id = static_cast<std::uint32_t>(i);
      (void)sim.schedule_at(static_cast<SimTime>(rnd() % 512), [this, id] { fire(id); });
    }
    for (int i = 0; i < 8; ++i) {
      const std::uint32_t id = 1000 + static_cast<std::uint32_t>(i);
      periodics.push_back(sim.schedule_every(static_cast<SimTime>(1 + rnd() % 200),
                                             [this, id] {
                                               mix(id);
                                               mix(static_cast<std::uint64_t>(sim.now()));
                                             }));
    }
    selfp = sim.schedule_every(77, [this] {
      mix(777);
      if (++self_fired == 5) selfp.cancel();
    });
    sim.run_until(30000);
    for (auto& p : periodics) p.cancel();
    sim.run();
    mix(sim.events_processed());
    mix(static_cast<std::uint64_t>(sim.now()));
    return h;
  }
};

struct Golden {
  std::uint64_t seed;
  std::uint64_t hash;
  std::uint64_t events;
};

TEST(EngineGolden, ChurnWorkloadIsBitIdenticalAcrossSeeds) {
  constexpr Golden kGolden[] = {
      {7, 0x49becff60ded1ea1ull, 25331},
      {21, 0xd51b5322bb3c4bc7ull, 25353},
      {1013, 0x7d8f4cf384fbb39dull, 25141},
  };
  for (const auto& golden : kGolden) {
    Churn churn;
    const auto hash = churn.run(golden.seed);
    EXPECT_EQ(hash, golden.hash) << "seed " << golden.seed;
    EXPECT_EQ(churn.sim.events_processed(), golden.events) << "seed " << golden.seed;
  }
}

TEST(EngineGolden, RunsAreReproducibleWithinProcess) {
  // Same seed twice in one process (slab/pool state differs on the second
  // run) must still produce the identical ordering hash.
  Churn first;
  Churn second;
  EXPECT_EQ(first.run(7), second.run(7));
}

}  // namespace
}  // namespace netseer::sim
