// Golden-seed determinism tests for the parallel engine. A mesh workload
// — same-instant self bursts, cross-actor sends with pseudo-random
// fan-out, self-reschedules, and cancellations — folds every fire's
// (virtual time, event id) into a per-actor FNV signature. The engine's
// contract is that those signatures are bit-identical for ANY shard
// count, threaded or not, because arrivals are injected in canonical
// (when, src, seq) order and window boundaries depend only on timestamps
// and the fixed lookahead. The embedded constants pin the reference
// ordering; any intentional change must regenerate them and say why.
// The parallel-determinism CI job re-runs this file under TSan and ASan.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/parallel.h"

namespace netseer::sim {
namespace {

constexpr std::uint32_t kActors = 32;
constexpr SimTime kLookahead = 100;
constexpr SimTime kHorizon = 400000;

/// Actors on a logical mesh: each fire mixes into the actor's own hash
/// and pseudo-randomly self-schedules (including same-instant bursts,
/// exercising FIFO ties) or sends to another actor at >= now + lookahead.
/// All mutable state is per-actor, touched only by the owning shard — the
/// workload obeys the engine's two determinism rules by construction.
struct Mesh {
  /// Per-actor state, padded: neighbours may live on different shards.
  struct alignas(64) ActorState {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    std::uint64_t rng = 0;
    int budget = 0;
    ShardTaskHandle pending;
  };

  ParallelSimulator engine;
  std::vector<ActorState> state;
  std::vector<ActorId> ids;

  explicit Mesh(std::uint32_t shards, bool use_threads)
      : engine(ParallelConfig{shards, kLookahead, use_threads, 512}), state(kActors) {
    ids.reserve(kActors);
    for (std::uint32_t a = 0; a < kActors; ++a) {
      ids.push_back(engine.add_actor(a % shards));
    }
  }

  static void mix(ActorState& s, std::uint64_t v) {
    s.h ^= v;
    s.h *= 1099511628211ull;
  }
  static std::uint64_t rnd(ActorState& s) {
    s.rng = s.rng * 6364136223846793005ull + 1442695040888963407ull;
    return s.rng >> 33;
  }

  void fire(std::uint32_t actor, std::uint32_t id) {
    ActorState& s = state[actor];
    const SimTime now = engine.now_on(ids[actor]);
    mix(s, static_cast<std::uint64_t>(now));
    mix(s, id);
    if (s.budget == 0) return;
    --s.budget;
    const std::uint64_t r = rnd(s);
    if ((r & 3u) == 0) {
      // Same-instant self burst: FIFO ties within the actor's own queue.
      const SimTime at = now + static_cast<SimTime>(r % 37);
      for (std::uint32_t i = 0; i < 3; ++i) {
        const std::uint32_t next_id = id * 7919u + i;
        (void)engine.schedule(ids[actor], at, [this, actor, next_id] { fire(actor, next_id); });
      }
    } else {
      // Cross-actor hop, modeled link latency >= lookahead (never clamps).
      const auto to = static_cast<std::uint32_t>((actor + 1 + r % (kActors - 1)) % kActors);
      const SimTime at = now + kLookahead + static_cast<SimTime>(r % 512);
      const std::uint32_t next_id = id * 31u + 1;
      engine.send(ids[actor], ids[to], at, [this, to, next_id] { fire(to, next_id); });
    }
    if ((r & 15u) == 5 && s.pending.active()) {
      // Cancel the actor's parked task (owning shard only — s is ours).
      s.pending.cancel();
      mix(s, 0xcafeu);
    }
    if ((r & 15u) == 9) {
      const std::uint32_t next_id = id * 131u + 7;
      s.pending = engine.schedule(ids[actor], now + 1 + static_cast<SimTime>(r % 64),
                                  [this, actor, next_id] { fire(actor, next_id); });
    }
  }

  /// Seed, run to the horizon, and return the per-actor signatures.
  std::vector<std::uint64_t> run(std::uint64_t seed) {
    for (std::uint32_t a = 0; a < kActors; ++a) {
      state[a].rng = seed * 0x9e3779b97f4a7c15ull + a;
      state[a].budget = 400;
      (void)engine.schedule(ids[a], static_cast<SimTime>(rnd(state[a]) % 256),
                            [this, a] { fire(a, a); });
    }
    engine.run_until(kHorizon);
    std::vector<std::uint64_t> sig;
    sig.reserve(kActors);
    for (std::uint32_t a = 0; a < kActors; ++a) {
      mix(state[a], static_cast<std::uint64_t>(engine.now_on(ids[a])));
      sig.push_back(state[a].h);
    }
    return sig;
  }

  /// One value summarizing the whole run, for the embedded constants.
  static std::uint64_t combine(const std::vector<std::uint64_t>& sig) {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::uint64_t v : sig) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return h;
  }
};

struct Golden {
  std::uint64_t seed;
  std::uint64_t hash;
  std::uint64_t events;
};

// Reference ordering: 1 shard, no threads (the serial window algorithm).
// Regenerate by printing Mesh::combine + events_processed from that
// configuration if the workload or canonical order ever changes.
constexpr Golden kGolden[] = {
    {7, 0x5b0a64031c1855caull, 20188},
    {21, 0x639c6a4474f9eb59ull, 20151},
    {1013, 0xdb5d5ea855f31624ull, 20023},
};

TEST(ParallelGolden, SerialReferenceMatchesEmbeddedConstants) {
  for (const auto& golden : kGolden) {
    Mesh mesh(1, /*use_threads=*/false);
    const auto sig = mesh.run(golden.seed);
    EXPECT_EQ(Mesh::combine(sig), golden.hash) << "seed " << golden.seed;
    EXPECT_EQ(mesh.engine.events_processed(), golden.events) << "seed " << golden.seed;
  }
}

TEST(ParallelGolden, PerActorSignaturesIdenticalAcrossShardCounts) {
  for (const auto& golden : kGolden) {
    Mesh reference(1, /*use_threads=*/false);
    const auto expected = reference.run(golden.seed);
    const auto events = reference.engine.events_processed();
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      Mesh mesh(shards, /*use_threads=*/true);
      const auto sig = mesh.run(golden.seed);
      ASSERT_EQ(sig.size(), expected.size());
      for (std::uint32_t a = 0; a < kActors; ++a) {
        EXPECT_EQ(sig[a], expected[a])
            << "seed " << golden.seed << " shards " << shards << " actor " << a;
      }
      EXPECT_EQ(mesh.engine.events_processed(), events)
          << "seed " << golden.seed << " shards " << shards;
    }
  }
}

TEST(ParallelGolden, InlineModeMatchesThreadedModeShardForShard) {
  for (const std::uint32_t shards : {2u, 4u}) {
    Mesh inline_mode(shards, /*use_threads=*/false);
    Mesh threaded(shards, /*use_threads=*/true);
    EXPECT_EQ(inline_mode.run(77), threaded.run(77)) << "shards " << shards;
  }
}

TEST(ParallelGolden, RepeatedRunsWithinProcessAreIdentical) {
  Mesh first(4, /*use_threads=*/true);
  Mesh second(4, /*use_threads=*/true);
  EXPECT_EQ(first.run(7), second.run(7));
}

}  // namespace
}  // namespace netseer::sim
