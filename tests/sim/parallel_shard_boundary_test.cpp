// Regression coverage for the parallel engine's shard edges: arrivals
// landing exactly on the lookahead horizon, mailbox backpressure when a
// neighbour shard stalls, sends below the conservative floor, and
// ShardTaskHandle staleness across slot recycling.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/parallel.h"
#include "sim/spsc.h"

namespace netseer::sim {
namespace {

TEST(ParallelShardBoundary, ArrivalAtExactLookaheadHorizonFiresOnTime) {
  // A message timed at exactly now + lookahead is the tightest legal
  // send: it must be delivered in the window AFTER the one that produced
  // it, at precisely its timestamp, on both the threaded and serial
  // engines.
  for (const bool threads : {false, true}) {
    ParallelSimulator engine(ParallelConfig{2, /*lookahead=*/100, threads, 512});
    const ActorId left = engine.add_actor(0);
    const ActorId right = engine.add_actor(1);
    std::vector<SimTime> fired;  // only right's shard writes to it
    (void)engine.schedule(left, 50, [&] {
      engine.send(left, right, engine.now_on(left) + 100,
                  [&] { fired.push_back(engine.now_on(right)); });
    });
    engine.run_until(1000);
    ASSERT_EQ(fired.size(), 1u) << "threads " << threads;
    EXPECT_EQ(fired[0], 150) << "threads " << threads;
    EXPECT_EQ(engine.shard_stats(0).sends_clamped, 0u);
  }
}

TEST(ParallelShardBoundary, SendBelowLookaheadFloorIsClampedAndCounted) {
  ParallelSimulator engine(ParallelConfig{2, /*lookahead=*/100, /*use_threads=*/false, 512});
  const ActorId left = engine.add_actor(0);
  const ActorId right = engine.add_actor(1);
  SimTime arrived = -1;
  (void)engine.schedule(left, 50, [&] {
    // when = now + 1 violates the conservative bound; the engine bumps it
    // to the floor instead of letting it land in an executed past.
    engine.send(left, right, engine.now_on(left) + 1,
                [&] { arrived = engine.now_on(right); });
  });
  engine.run_until(1000);
  EXPECT_EQ(arrived, 150);  // clamped to 50 + lookahead
  EXPECT_EQ(engine.shard_stats(0).sends_clamped, 1u);
}

TEST(ParallelShardBoundary, MailboxBackpressureStallsWithoutDeadlockOrLoss) {
  // A tiny ring and a burst far larger than its capacity: the producer
  // must stall (counted), never deadlock, and every message must arrive
  // in canonical order.
  constexpr int kBurst = 10000;
  for (const bool threads : {false, true}) {
    ParallelSimulator engine(ParallelConfig{2, /*lookahead=*/10, threads,
                                            /*mailbox_capacity=*/4});
    const ActorId producer = engine.add_actor(0);
    const ActorId consumer = engine.add_actor(1);
    std::vector<std::uint64_t> received;  // consumer-shard state
    (void)engine.schedule(producer, 0, [&] {
      const SimTime base = engine.now_on(producer) + 10;
      for (std::uint64_t i = 0; i < kBurst; ++i) {
        // All same-instant: delivery order must be the send order (the
        // canonical (when, src, seq) sort), however the ring drained.
        engine.send(producer, consumer, base, [&received, i] { received.push_back(i); });
      }
    });
    engine.run_until(1000);
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kBurst)) << "threads " << threads;
    for (std::uint64_t i = 0; i < kBurst; ++i) {
      ASSERT_EQ(received[i], i) << "threads " << threads;
    }
    EXPECT_GT(engine.shard_stats(0).mailbox_stalls, 0u) << "threads " << threads;
    EXPECT_EQ(engine.shard_stats(0).sends_cross, static_cast<std::uint64_t>(kBurst));
  }
}

TEST(ParallelShardBoundary, CrossShardChatterWithTinyMailboxesStaysLive) {
  // Two shards flooding each other through capacity-4 rings: the
  // drain-own-inboxes-while-stalled rule is what breaks the cycle.
  ParallelSimulator engine(ParallelConfig{2, /*lookahead=*/10, /*use_threads=*/true,
                                          /*mailbox_capacity=*/4});
  const ActorId a = engine.add_actor(0);
  const ActorId b = engine.add_actor(1);
  const auto blast = [&](ActorId from, ActorId to) {
    const SimTime at = engine.now_on(from) + 10;
    for (int i = 0; i < 512; ++i) {
      engine.send(from, to, at, [] {});
    }
  };
  (void)engine.schedule(a, 0, [&] { blast(a, b); });
  (void)engine.schedule(b, 0, [&] { blast(b, a); });
  engine.run_until(100);
  EXPECT_EQ(engine.events_processed(), 2u + 2u * 512u);
}

TEST(ParallelShardBoundary, StaleHandleAfterSlotRecyclingIsInert) {
  ParallelSimulator engine(ParallelConfig{1, 1, /*use_threads=*/false, 512});
  const ActorId actor = engine.add_actor(0);
  int first = 0;
  int second = 0;
  ShardTaskHandle handle = engine.schedule(actor, 10, [&] { ++first; });
  EXPECT_TRUE(handle.active());
  engine.run_until(20);
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(handle.active());  // fired -> slot released

  // The released slot is recycled by the next schedule; the old handle's
  // generation no longer matches, so cancel() must not touch it.
  ShardTaskHandle fresh = engine.schedule(actor, 30, [&] { ++second; });
  EXPECT_TRUE(fresh.active());
  handle.cancel();
  EXPECT_TRUE(fresh.active());
  engine.run_until(40);
  EXPECT_EQ(second, 1);
}

TEST(ParallelShardBoundary, CancelPendingTaskSkipsExecution) {
  ParallelSimulator engine(ParallelConfig{1, 1, /*use_threads=*/false, 512});
  const ActorId actor = engine.add_actor(0);
  int fired = 0;
  ShardTaskHandle handle;
  (void)engine.schedule(actor, 5, [&] { handle.cancel(); });
  handle = engine.schedule(actor, 10, [&] { ++fired; });
  engine.run_until(20);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(handle.active());
}

TEST(ParallelShardBoundary, SpscRingRejectsWithoutConsumingAndKeepsFifo) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));
  EXPECT_EQ(rejected, 99);  // full push must not consume the value
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

}  // namespace
}  // namespace netseer::sim
