// Worker-exception propagation: an actor callback that throws must not
// wedge the barrier protocol. The erroring shard keeps pairing with its
// peers' barriers, the next reduction aborts the run for everyone, and
// run_until rethrows the first recorded exception after the join.

#include "sim/parallel.h"

#include <atomic>
#include <functional>
#include <stdexcept>

#include <gtest/gtest.h>

namespace netseer::sim {
namespace {

ParallelConfig config(std::uint32_t shards, bool use_threads) {
  ParallelConfig cfg;
  cfg.shards = shards;
  cfg.lookahead = 10;
  cfg.use_threads = use_threads;
  return cfg;
}

TEST(ParallelError, ThrowingActorRethrownFromRunUntil) {
  ParallelSimulator engine(config(2, /*use_threads=*/true));
  const ActorId a = engine.add_actor(0);
  const ActorId b = engine.add_actor(1);

  // Healthy actor on shard 1 keeps a steady event stream alive so its
  // worker is mid-protocol when shard 0 throws.
  std::atomic<int> healthy_fires{0};
  std::function<void()> tick = [&] {
    ++healthy_fires;
    if (healthy_fires.load() < 50) {
      engine.send(b, b, engine.now_on(b) + 20, [&] { tick(); });
    }
  };
  (void)engine.schedule(b, 5, [&] { tick(); });

  (void)engine.schedule(a, 100, [] { throw std::runtime_error("actor exploded"); });

  EXPECT_THROW(engine.run_until(5000), std::runtime_error);
  // The engine came back (no deadlock) and the exception channel is
  // drained: a fresh run over the already-advanced clock is clean.
  EXPECT_NO_THROW(engine.run_until(5000));
}

TEST(ParallelError, ExceptionMessageSurvivesPropagation) {
  ParallelSimulator engine(config(4, /*use_threads=*/true));
  const ActorId a = engine.add_actor(2);
  (void)engine.schedule(a, 50, [] { throw std::runtime_error("shard 2 detail"); });
  try {
    engine.run_until(1000);
    FAIL() << "run_until should have rethrown the actor exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 2 detail");
  }
}

TEST(ParallelError, InlineModePropagatesDirectly) {
  ParallelSimulator engine(config(2, /*use_threads=*/false));
  const ActorId a = engine.add_actor(0);
  (void)engine.schedule(a, 7, [] { throw std::runtime_error("inline"); });
  EXPECT_THROW(engine.run_until(100), std::runtime_error);
  // The serial path propagates on the calling thread but still resets
  // the running state, so the engine accepts another run.
  EXPECT_NO_THROW(engine.run_until(200));
}

TEST(ParallelError, FirstExceptionWinsAcrossShards) {
  // Both shards throw; run_until must surface exactly one runtime_error
  // (whichever shard recorded first) and never hang on the other.
  ParallelSimulator engine(config(2, /*use_threads=*/true));
  const ActorId a = engine.add_actor(0);
  const ActorId b = engine.add_actor(1);
  (void)engine.schedule(a, 30, [] { throw std::runtime_error("shard 0"); });
  (void)engine.schedule(b, 30, [] { throw std::runtime_error("shard 1"); });
  EXPECT_THROW(engine.run_until(1000), std::runtime_error);
}

TEST(ParallelError, CleanRunUnaffected) {
  ParallelSimulator engine(config(2, /*use_threads=*/true));
  const ActorId a = engine.add_actor(0);
  std::atomic<int> fires{0};
  (void)engine.schedule(a, 10, [&] { ++fires; });
  EXPECT_NO_THROW(engine.run_until(100));
  EXPECT_EQ(fires.load(), 1);
}

}  // namespace
}  // namespace netseer::sim
