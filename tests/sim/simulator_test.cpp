#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace netseer::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  (void)sim.schedule_at(30, [&] { order.push_back(3); });
  (void)sim.schedule_at(10, [&] { order.push_back(1); });
  (void)sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  (void)sim.schedule_at(10, [&] { order.push_back(1); });
  (void)sim.schedule_at(10, [&] { order.push_back(2); });
  (void)sim.schedule_at(10, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime seen = -1;
  (void)sim.schedule_at(100, [&] {
    (void)sim.schedule_after(50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  SimTime seen = -1;
  (void)sim.schedule_at(100, [&] {
    (void)sim.schedule_at(10, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, NegativeDelayClamps) {
  Simulator sim;
  SimTime seen = -1;
  (void)sim.schedule_at(100, [&] {
    (void)sim.schedule_after(-50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  int fired = 0;
  (void)sim.schedule_at(10, [&] { ++fired; });
  (void)sim.schedule_at(20, [&] { ++fired; });
  (void)sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run_until(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto handle = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(handle.active());
  handle.cancel();
  EXPECT_FALSE(handle.active());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  (void)sim.schedule_at(10, [&] {
    ++fired;
    sim.stop();
  });
  (void)sim.schedule_at(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // Remaining event still queued; a new run picks it up.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  int fired = 0;
  (void)sim.schedule_every(10, [&] { ++fired; });
  sim.run_until(55);
  EXPECT_EQ(fired, 5);  // t = 10,20,30,40,50
}

TEST(Simulator, PeriodicCancelStops) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_every(10, [&] { ++fired; });
  (void)sim.schedule_at(35, [&] { handle.cancel(); });
  sim.run_until(1000);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, PeriodicCanCancelItself) {
  Simulator sim;
  int fired = 0;
  TaskHandle handle;
  handle = sim.schedule_every(10, [&] {
    if (++fired == 4) handle.cancel();
  });
  sim.run_until(1000);
  EXPECT_EQ(fired, 4);
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) (void)sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, CascadedSchedulingDrains) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) (void)sim.schedule_after(1, chain);
  };
  (void)sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(Simulator, RunUntilAdvancesTimeWithoutEvents) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

}  // namespace
}  // namespace netseer::sim
