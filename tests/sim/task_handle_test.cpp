#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace netseer::sim {
namespace {

TEST(TaskHandle, OneShotExpiresAfterFiring) {
  Simulator sim;
  auto handle = sim.schedule_at(10, [] {});
  EXPECT_TRUE(handle.active());
  sim.run();
  // Regression: a fired one-shot must read inactive, otherwise owners
  // that re-arm timers via active() checks (e.g. the switch CPU's report
  // flush timer) silently never re-arm.
  EXPECT_FALSE(handle.active());
}

TEST(TaskHandle, PeriodicStaysActiveUntilCancelled) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_every(10, [&] { ++fired; });
  sim.run_until(35);
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(handle.active());
  handle.cancel();
  EXPECT_FALSE(handle.active());
  sim.run_until(100);
  EXPECT_EQ(fired, 3);
}

TEST(TaskHandle, RearmPatternWorks) {
  Simulator sim;
  int fired = 0;
  TaskHandle timer;
  // The switch-CPU flush-timer pattern: arm only when no timer pending.
  const auto maybe_arm = [&] {
    if (!timer.active()) timer = sim.schedule_after(5, [&] { ++fired; });
  };
  maybe_arm();
  maybe_arm();  // second arm suppressed while pending
  sim.run();
  EXPECT_EQ(fired, 1);
  maybe_arm();  // after firing, re-arm must succeed
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(TaskHandle, DefaultHandleInactive) {
  TaskHandle handle;
  EXPECT_FALSE(handle.active());
  handle.cancel();  // harmless
}

}  // namespace
}  // namespace netseer::sim
