// Regression tests pinned to engine bugs the calendar-queue rewrite
// fixed (or must not reintroduce): the schedule_every(<=0) forever-active
// handle, stop()/run_until re-entry semantics, same-instant cancel races,
// and stale generation-counted handles touching recycled slab slots.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace netseer::sim {
namespace {

TEST(EngineRegression, ScheduleEveryZeroIntervalClampsToOneNs) {
  // A zero-interval periodic used to requeue at the same instant forever
  // (the handle stayed active but the loop starved everything else). The
  // contract is now: non-positive intervals clamp to 1 ns.
  Simulator sim;
  int fires = 0;
  auto handle = sim.schedule_every(0, [&] { ++fires; });
  sim.run_until(5);
  EXPECT_EQ(fires, 5);  // fires at t = 1, 2, 3, 4, 5
  EXPECT_TRUE(handle.active());
  handle.cancel();
  sim.run_until(10);
  EXPECT_EQ(fires, 5);
  EXPECT_FALSE(handle.active());
}

TEST(EngineRegression, ScheduleBeforeStrandedClaimedBucketFiresFirst) {
  // run_until() with only a far-future timer pending fast-forwards the
  // calendar cursor and claims that timer's bucket before noticing it is
  // past the limit. A schedule issued after the early break (now() far
  // behind the cursor) used to append behind the stranded chain and
  // never fire — exactly a paused TxPort re-armed between runs.
  Simulator sim;
  std::vector<int> order;
  (void)sim.schedule_at(33'000'000, [&] { order.push_back(1); });  // pause re-kick
  sim.run_until(10'000);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(sim.now(), 10'000);

  (void)sim.schedule_after(8'368, [&] { order.push_back(0); });  // tx completion
  sim.run_until(20'000);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 0);  // fired at 18'368, before the 33 ms timer

  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EngineRegression, ScheduleEveryNegativeIntervalClampsToOneNs) {
  Simulator sim;
  int fires = 0;
  auto handle = sim.schedule_every(-50, [&] { ++fires; });
  sim.run_until(3);
  EXPECT_EQ(fires, 3);
  handle.cancel();
}

TEST(EngineRegression, StopInsideRunUntilLeavesNowAtStopTime) {
  // stop() must freeze virtual time where it fired, not jump to the
  // run_until limit, and must not be sticky across the next run.
  Simulator sim;
  bool late_ran = false;
  (void)sim.schedule_at(10, [&] { sim.stop(); });
  (void)sim.schedule_at(50, [&] { late_ran = true; });
  sim.run_until(100);
  EXPECT_EQ(sim.now(), 10);
  EXPECT_FALSE(late_ran);
  sim.run_until(100);  // a fresh run resumes where the stop left off
  EXPECT_TRUE(late_ran);
  EXPECT_EQ(sim.now(), 100);
}

TEST(EngineRegression, TaskCanCancelLaterTaskAtSameInstant) {
  // Two tasks scheduled for the same instant: FIFO order means the first
  // runs first, and if it cancels the second the second must not fire —
  // even though both were already due when the instant began.
  Simulator sim;
  bool second_ran = false;
  TaskHandle second;
  (void)sim.schedule_at(5, [&] { second.cancel(); });
  second = sim.schedule_at(5, [&] { second_ran = true; });
  sim.run();
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(sim.now(), 5);
}

TEST(EngineRegression, PeriodicCancelledFromSameInstantTaskDoesNotFire) {
  // A periodic due at t and a one-shot due at t, scheduled one-shot
  // first: the one-shot cancels the periodic before its same-instant
  // firing. The requeue path must honour the cancellation.
  Simulator sim;
  int fires = 0;
  TaskHandle periodic;
  (void)sim.schedule_at(7, [&] { periodic.cancel(); });
  periodic = sim.schedule_every(7, [&] { ++fires; });
  sim.run_until(50);
  EXPECT_EQ(fires, 0);
  EXPECT_FALSE(periodic.active());
}

TEST(EngineRegression, StaleHandleDoesNotCancelRecycledSlot) {
  // Handles are generation-counted slab references. After a one-shot
  // fires its slot returns to the free list; a handle kept from before
  // must degrade to a no-op even when a new task reuses the same slot.
  Simulator sim;
  bool second_ran = false;
  auto stale = sim.schedule_at(1, [] {});
  sim.run();
  EXPECT_FALSE(stale.active());
  // With a LIFO free list the very next schedule reuses the freed slot;
  // schedule a few to cover other recycling policies too.
  std::vector<TaskHandle> fresh;
  for (int i = 0; i < 4; ++i) {
    fresh.push_back(sim.schedule_at(10, [&] { second_ran = true; }));
  }
  stale.cancel();  // must not touch any of the new occupants
  for (const auto& handle : fresh) EXPECT_TRUE(handle.active());
  sim.run();
  EXPECT_TRUE(second_ran);
}

TEST(EngineRegression, CancelledOneShotSlotIsReusedWithoutGrowth) {
  // Cancelling must return the slot: scheduling and cancelling in a loop
  // cannot grow the slab without bound. tasks_scheduled() counts calls,
  // while the slab stays at a handful of live cells (observable only
  // indirectly: no heap allocs for these small captures either way).
  Simulator sim;
  for (int i = 0; i < 10000; ++i) {
    auto handle = sim.schedule_at(1000000, [] {});
    handle.cancel();
  }
  EXPECT_EQ(sim.task_heap_allocs(), 0u);
  sim.run();
  EXPECT_EQ(sim.events_processed(), 0u);
  // Reaping a cancelled entry still advances virtual time (pre-rewrite
  // behaviour, preserved): the queue held entries for t = 1000000.
  EXPECT_EQ(sim.now(), 1000000);
}

TEST(EngineRegression, RescheduleStormKeepsFifoWithinInstant) {
  // Tasks that schedule more work at the *current* instant run that work
  // before the instant ends, in scheduling order — the calendar queue
  // must not defer same-bucket appends to a later sweep.
  Simulator sim;
  std::vector<int> order;
  (void)sim.schedule_at(3, [&] {
    order.push_back(0);
    (void)sim.schedule_at(3, [&] { order.push_back(2); });
  });
  (void)sim.schedule_at(3, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now(), 3);
}

}  // namespace
}  // namespace netseer::sim
