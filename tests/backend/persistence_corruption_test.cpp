// Satellite: corruption-handling tests for the backend store file format.
// Every mutation of a valid stream — truncation at any byte boundary, a
// bad magic, a wrong version, a flipped bit anywhere — must make
// load_store fail AND leave the target store exactly as it was (the
// atomic-load contract: parse into scratch, commit only after the CRC
// footer validates).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "backend/persistence.h"
#include "core/event.h"

namespace netseer::backend {
namespace {

core::FlowEvent sample_event(std::uint16_t sport, core::EventType type) {
  auto ev = core::make_event(type,
                             packet::FlowKey{packet::Ipv4Addr::from_octets(192, 168, 0, 1),
                                             packet::Ipv4Addr::from_octets(192, 168, 0, 2), 6,
                                             sport, 443},
                             /*switch_id=*/5, /*now=*/1000 + sport);
  ev.counter = 7;
  return ev;
}

class PersistenceCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EventStore source;
    source.add(sample_event(1001, core::EventType::kDrop), 2000);
    source.add(sample_event(1002, core::EventType::kCongestion), 2001);
    source.add(sample_event(1003, core::EventType::kAclDrop), 2002);
    std::ostringstream out;
    ASSERT_TRUE(save_store(source, out));
    bytes_ = out.str();

    // The target already holds one event; corrupt loads must not touch it.
    preexisting_ = sample_event(9999, core::EventType::kPause);
    target_.add(preexisting_, 1);
  }

  void expect_rejected(const std::string& mangled, const std::string& what) {
    std::istringstream in(mangled);
    EXPECT_FALSE(load_store(target_, in)) << what;
    ASSERT_EQ(target_.size(), 1u) << what << ": partial state leaked into the target";
    EXPECT_EQ(target_.all()[0].event, preexisting_) << what;
    EXPECT_EQ(target_.all()[0].stored_at, 1) << what;
  }

  std::string bytes_;
  EventStore target_;
  core::FlowEvent preexisting_;
};

TEST_F(PersistenceCorruptionTest, ValidStreamLoadsAndMerges) {
  std::istringstream in(bytes_);
  ASSERT_TRUE(load_store(target_, in));
  EXPECT_EQ(target_.size(), 4u);  // preexisting + 3 loaded
  EXPECT_EQ(target_.all()[0].event, preexisting_);
}

TEST_F(PersistenceCorruptionTest, TruncationAtEveryByteBoundaryRejected) {
  // Covers every field boundary by construction: header magic, version,
  // count, each record field, and the CRC footer.
  for (std::size_t keep = 0; keep < bytes_.size(); ++keep) {
    expect_rejected(bytes_.substr(0, keep),
                    "truncated to " + std::to_string(keep) + " bytes");
  }
}

TEST_F(PersistenceCorruptionTest, BadMagicRejected) {
  for (std::size_t i = 0; i < 4; ++i) {
    auto mangled = bytes_;
    mangled[i] = static_cast<char>(mangled[i] ^ 0x20);
    expect_rejected(mangled, "magic byte " + std::to_string(i));
  }
}

TEST_F(PersistenceCorruptionTest, VersionMismatchRejected) {
  auto mangled = bytes_;
  mangled[4] = static_cast<char>(kStoreFormatVersion + 1);  // version u16 LE at offset 4
  expect_rejected(mangled, "future version");
  mangled[4] = 0;
  expect_rejected(mangled, "version 0");
}

TEST_F(PersistenceCorruptionTest, FlippedBitAnywhereRejected) {
  // Any single flipped bit — record payload, count field, CRC footer —
  // must fail the checksum (or field validation) and leave no trace.
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    auto mangled = bytes_;
    mangled[i] = static_cast<char>(mangled[i] ^ 0x01);
    expect_rejected(mangled, "flipped bit at offset " + std::to_string(i));
  }
}

TEST_F(PersistenceCorruptionTest, TrailingGarbageRejected) {
  expect_rejected(bytes_ + std::string(3, '\x5a'), "trailing garbage");
}

TEST_F(PersistenceCorruptionTest, EmptyStreamRejected) {
  expect_rejected("", "empty stream");
}

}  // namespace
}  // namespace netseer::backend
