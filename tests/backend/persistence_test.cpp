#include "backend/persistence.h"

#include <gtest/gtest.h>

#include <sstream>

namespace netseer::backend {
namespace {

using core::EventType;
using core::FlowEvent;
using packet::FlowKey;
using packet::Ipv4Addr;

FlowEvent sample_event(std::uint16_t sport, EventType type = EventType::kDrop) {
  auto ev = core::make_event(type,
                             FlowKey{Ipv4Addr::from_octets(10, 0, 0, 1),
                                     Ipv4Addr::from_octets(10, 0, 0, 2), 6, sport, 80},
                             /*switch_id=*/7, /*now=*/util::seconds(2));
  ev.counter = sport;
  // Only fields inside the type's wire layout persist (canonical form).
  if (type == EventType::kDrop) ev.drop_code = 3;
  if (type == EventType::kCongestion) ev.queue_latency_us = 120;
  return ev;
}

TEST(Persistence, RoundTripPreservesEverything) {
  EventStore original;
  for (std::uint16_t s = 1; s <= 50; ++s) {
    original.add(sample_event(s, s % 2 ? EventType::kDrop : EventType::kCongestion),
                 util::seconds(3) + s);
  }

  std::stringstream buffer;
  ASSERT_TRUE(save_store(original, buffer));

  EventStore loaded;
  ASSERT_TRUE(load_store(loaded, buffer));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.all()[i].event, original.all()[i].event);
    EXPECT_EQ(loaded.all()[i].event.switch_id, original.all()[i].event.switch_id);
    EXPECT_EQ(loaded.all()[i].event.detected_at, original.all()[i].event.detected_at);
    EXPECT_EQ(loaded.all()[i].stored_at, original.all()[i].stored_at);
  }
}

TEST(Persistence, LoadedStoreAnswersQueries) {
  EventStore original;
  original.add(sample_event(9), util::seconds(1));
  std::stringstream buffer;
  ASSERT_TRUE(save_store(original, buffer));
  EventStore loaded;
  ASSERT_TRUE(load_store(loaded, buffer));

  EventQuery by_flow;
  by_flow.flow = sample_event(9).flow;
  EXPECT_EQ(loaded.query(by_flow).size(), 1u);
  EventQuery by_switch;
  by_switch.switch_id = 7;
  EXPECT_EQ(loaded.query(by_switch).size(), 1u);
}

TEST(Persistence, EmptyStoreRoundTrips) {
  EventStore empty;
  std::stringstream buffer;
  ASSERT_TRUE(save_store(empty, buffer));
  EventStore loaded;
  ASSERT_TRUE(load_store(loaded, buffer));
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(Persistence, RejectsBadMagic) {
  std::stringstream buffer("XXXXjunk");
  EventStore loaded;
  EXPECT_FALSE(load_store(loaded, buffer));
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(Persistence, RejectsTruncatedInput) {
  EventStore original;
  original.add(sample_event(1), 0);
  original.add(sample_event(2), 0);
  std::stringstream buffer;
  ASSERT_TRUE(save_store(original, buffer));
  const std::string full = buffer.str();

  // Cut mid-record: load fails and leaves the target completely untouched
  // (no partial prefix — the stream is parsed into a scratch store first).
  std::stringstream truncated(full.substr(0, full.size() - 10));
  EventStore loaded;
  EXPECT_FALSE(load_store(loaded, truncated));
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(Persistence, RejectsWrongVersion) {
  EventStore original;
  original.add(sample_event(1), 0);
  std::stringstream buffer;
  ASSERT_TRUE(save_store(original, buffer));
  std::string bytes = buffer.str();
  bytes[4] = 99;  // version low byte
  std::stringstream bad(bytes);
  EventStore loaded;
  EXPECT_FALSE(load_store(loaded, bad));
}

TEST(Persistence, AppendSemantics) {
  EventStore a;
  a.add(sample_event(1), 0);
  EventStore b;
  b.add(sample_event(2), 0);
  std::stringstream sa, sb;
  ASSERT_TRUE(save_store(a, sa));
  ASSERT_TRUE(save_store(b, sb));
  EventStore merged;
  ASSERT_TRUE(load_store(merged, sa));
  ASSERT_TRUE(load_store(merged, sb));
  EXPECT_EQ(merged.size(), 2u);
}

}  // namespace
}  // namespace netseer::backend
