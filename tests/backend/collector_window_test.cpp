// Satellite: the collector's bounded reorder window. A segment landing
// more than kReorderWindow sequences past the cumulative ack is dropped
// and counted instead of growing PeerState::seen without limit; the
// sender's retransmission redelivers it once the gap closes, so the
// events arrive exactly once, just later.
#include <gtest/gtest.h>

#include <vector>

#include "backend/collector.h"
#include "backend/event_store.h"
#include "core/event.h"
#include "core/report.h"
#include "sim/simulator.h"

namespace netseer::backend {
namespace {

constexpr util::NodeId kSwitch = 1;
constexpr util::NodeId kBackend = 100;

core::ReportMsg data_segment(std::uint32_t seq) {
  core::ReportMsg msg;
  msg.kind = core::ReportMsg::Kind::kData;
  msg.seq = seq;
  msg.batch.switch_id = kSwitch;
  msg.batch.seq = seq;
  auto ev = core::make_event(core::EventType::kDrop,
                             packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                                             packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6,
                                             static_cast<std::uint16_t>(1000 + seq % 1000),
                                             80},
                             kSwitch, static_cast<util::SimTime>(seq));
  msg.batch.events.push_back(ev);
  return msg;
}

TEST(CollectorWindow, DropsSegmentsBeyondWindowAndAcceptsRedelivery) {
  sim::Simulator sim;
  core::ReportChannel channel(sim, util::Rng(7), util::microseconds(1), 0.0);
  EventStore store;
  Collector collector(sim, kBackend, channel, store);

  std::vector<std::uint32_t> acks;
  channel.register_endpoint(kSwitch, [&](util::NodeId, const core::ReportMsg& msg) {
    if (msg.kind == core::ReportMsg::Kind::kAck) acks.push_back(msg.seq);
  });

  const auto send = [&](std::uint32_t seq) {
    channel.send(kSwitch, kBackend, data_segment(seq));
    sim.run();
  };

  send(0);  // in order: stored, ack advances to 1
  EXPECT_EQ(collector.events_stored(), 1u);
  ASSERT_FALSE(acks.empty());
  EXPECT_EQ(acks.back(), 1u);

  // Exactly kReorderWindow ahead of the ack: one past the last
  // bufferable sequence, so it must be dropped and counted.
  const std::uint32_t far = 1 + Collector::kReorderWindow;
  send(far);
  EXPECT_EQ(collector.window_dropped_segments(), 1u);
  EXPECT_EQ(collector.events_stored(), 1u);  // nothing stored from it
  EXPECT_EQ(acks.back(), 1u);               // ack still points at the gap

  // The last in-window sequence is buffered, not dropped.
  send(far - 1);
  EXPECT_EQ(collector.window_dropped_segments(), 1u);
  EXPECT_EQ(collector.events_stored(), 2u);
  EXPECT_EQ(acks.back(), 1u);  // still a gap at 1

  // Closing the gap advances the cumulative ack to the next hole.
  send(1);
  EXPECT_EQ(collector.events_stored(), 3u);
  EXPECT_EQ(acks.back(), 2u);

  // ...which slides the window forward, so the retransmitted copy of
  // the previously dropped segment is now accepted.
  send(far);
  EXPECT_EQ(collector.window_dropped_segments(), 1u);
  EXPECT_EQ(collector.events_stored(), 4u);

  // A duplicate of an already-acked segment counts as a duplicate, and
  // a duplicate of a buffered (not yet acked) one does too.
  send(0);
  EXPECT_EQ(collector.duplicate_segments(), 1u);
  send(far);
  EXPECT_EQ(collector.duplicate_segments(), 2u);
  EXPECT_EQ(collector.events_stored(), 4u);
}

TEST(CollectorWindow, WindowIsPerPeer) {
  sim::Simulator sim;
  core::ReportChannel channel(sim, util::Rng(7), util::microseconds(1), 0.0);
  EventStore store;
  Collector collector(sim, kBackend, channel, store);

  // Peer A gets stuck at a gap; peer B's in-order stream is unaffected.
  auto far = data_segment(Collector::kReorderWindow);
  channel.send(kSwitch, kBackend, std::move(far));
  sim.run();
  EXPECT_EQ(collector.window_dropped_segments(), 1u);

  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    auto msg = data_segment(seq);
    msg.batch.switch_id = 2;
    channel.send(2, kBackend, std::move(msg));
    sim.run();
  }
  EXPECT_EQ(collector.events_stored(), 3u);
  EXPECT_EQ(collector.window_dropped_segments(), 1u);
}

}  // namespace
}  // namespace netseer::backend
