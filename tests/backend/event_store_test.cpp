#include "backend/event_store.h"

#include <gtest/gtest.h>

namespace netseer::backend {
namespace {

using core::EventType;
using core::FlowEvent;
using core::make_event;
using packet::FlowKey;
using packet::Ipv4Addr;

FlowKey flow(std::uint16_t sport) {
  return FlowKey{Ipv4Addr::from_octets(10, 0, 0, 1), Ipv4Addr::from_octets(10, 0, 0, 2), 6,
                 sport, 80};
}

FlowEvent ev(EventType type, std::uint16_t sport, util::NodeId sw, util::SimTime at) {
  auto event = make_event(type, flow(sport), sw, at);
  return event;
}

class EventStoreTest : public ::testing::Test {
 protected:
  EventStoreTest() {
    store.add(ev(EventType::kDrop, 1, 10, util::seconds(1)), util::seconds(1));
    store.add(ev(EventType::kDrop, 2, 10, util::seconds(2)), util::seconds(2));
    store.add(ev(EventType::kCongestion, 1, 20, util::seconds(3)), util::seconds(3));
    store.add(ev(EventType::kPause, 3, 20, util::seconds(4)), util::seconds(4));
  }
  EventStore store;
};

TEST_F(EventStoreTest, QueryAll) {
  EXPECT_EQ(store.query(EventQuery{}).size(), 4u);
  EXPECT_EQ(store.size(), 4u);
}

TEST_F(EventStoreTest, QueryByFlow) {
  EventQuery query;
  query.flow = flow(1);
  const auto results = store.query(query);
  ASSERT_EQ(results.size(), 2u);  // drop at sw10 + congestion at sw20
  for (const auto& r : results) EXPECT_EQ(r.event.flow, flow(1));
}

TEST_F(EventStoreTest, QueryByDevice) {
  EventQuery query;
  query.switch_id = 20;
  EXPECT_EQ(store.query(query).size(), 2u);
}

TEST_F(EventStoreTest, QueryByType) {
  EventQuery query;
  query.type = EventType::kDrop;
  EXPECT_EQ(store.query(query).size(), 2u);
}

TEST_F(EventStoreTest, QueryByPeriod) {
  EventQuery query;
  query.from = util::seconds(2);
  query.to = util::seconds(4);
  EXPECT_EQ(store.query(query).size(), 2u);  // t=2 and t=3; t=4 excluded
}

TEST_F(EventStoreTest, CombinedQuery) {
  EventQuery query;
  query.flow = flow(1);
  query.type = EventType::kCongestion;
  const auto results = store.query(query);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].event.switch_id, 20u);
}

TEST_F(EventStoreTest, QueryUnknownFlowEmpty) {
  EventQuery query;
  query.flow = flow(99);
  EXPECT_TRUE(store.query(query).empty());
}

TEST_F(EventStoreTest, DistinctFlows) {
  const auto flows = store.distinct_flows(EventQuery{});
  EXPECT_EQ(flows.size(), 3u);
}

TEST_F(EventStoreTest, TotalCounter) {
  auto big = ev(EventType::kDrop, 7, 30, util::seconds(5));
  big.counter = 100;
  store.add(big, util::seconds(5));
  EventQuery query;
  query.switch_id = 30;
  EXPECT_EQ(store.total_counter(query), 100u);
}

TEST_F(EventStoreTest, CountMatchesQuery) {
  EventQuery query;
  query.type = EventType::kPause;
  EXPECT_EQ(store.count(query), 1u);
}

// The batch-first sink contract: add_batch applies in span order after
// everything already added, add() is literally a one-element batch, and
// the in-memory watermark is simply the applied count.
TEST_F(EventStoreTest, AddBatchAppliesInOrderAndIndexes) {
  const FlowEvent batch[] = {
      ev(EventType::kDrop, 9, 40, util::seconds(5)),
      ev(EventType::kCongestion, 9, 40, util::seconds(6)),
      ev(EventType::kDrop, 10, 41, util::seconds(7)),
  };
  store.add_batch({batch, 3}, util::seconds(8));
  EXPECT_EQ(store.size(), 7u);
  const auto& rows = store.all();
  EXPECT_EQ(rows[4].event, batch[0]);
  EXPECT_EQ(rows[5].event, batch[1]);
  EXPECT_EQ(rows[6].event, batch[2]);
  // The batch went through the secondary indexes too.
  EventQuery by_flow;
  by_flow.flow = flow(9);
  EXPECT_EQ(store.count(by_flow), 2u);
  EventQuery by_switch;
  by_switch.switch_id = 41;
  EXPECT_EQ(store.count(by_switch), 1u);
  // Every row in a batch shares the batch's arrival stamp.
  EXPECT_EQ(rows[4].stored_at, util::seconds(8));
  EXPECT_EQ(rows[6].stored_at, util::seconds(8));
}

TEST_F(EventStoreTest, DurableWatermarkTracksAppliedCount) {
  EXPECT_EQ(store.durable_watermark(), 4u);
  const FlowEvent batch[] = {
      ev(EventType::kDrop, 11, 50, util::seconds(9)),
      ev(EventType::kPause, 12, 50, util::seconds(10)),
  };
  store.add_batch({batch, 2}, util::seconds(10));
  EXPECT_EQ(store.durable_watermark(), 6u);
  store.add(ev(EventType::kDrop, 13, 51, util::seconds(11)), util::seconds(11));
  EXPECT_EQ(store.durable_watermark(), 7u);
}

TEST_F(EventStoreTest, EmptyBatchIsANoOp) {
  store.add_batch({}, util::seconds(12));
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.durable_watermark(), 4u);
}

}  // namespace
}  // namespace netseer::backend
