#include "packet/packet.h"

#include <gtest/gtest.h>

#include "packet/builder.h"

namespace netseer::packet {
namespace {

FlowKey sample_flow() {
  return FlowKey{Ipv4Addr::from_octets(10, 0, 1, 2), Ipv4Addr::from_octets(10, 0, 2, 3),
                 static_cast<std::uint8_t>(IpProto::kTcp), 40000, 443};
}

TEST(Packet, TcpWireBytes) {
  const auto pkt = make_tcp(sample_flow(), 1000);
  // eth 14 + ip 20 + tcp 20 + payload 1000 + fcs 4 = 1058.
  EXPECT_EQ(pkt.wire_bytes(), 1058u);
}

TEST(Packet, UdpWireBytes) {
  const auto pkt = make_udp(sample_flow(), 1000);
  // eth 14 + ip 20 + udp 8 + payload 1000 + fcs 4 = 1046.
  EXPECT_EQ(pkt.wire_bytes(), 1046u);
}

TEST(Packet, MinimumFramePadding) {
  const auto pkt = make_tcp(sample_flow(), 0);
  // 14 + 20 + 20 + 4 = 58 < 64: padded up.
  EXPECT_EQ(pkt.wire_bytes(), 64u);
}

TEST(Packet, ShimsAddBytes) {
  auto pkt = make_tcp(sample_flow(), 1000);
  const auto base = pkt.wire_bytes();
  pkt.vlan = VlanTag{3, false, 100};
  EXPECT_EQ(pkt.wire_bytes(), base + 4);
  pkt.seq_tag = 12345;  // 4-byte ID + 2-byte encapsulated ethertype
  EXPECT_EQ(pkt.wire_bytes(), base + 10);
}

TEST(Packet, FlowExtraction) {
  const auto flow = sample_flow();
  const auto pkt = make_tcp(flow, 100);
  EXPECT_EQ(pkt.flow(), flow);
}

TEST(Packet, NonIpFlowIsZero) {
  const auto pkt = make_pfc(3, 100);
  EXPECT_EQ(pkt.flow(), FlowKey{});
  EXPECT_FALSE(pkt.is_ipv4());
}

TEST(Packet, PfcFrameIs64Bytes) {
  const auto pkt = make_pfc(3, 100);
  EXPECT_EQ(pkt.wire_bytes(), 64u);
  ASSERT_TRUE(pkt.pfc.has_value());
  EXPECT_TRUE(pkt.pfc->pauses(3));
  EXPECT_FALSE(pkt.pfc->pauses(2));
}

TEST(Packet, PfcResume) {
  const auto pkt = make_pfc(5, 0);
  ASSERT_TRUE(pkt.pfc.has_value());
  EXPECT_TRUE(pkt.pfc->resumes(5));
  EXPECT_FALSE(pkt.pfc->pauses(5));
}

TEST(Packet, ProtocolPredicates) {
  EXPECT_TRUE(make_tcp(sample_flow(), 10).is_tcp());
  EXPECT_FALSE(make_tcp(sample_flow(), 10).is_udp());
  EXPECT_TRUE(make_udp(sample_flow(), 10).is_udp());
}

TEST(Packet, UidsAreUnique) {
  const auto a = make_tcp(sample_flow(), 10);
  const auto b = make_tcp(sample_flow(), 10);
  EXPECT_NE(a.uid, b.uid);
}

class FixedPayload final : public ControlPayload {
 public:
  explicit FixedPayload(std::uint32_t n) : n_(n) {}
  [[nodiscard]] std::uint32_t wire_size() const override { return n_; }

 private:
  std::uint32_t n_;
};

TEST(Packet, ControlPayloadCountsTowardWireBytes) {
  auto pkt = make_udp(sample_flow(), 0);
  const auto base = pkt.wire_bytes();
  pkt.control = std::make_shared<FixedPayload>(200);
  EXPECT_EQ(pkt.wire_bytes(), base - (kMinFrameBytes - 46) + 200);
}

TEST(Packet, SummaryMentionsCorruption) {
  auto pkt = make_tcp(sample_flow(), 10);
  EXPECT_EQ(pkt.summary().find("CORRUPT"), std::string::npos);
  pkt.corrupted = true;
  EXPECT_NE(pkt.summary().find("CORRUPT"), std::string::npos);
}

TEST(Packet, VlanTciRoundTrip) {
  const VlanTag tag{5, true, 0xabc};
  EXPECT_EQ(VlanTag::from_tci(tag.tci()), tag);
}

}  // namespace
}  // namespace netseer::packet
