// Property tests: serialize/parse round-trips over randomized packets,
// and FCS detection of random bit flips — parameterized over packet
// shapes (TEST_P).
#include <gtest/gtest.h>

#include "packet/builder.h"
#include "packet/wire.h"
#include "util/rng.h"

namespace netseer::packet::wire {
namespace {

struct Shape {
  bool tcp;
  bool vlan;
  bool seq_tag;
  std::uint32_t max_payload;
};

class WireProperty : public ::testing::TestWithParam<Shape> {};

Packet random_packet(util::Rng& rng, const Shape& shape) {
  FlowKey flow;
  flow.src.value = static_cast<std::uint32_t>(rng.next());
  flow.dst.value = static_cast<std::uint32_t>(rng.next());
  flow.sport = static_cast<std::uint16_t>(rng.next());
  flow.dport = static_cast<std::uint16_t>(rng.next());
  const auto payload = static_cast<std::uint32_t>(rng.uniform(shape.max_payload + 1));
  Packet pkt = shape.tcp
                   ? make_tcp(flow, payload, static_cast<std::uint8_t>(rng.uniform(32)),
                              static_cast<std::uint32_t>(rng.next()))
                   : make_udp(flow, payload);
  pkt.ip->ttl = static_cast<std::uint8_t>(1 + rng.uniform(255));
  pkt.ip->dscp = static_cast<std::uint8_t>(rng.uniform(64));
  pkt.ip->ecn = static_cast<std::uint8_t>(rng.uniform(4));
  pkt.ip->ident = static_cast<std::uint16_t>(rng.next());
  if (shape.vlan) {
    pkt.vlan = VlanTag{static_cast<std::uint8_t>(rng.uniform(8)), rng.chance(0.5),
                       static_cast<std::uint16_t>(rng.uniform(4096))};
  }
  if (shape.seq_tag) pkt.seq_tag = static_cast<std::uint32_t>(rng.next());
  return pkt;
}

TEST_P(WireProperty, RoundTripPreservesEverything) {
  util::Rng rng(GetParam().max_payload + GetParam().tcp * 7 + GetParam().vlan * 13);
  for (int i = 0; i < 200; ++i) {
    const Packet pkt = random_packet(rng, GetParam());
    const auto bytes = serialize(pkt);
    ASSERT_EQ(bytes.size(), pkt.wire_bytes());
    const auto parsed = parse(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->fcs_ok);
    EXPECT_TRUE(parsed->ip_checksum_ok);
    EXPECT_EQ(parsed->packet.flow(), pkt.flow());
    EXPECT_EQ(parsed->packet.ip->ttl, pkt.ip->ttl);
    EXPECT_EQ(parsed->packet.ip->dscp, pkt.ip->dscp);
    EXPECT_EQ(parsed->packet.ip->ecn, pkt.ip->ecn);
    EXPECT_EQ(parsed->packet.ip->ident, pkt.ip->ident);
    EXPECT_EQ(parsed->packet.vlan, pkt.vlan);
    EXPECT_EQ(parsed->packet.seq_tag, pkt.seq_tag);
    EXPECT_EQ(parsed->packet.payload_bytes, pkt.payload_bytes);
    if (pkt.is_tcp()) {
      EXPECT_EQ(parsed->packet.l4.seq, pkt.l4.seq);
      EXPECT_EQ(parsed->packet.l4.flags, pkt.l4.flags);
    }
  }
}

TEST_P(WireProperty, AnySingleBitFlipBreaksTheFcs) {
  util::Rng rng(GetParam().max_payload * 3 + 1);
  for (int i = 0; i < 100; ++i) {
    const Packet pkt = random_packet(rng, GetParam());
    auto bytes = serialize(pkt);
    const std::size_t bit = rng.uniform(bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    const auto parsed = parse(bytes);
    if (parsed.has_value()) {
      EXPECT_FALSE(parsed->fcs_ok) << "bit " << bit << " undetected";
    }
    // (Flips in length fields may make the frame unparseable — also an
    // acceptable discard.)
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, WireProperty,
                         ::testing::Values(Shape{true, false, false, 64},
                                           Shape{true, false, false, 1460},
                                           Shape{false, false, false, 1460},
                                           Shape{true, true, false, 512},
                                           Shape{true, false, true, 512},
                                           Shape{true, true, true, 1452},
                                           Shape{false, true, true, 0}),
                         [](const auto& info) {
                           const auto& s = info.param;
                           return std::string(s.tcp ? "tcp" : "udp") +
                                  (s.vlan ? "_vlan" : "") + (s.seq_tag ? "_seq" : "") + "_p" +
                                  std::to_string(s.max_payload);
                         });

}  // namespace
}  // namespace netseer::packet::wire
