// packet::Pool recycling semantics: content integrity through
// acquire/take, LIFO slot reuse, move-only handle ownership, and the
// accounting the pool.hit_rate telemetry gauge is built from. The churn
// loop at the end is the ASan canary for use-after-release bugs.
#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "packet/packet.h"
#include "packet/pool.h"

namespace netseer::packet {
namespace {

Packet make_packet(std::uint64_t uid) {
  Packet pkt;
  pkt.uid = uid;
  pkt.ip = Ipv4Header{};
  pkt.ip->ttl = 17;
  pkt.l4.sport = 4242;
  pkt.l4.dport = 80;
  pkt.payload_bytes = 999;
  return pkt;
}

TEST(Pool, AcquireParksAndTakeMovesContentOut) {
  Pool pool;
  auto slot = pool.acquire(make_packet(55));
  ASSERT_TRUE(slot);
  EXPECT_EQ(slot->uid, 55u);
  EXPECT_EQ(slot->payload_bytes, 999u);

  const Packet out = slot.take();
  EXPECT_EQ(out.uid, 55u);
  ASSERT_TRUE(out.ip.has_value());
  EXPECT_EQ(out.ip->ttl, 17);
  EXPECT_EQ(out.l4.sport, 4242);
  EXPECT_EQ(pool.acquires(), 1u);
  EXPECT_EQ(pool.slots(), 1u);
}

TEST(Pool, ReleasedSlotIsReusedNotGrown) {
  Pool pool;
  {
    auto slot = pool.acquire(make_packet(1));
    EXPECT_EQ(pool.free_slots(), 0u);
  }  // handle death returns the slot
  EXPECT_EQ(pool.free_slots(), 1u);

  auto again = pool.acquire(make_packet(2));
  EXPECT_EQ(again->uid, 2u);
  EXPECT_EQ(pool.slots(), 1u);  // same slot, no new materialization
  EXPECT_EQ(pool.acquires(), 2u);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.free_slots(), 0u);
}

TEST(Pool, ResetReturnsSlotEarly) {
  Pool pool;
  auto slot = pool.acquire(make_packet(9));
  slot.reset();
  EXPECT_FALSE(slot);
  EXPECT_EQ(pool.free_slots(), 1u);
  slot.reset();  // idempotent: a dead handle stays dead
  EXPECT_EQ(pool.free_slots(), 1u);
}

TEST(Pool, MoveTransfersOwnershipWithoutDoubleRelease) {
  Pool pool;
  auto first = pool.acquire(make_packet(3));
  PooledPacket second = std::move(first);
  EXPECT_FALSE(first);  // NOLINT(bugprone-use-after-move) — asserting the hollow state
  ASSERT_TRUE(second);
  EXPECT_EQ(second->uid, 3u);

  // Move-assign over a live handle releases the overwritten slot once.
  auto third = pool.acquire(make_packet(4));
  EXPECT_EQ(pool.slots(), 2u);
  second = std::move(third);
  EXPECT_EQ(pool.free_slots(), 1u);  // slot for uid 3 came back
  EXPECT_EQ(second->uid, 4u);
  second.reset();
  EXPECT_EQ(pool.free_slots(), 2u);
}

TEST(Pool, SteadyStateChurnStaysInOneSlot) {
  // The link→switch→link hop pattern: acquire, take, release, repeat.
  // Under ASan this walks the same slot thousands of times and trips on
  // any use-after-release; slot count proves the allocator stayed cold.
  Pool pool;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    auto slot = pool.acquire(make_packet(i));
    Packet pkt = slot.take();
    EXPECT_EQ(pkt.uid, i);
    slot.reset();
    pool.acquire(std::move(pkt)).reset();  // immediate round-trip back in
  }
  EXPECT_EQ(pool.slots(), 1u);
  EXPECT_EQ(pool.acquires(), 20000u);
  EXPECT_EQ(pool.reuses(), 19999u);
}

TEST(Pool, InFlightPopulationGrowsChunkwise) {
  Pool pool;
  std::vector<PooledPacket> in_flight;
  for (std::uint64_t i = 0; i < Pool::kChunkPackets + 1; ++i) {
    in_flight.push_back(pool.acquire(make_packet(i)));
  }
  EXPECT_EQ(pool.slots(), Pool::kChunkPackets + 1);
  for (std::uint64_t i = 0; i < in_flight.size(); ++i) {
    EXPECT_EQ(in_flight[i]->uid, i);  // chunk growth must not move slots
  }
  in_flight.clear();
  EXPECT_EQ(pool.free_slots(), Pool::kChunkPackets + 1);
}

TEST(Pool, RemoteReleaseReturnsSlotToOwnerFreeList) {
  // The cross-shard path: a packet acquired on the owner thread dies on
  // another thread (it crossed a shard boundary and was consumed there).
  // The slot takes the remote-return list and must be reusable by the
  // owner on its next acquire.
  Pool pool;
  auto slot = pool.acquire(make_packet(7));
  std::thread other([handle = std::move(slot)]() mutable { handle.reset(); });
  other.join();
  EXPECT_EQ(pool.remote_returns(), 1u);
  EXPECT_EQ(pool.free_slots(), 0u);  // parked on the remote list, not free_ yet

  auto again = pool.acquire(make_packet(8));  // drains the remote list first
  EXPECT_EQ(again->uid, 8u);
  EXPECT_EQ(pool.slots(), 1u);  // the remotely-returned slot was reused
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(Pool, BindOwnerMovesTheFastPath) {
  Pool pool;
  std::thread shard([&] {
    pool.bind_owner();
    auto slot = pool.acquire(make_packet(1));
    slot.reset();  // owner release: straight to the free list
    EXPECT_EQ(pool.free_slots(), 1u);
    EXPECT_EQ(pool.remote_returns(), 0u);
  });
  shard.join();
  // This (original) thread is now the foreign one.
  pool.bind_owner();  // take ownership back before touching acquire again
  auto slot = pool.acquire(make_packet(2));
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(Pool, OwnedByCallerTracksBindOwner) {
  // acquire() is owner-thread-only (debug builds assert it); callers
  // unsure of their shard affinity probe owned_by_caller() first.
  Pool pool;
  EXPECT_TRUE(pool.owned_by_caller());  // constructor adopts this thread
  std::thread shard([&] {
    EXPECT_FALSE(pool.owned_by_caller());
    pool.bind_owner();
    EXPECT_TRUE(pool.owned_by_caller());
    auto slot = pool.acquire(make_packet(3));  // legal: we own it now
    slot.reset();
  });
  shard.join();
  EXPECT_FALSE(pool.owned_by_caller());  // ownership stayed with the shard
  pool.bind_owner();
  EXPECT_TRUE(pool.owned_by_caller());
}

TEST(Pool, ManyRemoteReleasesAllComeBack) {
  constexpr std::uint64_t kPackets = 256;
  Pool pool;
  std::vector<PooledPacket> in_flight;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    in_flight.push_back(pool.acquire(make_packet(i)));
  }
  std::thread other([batch = std::move(in_flight)]() mutable { batch.clear(); });
  other.join();
  EXPECT_EQ(pool.remote_returns(), kPackets);
  pool.acquire(make_packet(0)).reset();  // one owner acquire folds them in
  EXPECT_EQ(pool.free_slots(), kPackets);
  EXPECT_EQ(pool.slots(), kPackets);
}

}  // namespace
}  // namespace netseer::packet
