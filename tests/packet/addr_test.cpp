#include "packet/addr.h"

#include <gtest/gtest.h>

namespace netseer::packet {
namespace {

TEST(MacAddr, FromNodeIdEncodesId) {
  const auto mac = MacAddr::from_node_id(0x01020304);
  EXPECT_EQ(mac.bytes[0], 0x02);  // locally administered
  EXPECT_EQ(mac.bytes[2], 0x01);
  EXPECT_EQ(mac.bytes[5], 0x04);
}

TEST(MacAddr, ToString) {
  EXPECT_EQ(MacAddr::from_node_id(0xff).to_string(), "02:00:00:00:00:ff");
}

TEST(MacAddr, Comparable) {
  EXPECT_EQ(MacAddr::from_node_id(7), MacAddr::from_node_id(7));
  EXPECT_NE(MacAddr::from_node_id(7), MacAddr::from_node_id(8));
}

TEST(Ipv4Addr, OctetsRoundTrip) {
  const auto addr = Ipv4Addr::from_octets(10, 1, 2, 3);
  EXPECT_EQ(addr.value, 0x0a010203u);
  EXPECT_EQ(addr.to_string(), "10.1.2.3");
}

TEST(Ipv4Addr, ParseValid) {
  const auto addr = Ipv4Addr::parse("192.168.0.255");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, Ipv4Addr::from_octets(192, 168, 0, 255));
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.").has_value());
}

TEST(Ipv4Addr, ParseToStringRoundTrip) {
  for (const char* text : {"0.0.0.0", "255.255.255.255", "10.0.1.2"}) {
    const auto addr = Ipv4Addr::parse(text);
    ASSERT_TRUE(addr.has_value());
    EXPECT_EQ(addr->to_string(), text);
  }
}

TEST(Ipv4Prefix, MaskComputation) {
  EXPECT_EQ((Ipv4Prefix{{}, 0}).mask(), 0u);
  EXPECT_EQ((Ipv4Prefix{{}, 8}).mask(), 0xff000000u);
  EXPECT_EQ((Ipv4Prefix{{}, 24}).mask(), 0xffffff00u);
  EXPECT_EQ((Ipv4Prefix{{}, 32}).mask(), 0xffffffffu);
}

TEST(Ipv4Prefix, Contains) {
  const Ipv4Prefix prefix{Ipv4Addr::from_octets(10, 1, 0, 0), 16};
  EXPECT_TRUE(prefix.contains(Ipv4Addr::from_octets(10, 1, 200, 3)));
  EXPECT_FALSE(prefix.contains(Ipv4Addr::from_octets(10, 2, 0, 1)));
}

TEST(Ipv4Prefix, ZeroLengthContainsEverything) {
  const Ipv4Prefix any{{}, 0};
  EXPECT_TRUE(any.contains(Ipv4Addr::from_octets(1, 2, 3, 4)));
  EXPECT_TRUE(any.contains(Ipv4Addr::from_octets(255, 0, 0, 1)));
}

TEST(Ipv4Prefix, ToString) {
  const Ipv4Prefix prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  EXPECT_EQ(prefix.to_string(), "10.0.0.0/8");
}

}  // namespace
}  // namespace netseer::packet
