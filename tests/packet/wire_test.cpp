#include "packet/wire.h"

#include <gtest/gtest.h>

#include "packet/builder.h"

namespace netseer::packet::wire {
namespace {

FlowKey sample_flow() {
  return FlowKey{Ipv4Addr::from_octets(10, 0, 1, 2), Ipv4Addr::from_octets(10, 0, 2, 3),
                 static_cast<std::uint8_t>(IpProto::kTcp), 40000, 443};
}

TEST(Wire, SerializedLengthMatchesWireBytes) {
  for (std::uint32_t payload : {0u, 1u, 100u, 1460u}) {
    const auto pkt = make_tcp(sample_flow(), payload);
    EXPECT_EQ(serialize(pkt).size(), pkt.wire_bytes()) << "payload=" << payload;
  }
}

TEST(Wire, TcpRoundTrip) {
  auto pkt = make_tcp(sample_flow(), 777, tcp_flags::kSyn | tcp_flags::kAck, 123456);
  pkt.ip->ttl = 17;
  pkt.eth.src = MacAddr::from_node_id(1);
  pkt.eth.dst = MacAddr::from_node_id(2);
  const auto bytes = serialize(pkt);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_TRUE(parsed->ip_checksum_ok);
  EXPECT_EQ(parsed->packet.flow(), pkt.flow());
  EXPECT_EQ(parsed->packet.ip->ttl, 17);
  EXPECT_EQ(parsed->packet.l4.seq, 123456u);
  EXPECT_EQ(parsed->packet.l4.flags, tcp_flags::kSyn | tcp_flags::kAck);
  EXPECT_EQ(parsed->packet.payload_bytes, 777u);
  EXPECT_EQ(parsed->packet.eth.src, pkt.eth.src);
  EXPECT_EQ(parsed->packet.eth.dst, pkt.eth.dst);
}

TEST(Wire, UdpRoundTrip) {
  const auto pkt = make_udp(sample_flow(), 512);
  const auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->packet.flow(), pkt.flow());
  EXPECT_EQ(parsed->packet.payload_bytes, 512u);
}

TEST(Wire, VlanAndSeqTagRoundTrip) {
  auto pkt = make_tcp(sample_flow(), 64);
  pkt.vlan = VlanTag{2, false, 0x123};
  pkt.seq_tag = 0xdeadbeef;
  const auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->packet.vlan.has_value());
  EXPECT_EQ(*parsed->packet.vlan, (VlanTag{2, false, 0x123}));
  ASSERT_TRUE(parsed->packet.seq_tag.has_value());
  EXPECT_EQ(*parsed->packet.seq_tag, 0xdeadbeefu);
}

TEST(Wire, PfcRoundTrip) {
  const auto pkt = make_pfc(4, 999);
  const auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fcs_ok);
  EXPECT_EQ(parsed->packet.kind, PacketKind::kPfc);
  ASSERT_TRUE(parsed->packet.pfc.has_value());
  EXPECT_TRUE(parsed->packet.pfc->pauses(4));
  EXPECT_EQ(parsed->packet.pfc->pause_quanta[4], 999);
}

TEST(Wire, CorruptedFlagBreaksFcs) {
  auto pkt = make_tcp(sample_flow(), 100);
  pkt.corrupted = true;
  const auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->fcs_ok);
  EXPECT_TRUE(parsed->packet.corrupted);
}

TEST(Wire, BitFlipBreaksFcs) {
  const auto pkt = make_tcp(sample_flow(), 100);
  auto bytes = serialize(pkt);
  std::uint64_t rng = 42;
  flip_random_bits(std::span(bytes).first(bytes.size() - 4), 1, rng);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->fcs_ok);
}

TEST(Wire, BitFlipInIpHeaderBreaksIpChecksum) {
  const auto pkt = make_tcp(sample_flow(), 100);
  auto bytes = serialize(pkt);
  // Byte 22 is inside the IPv4 header (14 eth + offset 8 = TTL field).
  bytes[22] ^= std::byte{0xff};
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->ip_checksum_ok);
}

TEST(Wire, TruncatedFrameRejected) {
  const auto pkt = make_tcp(sample_flow(), 100);
  const auto bytes = serialize(pkt);
  EXPECT_FALSE(parse(std::span(bytes).first(30)).has_value());
}

TEST(Wire, InternetChecksumKnownVector) {
  // Classic example from RFC 1071 materials.
  const std::uint8_t raw[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
                              0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  std::array<std::byte, 20> data{};
  for (std::size_t i = 0; i < 20; ++i) data[i] = static_cast<std::byte>(raw[i]);
  EXPECT_EQ(internet_checksum(data), 0xb861);
}

TEST(Wire, ChecksumOfHeaderWithChecksumIsZero) {
  const auto pkt = make_udp(sample_flow(), 8);
  const auto bytes = serialize(pkt);
  // IPv4 header starts at byte 14 (no shims in this packet).
  EXPECT_EQ(internet_checksum(std::span(bytes).subspan(14, 20)), 0);
}

TEST(Wire, MinFramePadding) {
  const auto pkt = make_udp(sample_flow(), 0);
  EXPECT_EQ(serialize(pkt).size(), 64u);
}

TEST(Wire, FlipRandomBitsReportsPositions) {
  std::vector<std::byte> buf(100, std::byte{0});
  std::uint64_t rng = 7;
  const auto positions = flip_random_bits(buf, 5, rng);
  EXPECT_EQ(positions.size(), 5u);
  int set_bits = 0;
  for (auto b : buf) set_bits += std::popcount(static_cast<unsigned>(b));
  EXPECT_LE(set_bits, 5);  // could overlap
  EXPECT_GT(set_bits, 0);
}

}  // namespace
}  // namespace netseer::packet::wire
