#include "packet/flow_key.h"

#include <gtest/gtest.h>

#include "packet/headers.h"
#include "util/hash.h"

#include <unordered_set>

namespace netseer::packet {
namespace {

FlowKey sample_key() {
  return FlowKey{Ipv4Addr::from_octets(10, 0, 1, 2), Ipv4Addr::from_octets(10, 0, 2, 3),
                 static_cast<std::uint8_t>(IpProto::kTcp), 12345, 80};
}

TEST(FlowKey, PackedLayoutIs13Bytes) {
  static_assert(FlowKey::kPackedSize == 13);
  const auto raw = sample_key().packed();
  EXPECT_EQ(raw.size(), 13u);
  // First four bytes are the big-endian source address.
  EXPECT_EQ(static_cast<std::uint8_t>(raw[0]), 10);
  EXPECT_EQ(static_cast<std::uint8_t>(raw[3]), 2);
  // Byte 8 is the protocol.
  EXPECT_EQ(static_cast<std::uint8_t>(raw[8]), 6);
  // Last two bytes are the big-endian destination port (80).
  EXPECT_EQ(static_cast<std::uint8_t>(raw[11]), 0);
  EXPECT_EQ(static_cast<std::uint8_t>(raw[12]), 80);
}

TEST(FlowKey, PackedRoundTrip) {
  const auto key = sample_key();
  EXPECT_EQ(FlowKey::from_packed(key.packed()), key);
}

TEST(FlowKey, HashStableAndDiscriminating) {
  const auto key = sample_key();
  EXPECT_EQ(key.hash64(), sample_key().hash64());
  auto other = key;
  other.dport = 81;
  EXPECT_NE(key.hash64(), other.hash64());
}

TEST(FlowKey, Crc32MatchesPackedBytes) {
  const auto key = sample_key();
  const auto raw = key.packed();
  EXPECT_EQ(key.crc32(), util::crc32(raw));
}

TEST(FlowKey, ReversedSwapsEndpoints) {
  const auto key = sample_key();
  const auto rev = key.reversed();
  EXPECT_EQ(rev.src, key.dst);
  EXPECT_EQ(rev.dst, key.src);
  EXPECT_EQ(rev.sport, key.dport);
  EXPECT_EQ(rev.dport, key.sport);
  EXPECT_EQ(rev.reversed(), key);
}

TEST(FlowKey, UsableInUnorderedSet) {
  std::unordered_set<FlowKey, FlowKeyHash> set;
  set.insert(sample_key());
  set.insert(sample_key());
  set.insert(sample_key().reversed());
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlowKey, HashDistribution) {
  // Sequential flows should not collide in 64-bit hashes.
  std::unordered_set<std::uint64_t> hashes;
  FlowKey key = sample_key();
  for (std::uint16_t p = 0; p < 2000; ++p) {
    key.sport = p;
    hashes.insert(key.hash64());
  }
  EXPECT_EQ(hashes.size(), 2000u);
}

TEST(FlowKey, ToStringFormat) {
  EXPECT_EQ(sample_key().to_string(), "10.0.1.2:12345>10.0.2.3:80/6");
}

}  // namespace
}  // namespace netseer::packet
