#include "fabric/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "fabric/fat_tree.h"

namespace netseer::fabric {
namespace {

TestbedConfig small_config() {
  TestbedConfig config;
  config.num_pods = 4;
  config.aggs_per_pod = 2;
  config.tors_per_pod = 2;
  config.num_cores = 4;
  config.hosts_per_tor = 1;
  return config;
}

TEST(Partition, RoundRobinCoversEverySwitchAndBalances) {
  const auto config = small_config();
  const Testbed bed = make_testbed(config);
  const PartitionPlan plan = partition_switches(*bed.net, 4);

  EXPECT_EQ(plan.shards, 4u);
  EXPECT_EQ(plan.assignment.size(), bed.net->switches().size());
  for (const auto& sw : bed.net->switches()) {
    ASSERT_TRUE(plan.assignment.contains(sw->id())) << sw->name();
    EXPECT_LT(plan.shard_of(sw->id()), 4u);
  }
  // 20 switches over 4 shards: perfectly balanced at 5 each.
  ASSERT_EQ(plan.shard_sizes.size(), 4u);
  for (const std::size_t size : plan.shard_sizes) EXPECT_EQ(size, 5u);
}

TEST(Partition, LookaheadIsMinSwitchSwitchLinkDelay) {
  auto config = small_config();
  config.link_delay = util::microseconds(2);
  const Testbed bed = make_testbed(config);
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    // Identical for every shard count — the cross-shard-count determinism
    // guarantee depends on it.
    EXPECT_EQ(partition_switches(*bed.net, shards).lookahead, util::microseconds(2));
    EXPECT_EQ(partition_testbed(bed, config, shards).lookahead, util::microseconds(2));
  }
}

TEST(Partition, LinkCountsPartitionTheSwitchLinks) {
  const auto config = small_config();
  const Testbed bed = make_testbed(config);
  const PartitionPlan one = partition_switches(*bed.net, 1);
  EXPECT_EQ(one.cross_shard_links, 0u);
  const std::size_t total = one.intra_shard_links;
  EXPECT_GT(total, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    const PartitionPlan plan = partition_switches(*bed.net, shards);
    EXPECT_EQ(plan.cross_shard_links + plan.intra_shard_links, total) << shards;
    EXPECT_GT(plan.cross_shard_links, 0u) << shards;
  }
}

TEST(Partition, TestbedPartitionKeepsPodsTogether) {
  const auto config = small_config();
  const Testbed bed = make_testbed(config);
  const PartitionPlan plan = partition_testbed(bed, config, 4);

  for (int pod = 0; pod < config.num_pods; ++pod) {
    const std::uint32_t shard = plan.shard_of(bed.aggs[pod * config.aggs_per_pod]->id());
    for (int a = 0; a < config.aggs_per_pod; ++a) {
      EXPECT_EQ(plan.shard_of(bed.aggs[pod * config.aggs_per_pod + a]->id()), shard) << pod;
    }
    for (int t = 0; t < config.tors_per_pod; ++t) {
      EXPECT_EQ(plan.shard_of(bed.tors[pod * config.tors_per_pod + t]->id()), shard) << pod;
    }
  }
  // With pods whole, only pod<->core links can cross.
  const PartitionPlan naive = partition_switches(*bed.net, 4);
  EXPECT_LE(plan.cross_shard_links, naive.cross_shard_links);
  EXPECT_EQ(plan.assignment.size(), bed.net->switches().size());
  const std::size_t assigned = std::accumulate(plan.shard_sizes.begin(),
                                               plan.shard_sizes.end(), std::size_t{0});
  EXPECT_EQ(assigned, bed.net->switches().size());
}

TEST(Partition, SingleShardDegeneratesGracefully) {
  const auto config = small_config();
  const Testbed bed = make_testbed(config);
  const PartitionPlan plan = partition_testbed(bed, config, 1);
  EXPECT_EQ(plan.shards, 1u);
  EXPECT_EQ(plan.cross_shard_links, 0u);
  for (const auto& sw : bed.net->switches()) {
    EXPECT_EQ(plan.shard_of(sw->id()), 0u);
  }
}

}  // namespace
}  // namespace netseer::fabric
