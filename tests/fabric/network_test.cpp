#include "fabric/network.h"

#include <gtest/gtest.h>

#include "fabric/fat_tree.h"
#include "packet/builder.h"

namespace netseer::fabric {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;

class CountingApp final : public net::HostApp {
 public:
  void on_receive(net::Host&, const packet::Packet& pkt) override {
    ++count;
    last = pkt;
  }
  int count = 0;
  std::optional<packet::Packet> last;
};

TEST(Network, TwoSwitchForwarding) {
  Network net(1);
  pdp::SwitchConfig sc;
  sc.num_ports = 4;
  auto& s1 = net.add_switch("s1", sc);
  auto& s2 = net.add_switch("s2", sc);
  auto& h1 = net.add_host("h1", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(25));
  auto& h2 = net.add_host("h2", Ipv4Addr::from_octets(10, 0, 1, 1), util::BitRate::gbps(25));
  net.connect_host(s1, 0, h1, util::microseconds(1));
  net.connect_host(s2, 0, h2, util::microseconds(1));
  net.connect_switches(s1, 1, s2, 1, util::microseconds(1));
  net.compute_routes();

  CountingApp app;
  h2.add_app(&app);

  h1.send(packet::make_tcp(FlowKey{h1.addr(), h2.addr(), 6, 1000, 80}, 500));
  net.simulator().run();

  ASSERT_EQ(app.count, 1);
  EXPECT_EQ(app.last->ip->ttl, 62);  // two switch hops
  EXPECT_EQ(s1.counters(0).rx_packets, 1u);
  EXPECT_EQ(s2.counters(1).rx_packets, 1u);
}

TEST(Network, FindByName) {
  Network net(1);
  pdp::SwitchConfig sc;
  auto& s1 = net.add_switch("s1", sc);
  auto& h1 = net.add_host("h1", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(25));
  EXPECT_EQ(net.find_switch("s1"), &s1);
  EXPECT_EQ(net.find_switch("nope"), nullptr);
  EXPECT_EQ(net.find_host("h1"), &h1);
  EXPECT_EQ(net.find_host("nope"), nullptr);
  EXPECT_EQ(net.node(s1.id()), &s1);
  EXPECT_EQ(net.node(h1.id()), &h1);
  EXPECT_EQ(net.node(9999), nullptr);
}

TEST(Testbed, HasPaperDimensions) {
  auto tb = make_testbed();
  EXPECT_EQ(tb.cores.size(), 2u);
  EXPECT_EQ(tb.aggs.size(), 4u);
  EXPECT_EQ(tb.tors.size(), 4u);
  EXPECT_EQ(tb.all_switches().size(), 10u);  // matches the paper's testbed
  EXPECT_EQ(tb.hosts.size(), 32u);
}

TEST(Testbed, AnyToAnyReachability) {
  auto tb = make_testbed();
  std::vector<CountingApp> apps(tb.hosts.size());
  for (std::size_t i = 0; i < tb.hosts.size(); ++i) tb.hosts[i]->add_app(&apps[i]);

  // Every host sends one packet to every other host.
  int sent = 0;
  for (auto* src : tb.hosts) {
    for (auto* dst : tb.hosts) {
      if (src == dst) continue;
      src->send(packet::make_tcp(FlowKey{src->addr(), dst->addr(), 6, 1000, 80}, 100));
      ++sent;
    }
  }
  tb.net->simulator().run();

  int received = 0;
  for (const auto& app : apps) received += app.count;
  EXPECT_EQ(received, sent);
  // No drops anywhere.
  for (auto* sw : tb.all_switches()) EXPECT_EQ(sw->total_drops(), 0u) << sw->name();
}

TEST(Testbed, CrossPodTraversesCore) {
  auto tb = make_testbed();
  CountingApp app;
  // h0 is in pod 0; the last host is in pod 1.
  auto* src = tb.hosts.front();
  auto* dst = tb.hosts.back();
  dst->add_app(&app);
  src->send(packet::make_tcp(FlowKey{src->addr(), dst->addr(), 6, 1, 2}, 100));
  tb.net->simulator().run();
  ASSERT_EQ(app.count, 1);
  // host ttl 64, minus tor, agg, core, agg, tor = 5 hops.
  EXPECT_EQ(app.last->ip->ttl, 59);
  std::uint64_t core_rx = 0;
  for (auto* core : tb.cores) {
    for (util::PortId p = 0; p < core->config().num_ports; ++p) {
      core_rx += core->counters(p).rx_packets;
    }
  }
  EXPECT_EQ(core_rx, 1u);
}

TEST(Testbed, SamePodStaysInPod) {
  auto tb = make_testbed();
  CountingApp app;
  auto* src = tb.hosts[0];   // pod 0, tor 0
  auto* dst = tb.hosts[8];   // pod 0, tor 1 (8 hosts per tor)
  dst->add_app(&app);
  src->send(packet::make_tcp(FlowKey{src->addr(), dst->addr(), 6, 1, 2}, 100));
  tb.net->simulator().run();
  ASSERT_EQ(app.count, 1);
  EXPECT_EQ(app.last->ip->ttl, 61);  // tor, agg, tor
}

TEST(Testbed, EcmpUsesBothAggs) {
  auto tb = make_testbed(TestbedConfig{}, /*seed=*/3);
  auto* src = tb.hosts[0];
  auto* dst = tb.hosts[8];
  for (std::uint16_t s = 0; s < 200; ++s) {
    src->send(packet::make_tcp(FlowKey{src->addr(), dst->addr(), 6, s, 80}, 100));
  }
  tb.net->simulator().run();
  // Traffic from tor0-0 to tor0-1 can go via agg0-0 or agg0-1.
  std::uint64_t agg0 = 0, agg1 = 0;
  for (util::PortId p = 0; p < tb.aggs[0]->config().num_ports; ++p) {
    agg0 += tb.aggs[0]->counters(p).rx_packets;
    agg1 += tb.aggs[1]->counters(p).rx_packets;
  }
  EXPECT_GT(agg0, 30u);
  EXPECT_GT(agg1, 30u);
}

TEST(Testbed, FatTreeK4Shape) {
  auto tb = make_fat_tree(4);
  EXPECT_EQ(tb.cores.size(), 4u);
  EXPECT_EQ(tb.aggs.size(), 8u);
  EXPECT_EQ(tb.tors.size(), 8u);
  EXPECT_EQ(tb.hosts.size(), 16u);
}

TEST(Testbed, FatTreeRejectsOddArity) {
  EXPECT_THROW(make_fat_tree(3), std::invalid_argument);
  EXPECT_THROW(make_fat_tree(0), std::invalid_argument);
}

TEST(Network, LinkBytesAccumulate) {
  auto tb = make_testbed();
  auto* src = tb.hosts[0];
  auto* dst = tb.hosts[31];
  src->send(packet::make_tcp(FlowKey{src->addr(), dst->addr(), 6, 1, 2}, 1000));
  tb.net->simulator().run();
  // 6 links on the path (host->tor, tor->agg, agg->core, core->agg,
  // agg->tor, tor->host), each carried ~1058 bytes.
  EXPECT_GE(tb.net->total_link_bytes_carried(), 6u * 1058u);
}

}  // namespace
}  // namespace netseer::fabric
