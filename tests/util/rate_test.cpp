#include "util/rate.h"

#include <gtest/gtest.h>

namespace netseer::util {
namespace {

TEST(BitRate, SerializationDelayBasics) {
  // 1 Gbps: 1 byte = 8 ns.
  EXPECT_EQ(BitRate::gbps(1).serialization_delay(1), 8);
  EXPECT_EQ(BitRate::gbps(1).serialization_delay(1500), 12000);
  // 100 Gbps: 100 bytes = 8 ns.
  EXPECT_EQ(BitRate::gbps(100).serialization_delay(100), 8);
}

TEST(BitRate, SerializationDelayRoundsUp) {
  // 3 bytes at 100 Gbps = 0.24 ns -> rounds up to 1 ns, never 0.
  EXPECT_EQ(BitRate::gbps(100).serialization_delay(3), 1);
}

TEST(BitRate, ZeroRateMeansInstant) {
  EXPECT_EQ(BitRate{}.serialization_delay(1'000'000), 0);
}

TEST(BitRate, ZeroBytesIsFree) {
  EXPECT_EQ(BitRate::gbps(10).serialization_delay(0), 0);
}

TEST(BitRate, BytesIn) {
  // 1 Gbps for 1 us = 125 bytes.
  EXPECT_EQ(BitRate::gbps(1).bytes_in(microseconds(1)), 125);
  EXPECT_EQ(BitRate::gbps(100).bytes_in(seconds(1)), 12'500'000'000LL);
}

TEST(BitRate, Comparisons) {
  EXPECT_LT(BitRate::mbps(100), BitRate::gbps(1));
  EXPECT_EQ(BitRate::kbps(1000), BitRate::mbps(1));
}

TEST(TokenBucket, AdmitsUpToBurst) {
  TokenBucket bucket(BitRate::gbps(1), 1000);
  EXPECT_TRUE(bucket.try_consume(0, 600));
  EXPECT_TRUE(bucket.try_consume(0, 400));
  EXPECT_FALSE(bucket.try_consume(0, 1));
}

TEST(TokenBucket, RefillsOverTime) {
  TokenBucket bucket(BitRate::gbps(1), 1000);
  ASSERT_TRUE(bucket.try_consume(0, 1000));
  EXPECT_FALSE(bucket.try_consume(0, 100));
  // 1 Gbps refills 125 bytes/us.
  EXPECT_TRUE(bucket.try_consume(microseconds(1), 100));
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket bucket(BitRate::gbps(1), 500);
  // A long idle period must not accumulate more than the burst.
  EXPECT_TRUE(bucket.try_consume(seconds(10), 500));
  EXPECT_FALSE(bucket.try_consume(seconds(10), 1));
}

TEST(TokenBucket, TimeAvailableNowWhenCreditExists) {
  TokenBucket bucket(BitRate::gbps(1), 1000);
  EXPECT_EQ(bucket.time_available(5, 1000), 5);
}

TEST(TokenBucket, TimeAvailablePacesDeficit) {
  TokenBucket bucket(BitRate::gbps(1), 1000);
  ASSERT_TRUE(bucket.try_consume(0, 1000));
  // Needs 125 bytes: 1 us at 1 Gbps.
  EXPECT_EQ(bucket.time_available(0, 125), microseconds(1));
}

TEST(TokenBucket, MonotoneAcrossCalls) {
  TokenBucket bucket(BitRate::mbps(100), 10'000);
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    t = bucket.time_available(t, 1500);
    EXPECT_TRUE(bucket.try_consume(t, 1500));
  }
  // 50 * 1500 B at 100 Mb/s ~ 6 ms minus the initial 10 KB burst.
  EXPECT_GT(t, milliseconds(5));
}

}  // namespace
}  // namespace netseer::util
