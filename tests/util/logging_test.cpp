#include "util/logging.h"

#include <gtest/gtest.h>

namespace netseer::util {
namespace {

TEST(Logging, DefaultLevelIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Logging, SetAndRestoreLevel) {
  const auto previous = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(previous);
}

TEST(Logging, BelowThresholdMessagesAreCheap) {
  const auto previous = log_level();
  set_log_level(LogLevel::kOff);
  // Must not crash or format when suppressed (format args still valid).
  for (int i = 0; i < 1000; ++i) {
    NETSEER_LOG_DEBUG("dropped %d at %s", i, "sw1");
    NETSEER_LOG_ERROR("also suppressed at kOff: %d", i);
  }
  set_log_level(previous);
}

TEST(Logging, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST(Logging, PlainMessageWithoutArgs) {
  const auto previous = log_level();
  set_log_level(LogLevel::kOff);
  NETSEER_LOG_WARN("plain message, no format args");
  set_log_level(previous);
}

}  // namespace
}  // namespace netseer::util
