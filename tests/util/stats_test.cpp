#include "util/stats.h"

#include <gtest/gtest.h>

namespace netseer::util {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentiles, EmptyIsZero) {
  Percentiles p;
  EXPECT_EQ(p.percentile(50), 0.0);
}

TEST(Percentiles, MedianAndTails) {
  Percentiles p;
  for (int i = 1; i <= 101; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 51.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 101.0);
  EXPECT_NEAR(p.percentile(99), 100.0, 1.0);
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(10);
  EXPECT_DOUBLE_EQ(p.percentile(50), 10.0);
  p.add(0);
  p.add(20);
  EXPECT_DOUBLE_EQ(p.percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 0.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 9
  h.add(-5.0);  // clamps to bucket 0
  h.add(50.0);  // clamps to bucket 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[9], 2u);
}

TEST(Histogram, BucketLow) {
  Histogram h(0.0, 100.0, 10);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(5), 50.0);
}

}  // namespace
}  // namespace netseer::util
