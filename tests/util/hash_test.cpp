#include "util/hash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

namespace netseer::util {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(Fnv1a64, EmptyIsOffsetBasis) {
  EXPECT_EQ(fnv1a64({}), 0xcbf29ce484222325ULL);
}

TEST(Fnv1a64, KnownVectors) {
  // Reference values for FNV-1a 64.
  EXPECT_EQ(fnv1a64(bytes_of("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64(bytes_of("foobar")), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, DifferentInputsDiffer) {
  EXPECT_NE(fnv1a64(bytes_of("flow-a")), fnv1a64(bytes_of("flow-b")));
}

TEST(Crc32, KnownVector) {
  // CRC-32/ISO-HDLC of "123456789" is 0xCBF43926.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xcbf43926U);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32({}), 0U);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  const auto full = crc32(data);
  std::uint32_t running = 0;
  running = crc32_update(running, std::span(data).first(10));
  running = crc32_update(running, std::span(data).subspan(10));
  EXPECT_EQ(running, full);
}

TEST(Crc32, SingleBitFlipChangesValue) {
  auto data = bytes_of("payload payload payload");
  const auto before = crc32(data);
  data[5] ^= std::byte{0x01};
  EXPECT_NE(crc32(data), before);
}

TEST(Mix64, ZeroDoesNotMapToZero) {
  EXPECT_NE(mix64(0), 0u);
}

TEST(Mix64, InjectiveOnSmallRange) {
  // mix64 is a bijection; sanity-check no collisions on a small range.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.push_back(mix64(i));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace netseer::util
