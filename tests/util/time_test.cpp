#include "util/time.h"

#include <gtest/gtest.h>

namespace netseer::util {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(seconds(2) + milliseconds(500), 2'500'000'000LL);
}

TEST(Time, ToFloatingPoint) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(9)), 9.0);
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(1500)), 1.5);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(5), "5ns");
  EXPECT_EQ(format_duration(microseconds(2)), "2.000us");
  EXPECT_EQ(format_duration(milliseconds(3)), "3.000ms");
  EXPECT_EQ(format_duration(seconds(1) + milliseconds(250)), "1.250s");
  EXPECT_EQ(format_duration(-microseconds(2)), "-2.000us");
}

}  // namespace
}  // namespace netseer::util
