#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace netseer::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentStreamsDiverge) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformZeroBound) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.uniform(8)];
  for (int c : counts) EXPECT_GT(c, 700);  // each bucket near 1000
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanApproximately) {
  Rng rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(10.0), 0.0);
}

TEST(Rng, ForkIndependent) {
  Rng parent(29);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_EQ(same, 0);
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace netseer::util
