#include "pdp/table.h"

#include <gtest/gtest.h>

#include "packet/headers.h"

namespace netseer::pdp {
namespace {

using packet::Ipv4Addr;
using packet::Ipv4Prefix;

packet::FlowKey flow(std::uint16_t sport) {
  return packet::FlowKey{Ipv4Addr::from_octets(10, 0, 0, 1), Ipv4Addr::from_octets(10, 1, 0, 1),
                         6, sport, 80};
}

TEST(EcmpGroup, EmptyGroupReturnsInvalid) {
  EcmpGroup group;
  EXPECT_EQ(group.select(flow(1), 0), util::kInvalidPort);
}

TEST(EcmpGroup, SingleMemberAlwaysSelected) {
  EcmpGroup group{{5}};
  for (std::uint16_t s = 0; s < 50; ++s) EXPECT_EQ(group.select(flow(s), 7), 5);
}

TEST(EcmpGroup, SameFlowSamePort) {
  EcmpGroup group{{1, 2, 3, 4}};
  const auto first = group.select(flow(99), 42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(group.select(flow(99), 42), first);
}

TEST(EcmpGroup, FlowsSpreadAcrossMembers) {
  EcmpGroup group{{1, 2, 3, 4}};
  std::array<int, 8> counts{};
  for (std::uint16_t s = 0; s < 4000; ++s) ++counts[group.select(flow(s), 42)];
  for (int p = 1; p <= 4; ++p) EXPECT_GT(counts[p], 700) << "port " << p;
}

TEST(EcmpGroup, SeedChangesSelection) {
  EcmpGroup group{{1, 2, 3, 4}};
  int differing = 0;
  for (std::uint16_t s = 0; s < 100; ++s) {
    if (group.select(flow(s), 1) != group.select(flow(s), 2)) ++differing;
  }
  EXPECT_GT(differing, 30);  // different seeds pick differently often
}

TEST(LpmTable, LongestPrefixWins) {
  LpmTable table;
  table.insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8}, EcmpGroup{{1}});
  table.insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 1, 0, 0), 16}, EcmpGroup{{2}});
  table.insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 1, 2, 0), 24}, EcmpGroup{{3}});

  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 9, 9, 9))->ports[0], 1);
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 1, 9, 9))->ports[0], 2);
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 1, 2, 9))->ports[0], 3);
}

TEST(LpmTable, MissReturnsNull) {
  LpmTable table;
  table.insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8}, EcmpGroup{{1}});
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(192, 168, 0, 1)), nullptr);
}

TEST(LpmTable, EmptyTableMisses) {
  LpmTable table;
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 0, 0, 1)), nullptr);
}

TEST(LpmTable, InsertReplacesExisting) {
  LpmTable table;
  const Ipv4Prefix prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24};
  table.insert(prefix, EcmpGroup{{1}});
  table.insert(prefix, EcmpGroup{{9}});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 0, 0, 5))->ports[0], 9);
}

TEST(LpmTable, RemoveEntry) {
  LpmTable table;
  const Ipv4Prefix prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 24};
  table.insert(prefix, EcmpGroup{{1}});
  EXPECT_TRUE(table.remove(prefix));
  EXPECT_FALSE(table.remove(prefix));
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 0, 0, 5)), nullptr);
}

TEST(LpmTable, CorruptedEntryIsSkipped) {
  // The §5.1 Case-#3 failure: a parity error silently blackholes exactly
  // the flows covered by the corrupted entry.
  LpmTable table;
  const Ipv4Prefix victim{Ipv4Addr::from_octets(10, 1, 2, 0), 24};
  table.insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8}, EcmpGroup{{1}});
  table.insert(victim, EcmpGroup{{3}});

  ASSERT_TRUE(table.set_corrupted(victim, true));
  // Falls through to the shorter prefix (10/8), not a total miss.
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 1, 2, 9))->ports[0], 1);

  ASSERT_TRUE(table.set_corrupted(victim, false));
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 1, 2, 9))->ports[0], 3);
}

TEST(LpmTable, CorruptedOnlyEntryMisses) {
  LpmTable table;
  const Ipv4Prefix prefix{Ipv4Addr::from_octets(10, 1, 2, 0), 24};
  table.insert(prefix, EcmpGroup{{3}});
  ASSERT_TRUE(table.set_corrupted(prefix, true));
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 1, 2, 9)), nullptr);
}

TEST(LpmTable, SetCorruptedUnknownPrefix) {
  LpmTable table;
  EXPECT_FALSE(table.set_corrupted(Ipv4Prefix{Ipv4Addr::from_octets(1, 2, 3, 0), 24}, true));
}

TEST(LpmTable, ReinsertClearsCorruption) {
  LpmTable table;
  const Ipv4Prefix prefix{Ipv4Addr::from_octets(10, 1, 2, 0), 24};
  table.insert(prefix, EcmpGroup{{3}});
  table.set_corrupted(prefix, true);
  table.insert(prefix, EcmpGroup{{4}});  // control plane rewrite repairs parity
  EXPECT_EQ(table.lookup(Ipv4Addr::from_octets(10, 1, 2, 9))->ports[0], 4);
}

}  // namespace
}  // namespace netseer::pdp
