#include "pdp/acl.h"

#include <gtest/gtest.h>

namespace netseer::pdp {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;
using packet::Ipv4Prefix;

FlowKey flow(Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto = 6, std::uint16_t sport = 1234,
             std::uint16_t dport = 80) {
  return FlowKey{src, dst, proto, sport, dport};
}

TEST(AclRule, WildcardMatchesEverything) {
  AclRule rule;
  EXPECT_TRUE(rule.matches(flow(Ipv4Addr::from_octets(1, 2, 3, 4), Ipv4Addr::from_octets(5, 6, 7, 8))));
}

TEST(AclRule, SrcPrefixFilters) {
  AclRule rule;
  rule.src = Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  EXPECT_TRUE(rule.matches(flow(Ipv4Addr::from_octets(10, 9, 9, 9), Ipv4Addr::from_octets(1, 1, 1, 1))));
  EXPECT_FALSE(rule.matches(flow(Ipv4Addr::from_octets(11, 0, 0, 1), Ipv4Addr::from_octets(1, 1, 1, 1))));
}

TEST(AclRule, ProtoFilter) {
  AclRule rule;
  rule.proto = 17;
  EXPECT_FALSE(rule.matches(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(2, 2, 2, 2), 6)));
  EXPECT_TRUE(rule.matches(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(2, 2, 2, 2), 17)));
}

TEST(AclRule, PortRanges) {
  AclRule rule;
  rule.dport_lo = 80;
  rule.dport_hi = 443;
  EXPECT_TRUE(rule.matches(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(2, 2, 2, 2), 6, 1, 80)));
  EXPECT_TRUE(rule.matches(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(2, 2, 2, 2), 6, 1, 443)));
  EXPECT_FALSE(rule.matches(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(2, 2, 2, 2), 6, 1, 444)));
}

TEST(AclTable, DefaultPermits) {
  AclTable table;
  const auto verdict = table.evaluate(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(2, 2, 2, 2)));
  EXPECT_TRUE(verdict.permit);
  EXPECT_EQ(verdict.rule_id, 0);
}

TEST(AclTable, DenyRuleBlocks) {
  AclTable table;
  AclRule rule;
  rule.rule_id = 42;
  rule.dst = Ipv4Prefix{Ipv4Addr::from_octets(10, 1, 0, 0), 16};
  rule.permit = false;
  table.add_rule(rule);

  const auto verdict = table.evaluate(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(10, 1, 2, 3)));
  EXPECT_FALSE(verdict.permit);
  EXPECT_EQ(verdict.rule_id, 42);
}

TEST(AclTable, FirstMatchWins) {
  AclTable table;
  AclRule specific_permit;
  specific_permit.rule_id = 1;
  specific_permit.dst = Ipv4Prefix{Ipv4Addr::from_octets(10, 1, 2, 0), 24};
  specific_permit.permit = true;
  table.add_rule(specific_permit);

  AclRule broad_deny;
  broad_deny.rule_id = 2;
  broad_deny.dst = Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8};
  broad_deny.permit = false;
  table.add_rule(broad_deny);

  EXPECT_TRUE(table.evaluate(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(10, 1, 2, 3))).permit);
  EXPECT_FALSE(table.evaluate(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(10, 5, 0, 1))).permit);
}

TEST(AclTable, HitCountersAccumulate) {
  AclTable table;
  AclRule rule;
  rule.rule_id = 7;
  rule.permit = false;
  table.add_rule(rule);

  for (int i = 0; i < 5; ++i) {
    (void)table.evaluate(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(2, 2, 2, 2)));
  }
  EXPECT_EQ(table.hits(7), 5u);
  EXPECT_EQ(table.hits(99), 0u);
}

TEST(AclTable, RemoveRule) {
  AclTable table;
  AclRule rule;
  rule.rule_id = 7;
  rule.permit = false;
  table.add_rule(rule);
  EXPECT_FALSE(table.evaluate(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(2, 2, 2, 2))).permit);
  EXPECT_TRUE(table.remove_rule(7));
  EXPECT_FALSE(table.remove_rule(7));
  EXPECT_TRUE(table.evaluate(flow(Ipv4Addr::from_octets(1, 1, 1, 1), Ipv4Addr::from_octets(2, 2, 2, 2))).permit);
}

TEST(AclTable, FindReturnsRule) {
  AclTable table;
  AclRule rule;
  rule.rule_id = 9;
  table.add_rule(rule);
  ASSERT_NE(table.find(9), nullptr);
  EXPECT_EQ(table.find(9)->rule_id, 9);
  EXPECT_EQ(table.find(10), nullptr);
}

}  // namespace
}  // namespace netseer::pdp
