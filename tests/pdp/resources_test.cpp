#include "pdp/resources.h"

#include <gtest/gtest.h>

namespace netseer::pdp {
namespace {

TEST(ResourceModel, AccumulatesPerComponent) {
  ResourceModel model;
  model.add("a", Resource::kSram, 0.10);
  model.add("a", Resource::kSram, 0.05);
  model.add("b", Resource::kSram, 0.20);
  EXPECT_DOUBLE_EQ(model.component_usage("a", Resource::kSram), 0.15);
  EXPECT_DOUBLE_EQ(model.component_usage("b", Resource::kSram), 0.20);
  EXPECT_DOUBLE_EQ(model.total(Resource::kSram), 0.35);
  EXPECT_EQ(model.components().size(), 2u);
}

TEST(ResourceModel, UnknownComponentIsZero) {
  ResourceModel model;
  EXPECT_DOUBLE_EQ(model.component_usage("nope", Resource::kPhv), 0.0);
  EXPECT_DOUBLE_EQ(model.total(Resource::kPhv), 0.0);
}

TEST(ResourceModel, TotalClampsToOne) {
  ResourceModel model;
  model.add("a", Resource::kTcam, 0.7);
  model.add("b", Resource::kTcam, 0.7);
  EXPECT_DOUBLE_EQ(model.total(Resource::kTcam), 1.0);
}

TEST(ResourceModel, ReportContainsEveryResourceAndComponent) {
  ResourceModel model;
  model.add("dedup", Resource::kStatefulAlu, 0.08);
  const auto report = model.report();
  for (std::size_t r = 0; r < kNumResources; ++r) {
    EXPECT_NE(report.find(to_string(static_cast<Resource>(r))), std::string::npos);
  }
  EXPECT_NE(report.find("dedup"), std::string::npos);
  EXPECT_NE(report.find("8.0%"), std::string::npos);
}

TEST(ResourceFractions, SramScalesLinearly) {
  const double one_mb = sram_fraction(1 << 20);
  const double two_mb = sram_fraction(2 << 20);
  EXPECT_NEAR(two_mb, 2 * one_mb, 1e-12);
  EXPECT_GT(one_mb, 0.0);
  EXPECT_LT(one_mb, 0.1);  // 1 MB is a small slice of ~15 MB MAU SRAM
}

TEST(ResourceFractions, Clamped) {
  EXPECT_DOUBLE_EQ(sram_fraction(1LL << 40), 1.0);
  EXPECT_DOUBLE_EQ(sram_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(tcam_fraction(1LL << 40), 1.0);
}

TEST(ResourceFractions, TcamIsScarcerThanSram) {
  EXPECT_GT(tcam_fraction(100 * 1024), sram_fraction(100 * 1024));
}

TEST(ResourceNames, AllDistinct) {
  std::set<std::string> names;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    names.insert(to_string(static_cast<Resource>(r)));
  }
  EXPECT_EQ(names.size(), kNumResources);
}

}  // namespace
}  // namespace netseer::pdp
