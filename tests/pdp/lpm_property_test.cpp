// Property test: the LPM table agrees with a brute-force reference model
// under randomized prefix sets, lookups, removals and corruptions.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "pdp/table.h"
#include "util/rng.h"

namespace netseer::pdp {
namespace {

struct RefEntry {
  packet::Ipv4Prefix prefix;
  util::PortId port;
  bool corrupted;
};

/// O(n) reference: longest healthy matching prefix.
std::optional<util::PortId> ref_lookup(const std::vector<RefEntry>& entries,
                                       packet::Ipv4Addr addr) {
  std::optional<util::PortId> best;
  int best_len = -1;
  for (const auto& entry : entries) {
    if (entry.corrupted || !entry.prefix.contains(addr)) continue;
    if (static_cast<int>(entry.prefix.length) > best_len) {
      best_len = entry.prefix.length;
      best = entry.port;
    }
  }
  return best;
}

class LpmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmProperty, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  LpmTable table;
  std::vector<RefEntry> reference;

  const auto random_prefix = [&] {
    const auto length = static_cast<std::uint8_t>(8 + rng.uniform(25));  // 8..32
    packet::Ipv4Addr net{static_cast<std::uint32_t>(rng.next())};
    net.value &= packet::Ipv4Prefix{{}, length}.mask();
    return packet::Ipv4Prefix{net, length};
  };

  for (int step = 0; step < 400; ++step) {
    const double action = rng.uniform01();
    if (action < 0.5 || reference.empty()) {
      const auto prefix = random_prefix();
      const auto port = static_cast<util::PortId>(rng.uniform(32));
      table.insert(prefix, EcmpGroup{{port}});
      // Reference semantics: replace same prefix, clear corruption.
      bool replaced = false;
      for (auto& entry : reference) {
        if (entry.prefix == prefix) {
          entry.port = port;
          entry.corrupted = false;
          replaced = true;
        }
      }
      if (!replaced) reference.push_back(RefEntry{prefix, port, false});
    } else if (action < 0.65) {
      const auto idx = rng.uniform(reference.size());
      EXPECT_TRUE(table.remove(reference[idx].prefix));
      reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (action < 0.8) {
      const auto idx = rng.uniform(reference.size());
      const bool corrupt = rng.chance(0.7);
      EXPECT_TRUE(table.set_corrupted(reference[idx].prefix, corrupt));
      reference[idx].corrupted = corrupt;
    } else {
      // Lookups: random addresses plus addresses inside known prefixes.
      for (int probe = 0; probe < 10; ++probe) {
        packet::Ipv4Addr addr{static_cast<std::uint32_t>(rng.next())};
        if (rng.chance(0.5) && !reference.empty()) {
          const auto& entry = reference[rng.uniform(reference.size())];
          addr.value = (entry.prefix.network.value & entry.prefix.mask()) |
                       (static_cast<std::uint32_t>(rng.next()) & ~entry.prefix.mask());
        }
        const auto* group = table.lookup(addr);
        const auto expected = ref_lookup(reference, addr);
        if (expected.has_value()) {
          ASSERT_NE(group, nullptr) << addr.to_string();
          // Multiple same-length prefixes can tie; lengths must agree, and
          // with unique insertion order semantics ports match exactly in
          // the common case. Verify via reference containment:
          bool port_plausible = false;
          for (const auto& entry : reference) {
            if (!entry.corrupted && entry.prefix.contains(addr) &&
                entry.port == group->ports[0]) {
              port_plausible = true;
            }
          }
          EXPECT_TRUE(port_plausible);
        } else {
          EXPECT_EQ(group, nullptr) << addr.to_string();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmProperty, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace netseer::pdp
