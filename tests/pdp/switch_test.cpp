#include "pdp/switch.h"

#include <gtest/gtest.h>

#include "packet/builder.h"
#include "sim/simulator.h"

namespace netseer::pdp {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;
using packet::Ipv4Prefix;
using packet::Packet;

/// Terminal node that records everything it receives.
class CaptureNode final : public net::Node {
 public:
  CaptureNode(util::NodeId id, std::string name) : Node(id, std::move(name)) {}

  void receive(Packet&& pkt, util::PortId in_port) override {
    pkt.meta.ingress_port = in_port;
    packets.push_back(std::move(pkt));
  }

  std::vector<Packet> packets;
};

/// Agent that records hook invocations.
class RecordingAgent final : public SwitchAgent {
 public:
  bool on_ingress(Switch& sw, Packet& pkt, PipelineContext& ctx) override {
    (void)sw; (void)ctx;
    ++ingress_count;
    if (consume_kind && pkt.kind == *consume_kind) {
      ++consumed;
      return false;
    }
    return true;
  }
  void on_pipeline_drop(Switch&, const Packet&, const PipelineContext& ctx) override {
    pipeline_drops.push_back(ctx);
  }
  void on_mmu_drop(Switch&, const Packet&, const PipelineContext& ctx) override {
    mmu_drops.push_back(ctx);
  }
  void on_enqueue(Switch&, const Packet&, const PipelineContext&, bool paused) override {
    ++enqueues;
    paused_enqueues += paused ? 1 : 0;
  }
  void on_egress(Switch&, Packet&, const EgressInfo& info) override {
    egress_infos.push_back(info);
  }
  void on_mac_rx(Switch&, const Packet&, util::PortId, bool corrupted) override {
    ++mac_rx;
    mac_rx_corrupted += corrupted ? 1 : 0;
  }
  void on_pfc_rx(Switch&, const packet::PfcFrame&, util::PortId) override { ++pfc_rx; }
  void on_pfc_tx(Switch&, util::PortId, util::QueueId, bool pause) override {
    pfc_tx_pause += pause ? 1 : 0;
    pfc_tx_resume += pause ? 0 : 1;
  }

  std::optional<packet::PacketKind> consume_kind;
  int ingress_count = 0;
  int consumed = 0;
  int enqueues = 0;
  int paused_enqueues = 0;
  int mac_rx = 0;
  int mac_rx_corrupted = 0;
  int pfc_rx = 0;
  int pfc_tx_pause = 0;
  int pfc_tx_resume = 0;
  std::vector<PipelineContext> pipeline_drops;
  std::vector<PipelineContext> mmu_drops;
  std::vector<EgressInfo> egress_infos;
};

FlowKey flow_to(Ipv4Addr dst, std::uint16_t sport = 1000) {
  return FlowKey{Ipv4Addr::from_octets(10, 0, 0, 1), dst, 6, sport, 80};
}

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest()
      : sw_(sim_, 1, "sw", make_config()), capture_(100, "capture"),
        link_(sim_, util::Rng(9), capture_, 0, util::microseconds(1), sw_.id()) {
    sw_.connect(1, &link_);
    sw_.add_agent(&agent_);
    sw_.routes().insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}, EcmpGroup{{1}});
  }

  static SwitchConfig make_config() {
    SwitchConfig config;
    config.num_ports = 4;
    config.port_rate = util::BitRate::gbps(100);
    config.pipeline_latency = 0;  // keep tests synchronous-ish
    config.mmu.queue_capacity_bytes = 1'000'000;
    return config;
  }

  Packet data_packet(std::uint32_t payload = 1000, std::uint8_t ttl = 64) {
    auto pkt = packet::make_tcp(flow_to(Ipv4Addr::from_octets(10, 0, 1, 5)), payload);
    pkt.ip->ttl = ttl;
    return pkt;
  }

  void deliver_and_run(Packet&& pkt, util::PortId in_port = 0) {
    sw_.receive(std::move(pkt), in_port);
    sim_.run();
  }

  sim::Simulator sim_;
  Switch sw_;
  CaptureNode capture_;
  net::Link link_;
  RecordingAgent agent_;
};

TEST_F(SwitchTest, ForwardsRoutedPacket) {
  deliver_and_run(data_packet());
  ASSERT_EQ(capture_.packets.size(), 1u);
  EXPECT_EQ(capture_.packets[0].ip->ttl, 63);  // decremented
  EXPECT_EQ(sw_.counters(0).rx_packets, 1u);
  EXPECT_EQ(sw_.total_drops(), 0u);
}

TEST_F(SwitchTest, RouteMissDrops) {
  auto pkt = packet::make_tcp(flow_to(Ipv4Addr::from_octets(192, 168, 0, 1)), 100);
  deliver_and_run(std::move(pkt));
  EXPECT_TRUE(capture_.packets.empty());
  EXPECT_EQ(sw_.drops(DropReason::kRouteMiss), 1u);
  ASSERT_EQ(agent_.pipeline_drops.size(), 1u);
  EXPECT_EQ(agent_.pipeline_drops[0].drop, DropReason::kRouteMiss);
  EXPECT_EQ(agent_.pipeline_drops[0].ingress_port, 0);
}

TEST_F(SwitchTest, AclDenyDropsWithRuleId) {
  AclRule rule;
  rule.rule_id = 77;
  rule.dst = Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24};
  rule.permit = false;
  sw_.acl().add_rule(rule);

  deliver_and_run(data_packet());
  EXPECT_TRUE(capture_.packets.empty());
  EXPECT_EQ(sw_.drops(DropReason::kAclDeny), 1u);
  ASSERT_EQ(agent_.pipeline_drops.size(), 1u);
  EXPECT_EQ(agent_.pipeline_drops[0].acl_rule_id, 77);
}

TEST_F(SwitchTest, TtlExpiryDrops) {
  deliver_and_run(data_packet(100, /*ttl=*/1));
  EXPECT_TRUE(capture_.packets.empty());
  EXPECT_EQ(sw_.drops(DropReason::kTtlExpired), 1u);
}

TEST_F(SwitchTest, MtuExceededDrops) {
  deliver_and_run(data_packet(/*payload=*/2000));
  EXPECT_TRUE(capture_.packets.empty());
  EXPECT_EQ(sw_.drops(DropReason::kMtuExceeded), 1u);
}

TEST_F(SwitchTest, MaxMtuPacketForwards) {
  // 1460 payload + 40 headers = exactly 1500 IP bytes.
  deliver_and_run(data_packet(/*payload=*/1460));
  EXPECT_EQ(capture_.packets.size(), 1u);
}

TEST_F(SwitchTest, PortDownDrops) {
  sw_.set_port_up(1, false);
  deliver_and_run(data_packet());
  EXPECT_TRUE(capture_.packets.empty());
  EXPECT_EQ(sw_.drops(DropReason::kPortDown), 1u);
}

TEST_F(SwitchTest, LinkDownDrops) {
  link_.set_up(false);
  deliver_and_run(data_packet());
  EXPECT_TRUE(capture_.packets.empty());
  EXPECT_EQ(sw_.drops(DropReason::kPortDown), 1u);
}

TEST_F(SwitchTest, NonIpDataIsParserError) {
  Packet pkt;
  pkt.uid = packet::next_packet_uid();
  deliver_and_run(std::move(pkt));
  EXPECT_EQ(sw_.drops(DropReason::kParserError), 1u);
}

TEST_F(SwitchTest, CorruptedFrameDiscardedAtMac) {
  auto pkt = data_packet();
  pkt.corrupted = true;
  deliver_and_run(std::move(pkt));
  EXPECT_TRUE(capture_.packets.empty());
  EXPECT_EQ(sw_.counters(0).rx_fcs_errors, 1u);
  EXPECT_EQ(sw_.counters(0).rx_packets, 0u);
  EXPECT_EQ(agent_.mac_rx_corrupted, 1);
  EXPECT_EQ(agent_.ingress_count, 0);  // never reached the pipeline
}

TEST_F(SwitchTest, AgentCanConsumePacket) {
  agent_.consume_kind = packet::PacketKind::kLossNotify;
  auto pkt = data_packet();
  pkt.kind = packet::PacketKind::kLossNotify;
  deliver_and_run(std::move(pkt));
  EXPECT_EQ(agent_.consumed, 1);
  EXPECT_TRUE(capture_.packets.empty());
  EXPECT_EQ(sw_.total_drops(), 0u);
}

TEST_F(SwitchTest, MmuDropWhenQueueFull) {
  // Shrink the queue so back-to-back arrivals overflow it.
  // Capacity 3000 bytes, each frame 1058 bytes -> 2 fit, rest drop
  // (transmission takes ~85ns per frame, arrivals are simultaneous).
  SwitchConfig config = make_config();
  config.mmu.queue_capacity_bytes = 3000;
  Switch small(sim_, 2, "small", config);
  CaptureNode sink(101, "sink");
  net::Link link(sim_, util::Rng(4), sink, 0, util::microseconds(1), small.id());
  small.connect(1, &link);
  RecordingAgent agent;
  small.add_agent(&agent);
  small.routes().insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24}, EcmpGroup{{1}});

  for (int i = 0; i < 10; ++i) small.receive(data_packet(), 0);
  sim_.run();

  EXPECT_GT(small.drops(DropReason::kCongestion), 0u);
  EXPECT_EQ(agent.mmu_drops.size(), small.drops(DropReason::kCongestion));
  EXPECT_EQ(sink.packets.size() + small.drops(DropReason::kCongestion), 10u);
  EXPECT_EQ(small.counters(1).egress_drops, small.drops(DropReason::kCongestion));
}

TEST_F(SwitchTest, EgressAgentSeesQueueDelayAndPorts) {
  deliver_and_run(data_packet());
  ASSERT_EQ(agent_.egress_infos.size(), 1u);
  EXPECT_EQ(agent_.egress_infos[0].ingress_port, 0);
  EXPECT_EQ(agent_.egress_infos[0].egress_port, 1);
  EXPECT_GE(agent_.egress_infos[0].queue_delay, 0);
}

TEST_F(SwitchTest, QueueDelayGrowsUnderBackup) {
  for (int i = 0; i < 20; ++i) sw_.receive(data_packet(), 0);
  sim_.run();
  ASSERT_EQ(agent_.egress_infos.size(), 20u);
  // Later packets waited behind earlier ones: ~85ns per 1058B at 100G.
  EXPECT_GT(agent_.egress_infos.back().queue_delay, agent_.egress_infos[0].queue_delay);
  EXPECT_GT(agent_.egress_infos.back().queue_delay, util::nanoseconds(1000));
}

TEST_F(SwitchTest, PfcFramePausesPortAndNotifiesAgents) {
  sw_.receive(packet::make_pfc(0, 0xffff), /*in_port=*/1);
  sim_.run_until(sim_.now() + 1);  // stay inside the pause window
  EXPECT_EQ(agent_.pfc_rx, 1);
  EXPECT_TRUE(sw_.port(1).is_paused(0));
  EXPECT_FALSE(sw_.port(1).is_paused(1));
}

TEST_F(SwitchTest, PfcResumeUnpauses) {
  sw_.receive(packet::make_pfc(0, 0xffff), 1);
  sim_.run_until(sim_.now() + 1);
  ASSERT_TRUE(sw_.port(1).is_paused(0));
  sw_.receive(packet::make_pfc(0, 0), 1);
  sim_.run_until(sim_.now() + 1);
  EXPECT_FALSE(sw_.port(1).is_paused(0));
}

TEST_F(SwitchTest, GeneratesPauseWhenXoffCrossed) {
  SwitchConfig config = make_config();
  config.mmu.queue_capacity_bytes = 1'000'000;
  config.mmu.pfc_xoff_bytes = 3000;
  config.mmu.pfc_xon_bytes = 1000;
  Switch pfc_switch(sim_, 3, "pfc", config);
  CaptureNode sink(102, "sink");
  CaptureNode upstream(103, "upstream");
  net::Link out(sim_, util::Rng(4), sink, 0, util::microseconds(1), pfc_switch.id());
  net::Link back(sim_, util::Rng(5), upstream, 0, util::microseconds(1), pfc_switch.id());
  pfc_switch.connect(1, &out);
  pfc_switch.connect(0, &back);  // ingress port 0's reverse direction
  RecordingAgent agent;
  pfc_switch.add_agent(&agent);
  pfc_switch.routes().insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 1, 0), 24},
                             EcmpGroup{{1}});

  for (int i = 0; i < 8; ++i) pfc_switch.receive(data_packet(), 0);
  sim_.run();

  EXPECT_GE(agent.pfc_tx_pause, 1);
  // The upstream capture node received at least one PFC frame.
  int pfc_frames = 0;
  for (const auto& pkt : upstream.packets) pfc_frames += (pkt.kind == packet::PacketKind::kPfc);
  EXPECT_GE(pfc_frames, 1);
  // Drain eventually triggers resume.
  EXPECT_GE(agent.pfc_tx_resume, 1);
}

TEST_F(SwitchTest, EnqueueToPausedQueueReported) {
  // Pause egress port 1 class 0, then forward a packet into it.
  sw_.receive(packet::make_pfc(0, 0xffff), 1);
  sw_.receive(data_packet(), 0);
  sim_.run_until(util::microseconds(1));
  EXPECT_EQ(agent_.paused_enqueues, 1);
}

TEST_F(SwitchTest, InjectBypassesPipeline) {
  auto pkt = data_packet(100, /*ttl=*/1);  // would be dropped by the pipeline
  pkt.kind = packet::PacketKind::kLossNotify;
  sw_.inject(std::move(pkt), 1, 7);
  sim_.run();
  ASSERT_EQ(capture_.packets.size(), 1u);
  EXPECT_EQ(capture_.packets[0].kind, packet::PacketKind::kLossNotify);
  EXPECT_EQ(sw_.total_drops(), 0u);
}

TEST_F(SwitchTest, EcmpSpreadsFlows) {
  sw_.routes().insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 2, 0), 24},
                      EcmpGroup{{1, 2, 3}});
  CaptureNode sink2(104, "s2"), sink3(105, "s3");
  net::Link l2(sim_, util::Rng(6), sink2, 0, util::microseconds(1), sw_.id());
  net::Link l3(sim_, util::Rng(7), sink3, 0, util::microseconds(1), sw_.id());
  sw_.connect(2, &l2);
  sw_.connect(3, &l3);

  for (std::uint16_t s = 0; s < 300; ++s) {
    auto pkt = packet::make_tcp(flow_to(Ipv4Addr::from_octets(10, 0, 2, 9), s), 100);
    sw_.receive(std::move(pkt), 0);
  }
  sim_.run();
  const auto n1 = capture_.packets.size();
  const auto n2 = sink2.packets.size();
  const auto n3 = sink3.packets.size();
  EXPECT_EQ(n1 + n2 + n3, 300u);
  EXPECT_GT(n1, 50u);
  EXPECT_GT(n2, 50u);
  EXPECT_GT(n3, 50u);
}

TEST_F(SwitchTest, SameFlowStaysOnOnePath) {
  sw_.routes().insert(Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 2, 0), 24},
                      EcmpGroup{{1, 2, 3}});
  CaptureNode sink2(104, "s2"), sink3(105, "s3");
  net::Link l2(sim_, util::Rng(6), sink2, 0, util::microseconds(1), sw_.id());
  net::Link l3(sim_, util::Rng(7), sink3, 0, util::microseconds(1), sw_.id());
  sw_.connect(2, &l2);
  sw_.connect(3, &l3);

  for (int i = 0; i < 50; ++i) {
    auto pkt = packet::make_tcp(flow_to(Ipv4Addr::from_octets(10, 0, 2, 9), 555), 100);
    sw_.receive(std::move(pkt), 0);
  }
  sim_.run();
  // All 50 packets must exit the same port.
  const std::size_t max_count =
      std::max({capture_.packets.size(), sink2.packets.size(), sink3.packets.size()});
  EXPECT_EQ(max_count, 50u);
}

}  // namespace
}  // namespace netseer::pdp
