#include "pdp/mmu.h"

#include <gtest/gtest.h>

namespace netseer::pdp {
namespace {

MmuConfig pfc_config() {
  MmuConfig config;
  config.queue_capacity_bytes = 10'000;
  config.pfc_xoff_bytes = 5'000;
  config.pfc_xon_bytes = 2'000;
  return config;
}

TEST(Mmu, AdmitWithinCapacity) {
  Mmu mmu(MmuConfig{.queue_capacity_bytes = 1000}, 4);
  EXPECT_TRUE(mmu.admit(0, 1000));
  EXPECT_TRUE(mmu.admit(500, 500));
  EXPECT_FALSE(mmu.admit(500, 501));
  EXPECT_FALSE(mmu.admit(1000, 1));
}

TEST(Mmu, NoPfcWhenDisabled) {
  Mmu mmu(MmuConfig{.queue_capacity_bytes = 1000, .pfc_xoff_bytes = 0}, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mmu.on_enqueue(1, 0, 1500), Mmu::PfcAction::kNone);
  }
}

TEST(Mmu, PauseOnXoffCrossing) {
  Mmu mmu(pfc_config(), 4);
  EXPECT_EQ(mmu.on_enqueue(1, 3, 4000), Mmu::PfcAction::kNone);
  EXPECT_EQ(mmu.on_enqueue(1, 3, 1500), Mmu::PfcAction::kPause);  // crosses 5000
  // Already paused: no repeated pause.
  EXPECT_EQ(mmu.on_enqueue(1, 3, 1500), Mmu::PfcAction::kNone);
  EXPECT_TRUE(mmu.upstream_paused(1, 3));
}

TEST(Mmu, ResumeOnXonCrossing) {
  Mmu mmu(pfc_config(), 4);
  (void)mmu.on_enqueue(1, 3, 6000);
  EXPECT_TRUE(mmu.upstream_paused(1, 3));
  EXPECT_EQ(mmu.on_dequeue(1, 3, 3000), Mmu::PfcAction::kNone);   // 3000 > xon
  EXPECT_EQ(mmu.on_dequeue(1, 3, 1500), Mmu::PfcAction::kResume); // 1500 <= 2000
  EXPECT_FALSE(mmu.upstream_paused(1, 3));
}

TEST(Mmu, PerPortClassIsolation) {
  Mmu mmu(pfc_config(), 4);
  (void)mmu.on_enqueue(1, 3, 6000);
  EXPECT_TRUE(mmu.upstream_paused(1, 3));
  EXPECT_FALSE(mmu.upstream_paused(1, 2));
  EXPECT_FALSE(mmu.upstream_paused(2, 3));
  EXPECT_EQ(mmu.ingress_usage(1, 3), 6000);
  EXPECT_EQ(mmu.ingress_usage(2, 3), 0);
}

TEST(Mmu, InvalidIngressIgnored) {
  Mmu mmu(pfc_config(), 4);
  EXPECT_EQ(mmu.on_enqueue(util::kInvalidPort, 0, 100000), Mmu::PfcAction::kNone);
  EXPECT_EQ(mmu.on_dequeue(util::kInvalidPort, 0, 100000), Mmu::PfcAction::kNone);
}

TEST(Mmu, UsageNeverNegative) {
  Mmu mmu(pfc_config(), 4);
  (void)mmu.on_dequeue(1, 0, 5000);
  EXPECT_EQ(mmu.ingress_usage(1, 0), 0);
}

TEST(Mmu, RepausesAfterResume) {
  Mmu mmu(pfc_config(), 4);
  EXPECT_EQ(mmu.on_enqueue(0, 0, 6000), Mmu::PfcAction::kPause);
  EXPECT_EQ(mmu.on_dequeue(0, 0, 6000), Mmu::PfcAction::kResume);
  EXPECT_EQ(mmu.on_enqueue(0, 0, 6000), Mmu::PfcAction::kPause);
}

}  // namespace
}  // namespace netseer::pdp
