// lock-blocking fixture: a condition-variable wait may hold only its own
// lock; a second lock held across the wait starves every other waiter.
// Run with --pass lock-blocking (the raw std primitives here are the
// raw-sync pass's business, exercised by raw_mutex.cpp instead).
#include <condition_variable>
#include <mutex>

namespace fixture {

class Pipe {
 public:
  void wait_ok() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock);
  }

  void wait_deadlock_prone() {
    std::unique_lock<std::mutex> outer(reg_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock);  // LINT-EXPECT: lock-blocking
  }

 private:
  std::mutex mu_;
  std::mutex reg_mu_;
  std::condition_variable cv_;
};

}  // namespace fixture
