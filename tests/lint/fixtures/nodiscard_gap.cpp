// nodiscard fixture: status booleans (try_/save/load/sync/commit/...) and
// resource-handle returns must be [[nodiscard]] in first-party code.
#include <cstdint>

namespace fixture {

struct TaskHandle {
  std::uint64_t id = 0;
};

class Wal {
 public:
  bool try_reserve(std::uint32_t bytes);  // LINT-EXPECT: nodiscard
  bool sync();                            // LINT-EXPECT: nodiscard
  [[nodiscard]] bool try_append(const char* rec, std::uint32_t len);
  void clear();  // returns nothing: fine
};

// The attribute lives on the declaration; an out-of-line definition is
// never re-flagged.
inline bool Wal::sync() { return true; }

TaskHandle schedule_probe();  // LINT-EXPECT: nodiscard

}  // namespace fixture
