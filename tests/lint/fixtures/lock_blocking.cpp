// lock-blocking fixture: a blocking primitive under a held lock must be
// flagged unless the function is NETSEER_BLOCKING by design.
#include <cstdio>

#include "util/annotations.h"
#include "util/sync.h"

namespace fixture {

class Journal {
 public:
  void flush_unsafe() {
    util::MutexLock lock(mu_);
    fflush(out_);  // LINT-EXPECT: lock-blocking
  }

  // Annotated: blocking under the lock is this function's contract.
  NETSEER_BLOCKING void flush_by_design() {
    util::MutexLock lock(mu_);
    fflush(out_);
  }

  // No lock held: blocking is allowed (the caller's problem, not ours).
  void flush_unlocked() { fflush(out_); }

 private:
  util::Mutex mu_;
  std::FILE* out_ = nullptr;
};

}  // namespace fixture
