// hot-alloc fixture: the allocation sits one helper down the same-TU call
// graph; the finding anchors at the hot caller's call site with chain
// evidence. NETSEER_HOT_ALLOW_INIT on the callee is the escape hatch.
#include <string>

#include "util/annotations.h"

namespace fixture {

inline std::string label(int v) { return std::to_string(v); }

NETSEER_HOT inline void record(int v) {
  label(v);  // LINT-EXPECT: hot-alloc
}

// Documented cold path: an ALLOW_INIT callee never taints its hot caller.
NETSEER_HOT_ALLOW_INIT inline void warm_up(int v) { label(v); }

NETSEER_HOT inline void record_warm(int v) { warm_up(v); }

}  // namespace fixture
