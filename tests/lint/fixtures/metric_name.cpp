// metric-name fixture: telemetry literals must follow [a-z][a-z0-9_]*
// subsystems and lowercase dotted metric names.
namespace fixture {

template <typename Registry>
void register_metrics(Registry& reg) {
  reg.counter("Packet", "drops").add(1);        // LINT-EXPECT: metric-name
  reg.counter("packet", "Drop.Count").add(1);   // LINT-EXPECT: metric-name
  reg.gauge("packet", "queue..depth").set(0);   // LINT-EXPECT: metric-name
  reg.histogram("packet", "lat_us", 64).record(1);
  reg.counter("packet", "drops_total").add(1);
}

}  // namespace fixture
