// Clean fixture: hot paths fenced with the documented escape hatches.
// No LINT-EXPECT markers, so --check-expectations demands zero findings —
// this is the regression gate for every suppression mechanism at once.
#include <vector>

#include "util/annotations.h"

namespace fixture {

class Pool {
 public:
  NETSEER_HOT int* acquire() {
    if (!free_.empty()) {
      int* slot = free_.back();
      free_.pop_back();
      return slot;
    }
    return materialize_slot();
  }

  // Cold path carved out of the hot function: growth happens here, behind
  // the ALLOW_INIT escape hatch, never on the steady-state path.
  NETSEER_HOT_ALLOW_INIT int* materialize_slot() {
    chunks_.push_back(new int[64]);
    return chunks_.back();
  }

  NETSEER_HOT void release(int* slot) {
    // NETSEER_LINT_ALLOW(hot-alloc): free-list push reuses steady-state
    // capacity; growth is bounded by the in-flight population.
    free_.push_back(slot);
  }

 private:
  std::vector<int*> chunks_;
  std::vector<int*> free_;
};

}  // namespace fixture
