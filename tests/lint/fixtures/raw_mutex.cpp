// raw-sync fixture: raw standard-library synchronization in first-party
// code. util::Mutex keeps thread-safety analysis and the mc shim in the
// loop; mc_shim::atomic keeps model-checked sources explorable.
#include <atomic>
#include <mutex>

namespace fixture {

class Queue {
 public:
  void push(int v);

 private:
  std::mutex mu_;               // LINT-EXPECT: raw-sync
  std::atomic<int> depth_{0};   // LINT-EXPECT: raw-sync
};

}  // namespace fixture
