// hot-alloc fixture: direct allocations inside NETSEER_HOT bodies. Each
// LINT-EXPECT marks the exact line the pass must anchor its finding to.
#include <cstring>
#include <vector>

#include "util/annotations.h"

namespace fixture {

struct Ring {
  NETSEER_HOT void push(int v) {
    slots_.push_back(v);  // LINT-EXPECT: hot-alloc
  }

  NETSEER_HOT int* scratch() {
    return new int[16];  // LINT-EXPECT: hot-alloc
  }

  NETSEER_HOT char* dup(const char* s) {
    return strdup(s);  // LINT-EXPECT: hot-alloc
  }

  // Not annotated: the same allocation draws no finding.
  void push_cold(int v) { slots_.push_back(v); }

  std::vector<int> slots_;
};

}  // namespace fixture
