// Unit tests for the netseer_lint engine: the token lexer, the file-model
// builder (functions, annotations, lock scopes, comment markers), and the
// five passes run over synthetic sources. The fixture suite (fixtures/,
// driven through the CLI in --check-expectations mode) covers the
// end-to-end diagnostics; these tests pin the layer contracts underneath.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lexer.h"
#include "model.h"
#include "passes.h"

namespace netseer::lint {
namespace {

FileModel model_of(const std::string& path, const std::string& source) {
  return build_model(TokenStream::lex(path, source));
}

std::vector<Finding> lint(const std::string& path, const std::string& source,
                          bool fixture_mode = true) {
  PassOptions opt;
  opt.fixture_mode = fixture_mode;
  std::vector<FileModel> files;
  files.push_back(model_of(path, source));
  return run_passes(files, opt);
}

const FunctionModel* find_fn(const FileModel& m, const std::string& name) {
  for (const FunctionModel& fn : m.functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

// ---- lexer -----------------------------------------------------------------

TEST(LintLexer, TokenKindsAndLines) {
  const TokenStream s = TokenStream::lex("t.cpp", "int x = 42;\nconst char* s = \"hi\";\n");
  ASSERT_GE(s.tokens().size(), 5u);
  EXPECT_EQ(s.tokens()[0].kind, TokKind::kIdent);
  EXPECT_EQ(s.tokens()[0].text, "int");
  EXPECT_EQ(s.tokens()[0].line, 1);
  bool saw_number = false;
  bool saw_string = false;
  for (const Token& t : s.tokens()) {
    if (t.kind == TokKind::kNumber && t.text == "42") saw_number = true;
    if (t.kind == TokKind::kString && t.line == 2) saw_string = true;
  }
  EXPECT_TRUE(saw_number);
  EXPECT_TRUE(saw_string);
}

TEST(LintLexer, CommentsLiftedToSideTable) {
  const TokenStream s =
      TokenStream::lex("t.cpp", "// whole line\nint x;  // trailing\n/* block */ int y;\n");
  ASSERT_EQ(s.comments().size(), 3u);
  EXPECT_TRUE(s.comments()[0].whole_line);
  EXPECT_EQ(s.comments()[0].line, 1);
  EXPECT_FALSE(s.comments()[1].whole_line);
  EXPECT_EQ(s.comments()[1].line, 2);
  // No comment text leaks into the token stream.
  for (const Token& t : s.tokens()) {
    EXPECT_EQ(t.text.find("whole"), std::string_view::npos);
  }
}

TEST(LintLexer, PreprocessorIsOneTokenPerLine) {
  const TokenStream s = TokenStream::lex("t.cpp", "#include \"util/sync.h\"\nint x;\n");
  ASSERT_FALSE(s.tokens().empty());
  EXPECT_EQ(s.tokens()[0].kind, TokKind::kPreproc);
  EXPECT_NE(s.tokens()[0].text.find("util/sync.h"), std::string_view::npos);
}

// ---- model builder ---------------------------------------------------------

TEST(LintModel, FunctionIdentityAndScopes) {
  const FileModel m = model_of("src/t.h",
                               "namespace net {\n"
                               "class Engine {\n"
                               " public:\n"
                               "  bool try_start(int n);\n"
                               "};\n"
                               "bool Engine::try_start(int n) { return n > 0; }\n"
                               "}  // namespace net\n");
  ASSERT_EQ(m.functions.size(), 2u);
  EXPECT_EQ(m.functions[0].qualified, "net::Engine::try_start");
  EXPECT_FALSE(m.functions[0].is_definition);
  EXPECT_EQ(m.functions[0].return_type, "bool");
  EXPECT_TRUE(m.functions[1].is_definition);
  EXPECT_TRUE(m.functions[1].has_explicit_qualifier);
  EXPECT_EQ(m.functions[1].qualified, "net::Engine::try_start");
}

TEST(LintModel, AnnotationsAndAllocFacts) {
  const FileModel m = model_of("src/t.h",
                               "NETSEER_HOT void fast() {\n"
                               "  buf.push_back(1);\n"
                               "  char* p = strdup(\"x\");\n"
                               "}\n"
                               "NETSEER_HOT_ALLOW_INIT void warm() { buf.reserve(8); }\n"
                               "NETSEER_BLOCKING [[nodiscard]] bool sync_all();\n");
  const FunctionModel* fast = find_fn(m, "fast");
  ASSERT_NE(fast, nullptr);
  EXPECT_TRUE(fast->hot);
  ASSERT_EQ(fast->allocs.size(), 2u);
  EXPECT_EQ(fast->allocs[0].what, ".push_back");
  EXPECT_EQ(fast->allocs[0].line, 2);
  EXPECT_EQ(fast->allocs[1].what, "strdup");
  const FunctionModel* warm = find_fn(m, "warm");
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->allow_init);
  const FunctionModel* sync_all = find_fn(m, "sync_all");
  ASSERT_NE(sync_all, nullptr);
  EXPECT_TRUE(sync_all->blocking);
  EXPECT_TRUE(sync_all->nodiscard);
}

TEST(LintModel, LockScopesCountAtCallSites) {
  const FileModel m = model_of("src/t.cpp",
                               "void f() {\n"
                               "  fsync(fd);\n"          // no lock
                               "  MutexLock lock(mu_);\n"
                               "  fsync(fd);\n"          // one lock
                               "  {\n"
                               "    std::unique_lock<std::mutex> l2(m2_);\n"
                               "    fsync(fd);\n"        // two locks
                               "  }\n"
                               "  fsync(fd);\n"          // inner scope closed: one lock
                               "}\n");
  const FunctionModel* f = find_fn(m, "f");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->blocking_ops.size(), 4u);
  EXPECT_EQ(f->blocking_ops[0].locks, 0);
  EXPECT_EQ(f->blocking_ops[1].locks, 1);
  EXPECT_EQ(f->blocking_ops[2].locks, 2);
  EXPECT_EQ(f->blocking_ops[3].locks, 1);
}

TEST(LintModel, SuppressionCoversCommentBlockTarget) {
  // A whole-line ALLOW governs the first code line after the comment
  // block, even with further justification lines in between.
  const FileModel m = model_of("src/t.cpp",
                               "void f() {\n"
                               "  // NETSEER_LINT_ALLOW(hot-alloc): growth is bounded\n"
                               "  // by the steady-state population.\n"
                               "  free_.push_back(p);\n"
                               "}\n");
  EXPECT_TRUE(is_suppressed(m, 4, "hot-alloc"));
  const FunctionModel* f = find_fn(m, "f");
  ASSERT_NE(f, nullptr);
  // The suppressed fact never reaches the model.
  EXPECT_TRUE(f->allocs.empty());
}

TEST(LintModel, ExpectationMarkersParse) {
  const FileModel m = model_of("t.cpp",
                               "// LINT-EXPECT: nodiscard\n"
                               "bool try_go();\n"
                               "bool sync();  // LINT-EXPECT: nodiscard\n");
  ASSERT_EQ(m.expectations.size(), 2u);
  EXPECT_EQ(m.expectations.count(2), 1u);  // whole-line marker targets next line
  EXPECT_EQ(m.expectations.count(3), 1u);  // trailing marker targets its own line
}

// ---- passes ----------------------------------------------------------------

TEST(LintPasses, HotAllocFlagsDirectAndChained) {
  const std::vector<Finding> fs = lint("t.cpp",
                                       "std::string helper(int v) { return std::to_string(v); }\n"
                                       "NETSEER_HOT void hot_direct() { buf.push_back(1); }\n"
                                       "NETSEER_HOT void hot_chain() { helper(2); }\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].pass, "hot-alloc");
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[1].line, 3);
  EXPECT_NE(fs[1].message.find("helper()"), std::string::npos);
}

TEST(LintPasses, HotAllocCleanCalleeStaysQuiet) {
  const std::vector<Finding> fs = lint("t.cpp",
                                       "int helper(int v) { return v + 1; }\n"
                                       "NETSEER_HOT int hot_fn(int v) { return helper(v); }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintPasses, HotAllocAllowInitEscapeHatch) {
  const std::vector<Finding> fs =
      lint("t.cpp",
           "NETSEER_HOT_ALLOW_INIT void grow() { buf.push_back(1); }\n"
           "NETSEER_HOT void hot_fn() { grow(); }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintPasses, LockBlockingRequiresAnnotation) {
  const std::vector<Finding> bad = lint("t.cpp",
                                        "void f() {\n"
                                        "  MutexLock lock(mu_);\n"
                                        "  fsync(fd);\n"
                                        "}\n");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].pass, "lock-blocking");
  EXPECT_EQ(bad[0].line, 3);

  const std::vector<Finding> ok = lint("t.cpp",
                                       "NETSEER_BLOCKING void f() {\n"
                                       "  MutexLock lock(mu_);\n"
                                       "  fsync(fd);\n"
                                       "}\n");
  EXPECT_TRUE(ok.empty());
}

TEST(LintPasses, CvWaitMayHoldOnlyItsOwnLock) {
  const std::vector<Finding> ok = lint("t.cpp",
                                       "void f() {\n"
                                       "  std::unique_lock<std::mutex> l(mu_);\n"
                                       "  cv_.wait(l);\n"
                                       "}\n",
                                       /*fixture_mode=*/false);
  EXPECT_TRUE(ok.empty());

  const std::vector<Finding> bad = lint("t.cpp",
                                        "void f() {\n"
                                        "  MutexLock outer(a_);\n"
                                        "  std::unique_lock<std::mutex> l(mu_);\n"
                                        "  cv_.wait(l);\n"
                                        "}\n",
                                        /*fixture_mode=*/false);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].pass, "lock-blocking");
  EXPECT_EQ(bad[0].line, 4);
}

TEST(LintPasses, NodiscardDeclarationCoversDefinition) {
  const std::vector<Finding> fs = lint("src/t.h",
                                       "class W {\n"
                                       " public:\n"
                                       "  [[nodiscard]] bool sync();\n"
                                       "  bool try_push(int v);\n"
                                       "};\n"
                                       "bool W::sync() { return true; }\n",
                                       /*fixture_mode=*/false);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].pass, "nodiscard");
  EXPECT_EQ(fs[0].line, 4);  // try_push, not the out-of-line sync definition
}

TEST(LintPasses, NodiscardOnlyAppliesToSrc) {
  const std::vector<Finding> fs =
      lint("tests/t.cpp", "bool try_push(int v);\n", /*fixture_mode=*/false);
  EXPECT_TRUE(fs.empty());
}

TEST(LintPasses, MetricNameConvention) {
  const std::vector<Finding> fs = lint("t.cpp",
                                       "void reg_metrics() {\n"
                                       "  reg.counter(\"Packet\", \"drops\").add(1);\n"
                                       "  reg.counter(\"packet\", \"drops.total\").add(1);\n"
                                       "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].pass, "metric-name");
  EXPECT_EQ(fs[0].line, 2);
}

TEST(LintPasses, RawSyncScopedToSrcAndExemptions) {
  const std::string source = "class Q { std::mutex mu_; };\n";
  EXPECT_EQ(lint("src/q.h", source, /*fixture_mode=*/false).size(), 1u);
  EXPECT_TRUE(lint("tests/q.h", source, /*fixture_mode=*/false).empty());
  // util/sync.h wraps std::mutex by design.
  EXPECT_TRUE(lint("src/util/sync.h", source, /*fixture_mode=*/false).empty());
}

TEST(LintPasses, PassSelectionRestrictsOutput) {
  PassOptions opt;
  opt.fixture_mode = true;
  opt.only.insert("metric-name");
  std::vector<FileModel> files;
  files.push_back(model_of("t.cpp",
                           "class Q { std::mutex mu_; };\n"
                           "void f() { reg.counter(\"Bad.Sub\", \"x\").add(1); }\n"));
  const std::vector<Finding> fs = run_passes(files, opt);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].pass, "metric-name");
}

TEST(LintPasses, AnnotationsMergeAcrossFilesByQualifiedName) {
  // NETSEER_BLOCKING on the header declaration covers the out-of-line
  // definition in another TU, and makes calls to it under a lock flagged.
  std::vector<FileModel> files;
  files.push_back(model_of("src/w.h",
                           "class W {\n"
                           " public:\n"
                           "  NETSEER_BLOCKING [[nodiscard]] bool sync();\n"
                           "};\n"));
  files.push_back(model_of("src/u.cpp",
                           "void f() {\n"
                           "  MutexLock lock(mu_);\n"
                           "  (void)wal_.sync();\n"
                           "}\n"));
  PassOptions opt;
  const std::vector<Finding> fs = run_passes(files, opt);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].pass, "lock-blocking");
  EXPECT_EQ(fs[0].file, "src/u.cpp");
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_NE(fs[0].message.find("NETSEER_BLOCKING"), std::string::npos);
}

TEST(LintPasses, FindingsAreSortedAndSuppressible) {
  const std::vector<Finding> fs = lint("t.cpp",
                                       "NETSEER_HOT void b() { buf.push_back(1); }\n"
                                       "// NETSEER_LINT_ALLOW(hot-alloc): fixture\n"
                                       "NETSEER_HOT void a() { buf.push_back(1); }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 1);
}

}  // namespace
}  // namespace netseer::lint
