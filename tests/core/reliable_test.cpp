#include "core/reliable.h"

#include <gtest/gtest.h>

#include "backend/collector.h"
#include "backend/event_store.h"

namespace netseer::core {
namespace {

packet::FlowKey flow(std::uint16_t sport) {
  return packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                         packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, sport, 80};
}

EventBatch batch_of(std::uint16_t sport, std::size_t n = 1) {
  EventBatch batch;
  batch.switch_id = 1;
  for (std::size_t i = 0; i < n; ++i) {
    batch.events.push_back(make_event(EventType::kDrop, flow(sport), 1, 0));
  }
  return batch;
}

struct Rig {
  explicit Rig(double loss = 0.0)
      : channel(sim, util::Rng(7), util::milliseconds(1), loss),
        collector(sim, /*id=*/100, channel, store),
        reporter(sim, channel, /*self=*/1, /*backend=*/100) {
    channel.register_endpoint(1, [this](util::NodeId, const ReportMsg& msg) {
      reporter.on_message(msg);
    });
  }
  sim::Simulator sim;
  ReportChannel channel;
  backend::EventStore store;
  backend::Collector collector;
  ReliableReporter reporter;
};

TEST(ReliableReporter, DeliversOverCleanChannel) {
  Rig rig;
  for (std::uint16_t s = 0; s < 10; ++s) rig.reporter.submit(batch_of(s));
  rig.sim.run();
  EXPECT_EQ(rig.store.size(), 10u);
  EXPECT_TRUE(rig.reporter.idle());
  EXPECT_EQ(rig.reporter.retransmits(), 0u);
}

TEST(ReliableReporter, SurvivesHeavyLoss) {
  Rig rig(/*loss=*/0.3);
  for (std::uint16_t s = 0; s < 50; ++s) rig.reporter.submit(batch_of(s, 3));
  rig.sim.run_until(util::seconds(10));
  EXPECT_EQ(rig.store.size(), 150u);
  EXPECT_TRUE(rig.reporter.idle());
  EXPECT_GT(rig.reporter.retransmits(), 0u);
}

TEST(ReliableReporter, NoDuplicateStorageUnderRetransmits) {
  Rig rig(/*loss=*/0.5);
  rig.reporter.submit(batch_of(1));
  rig.sim.run_until(util::seconds(10));
  // Acks get lost too -> data retransmitted -> collector must dedup.
  EXPECT_EQ(rig.store.size(), 1u);
}

TEST(ReliableReporter, WindowLimitsInflight) {
  Rig rig(/*loss=*/1.0);  // nothing gets through
  for (std::uint16_t s = 0; s < 100; ++s) rig.reporter.submit(batch_of(s));
  EXPECT_EQ(rig.reporter.backlog(), 100u);
  rig.sim.run_until(util::milliseconds(5));
  // Only the window's worth has been transmitted.
  EXPECT_LE(rig.reporter.segments_sent(), 32u);
}

TEST(ReliableReporter, OrderedDeliveryPerSwitchIsNotRequired) {
  // Loss reorders arrival; the store still ends with every event exactly
  // once.
  Rig rig(/*loss=*/0.4);
  for (std::uint16_t s = 0; s < 30; ++s) rig.reporter.submit(batch_of(s));
  rig.sim.run_until(util::seconds(10));
  EXPECT_EQ(rig.store.size(), 30u);
  // Each flow present exactly once.
  for (std::uint16_t s = 0; s < 30; ++s) {
    backend::EventQuery query;
    query.flow = flow(s);
    EXPECT_EQ(rig.store.query(query).size(), 1u) << s;
  }
}

TEST(Collector, TracksDuplicates) {
  Rig rig(/*loss=*/0.6);
  rig.reporter.submit(batch_of(1));
  rig.sim.run_until(util::seconds(10));
  EXPECT_EQ(rig.collector.segments_received(),
            rig.collector.duplicate_segments() + 1);
}

TEST(Collector, MultipleReportersIsolated) {
  Rig rig;
  ReliableReporter second(rig.sim, rig.channel, /*self=*/2, /*backend=*/100);
  rig.channel.register_endpoint(2, [&](util::NodeId, const ReportMsg& msg) {
    second.on_message(msg);
  });
  rig.reporter.submit(batch_of(1));
  auto b = batch_of(2);
  b.switch_id = 2;
  second.submit(std::move(b));
  rig.sim.run();
  EXPECT_EQ(rig.store.size(), 2u);
}

TEST(ReliableReporter, PacingSpreadsSends) {
  sim::Simulator sim;
  ReportChannel channel(sim, util::Rng(7), util::milliseconds(1), 0.0);
  backend::EventStore store;
  backend::Collector collector(sim, 100, channel, store);
  ReliableReporterConfig config;
  config.pacing_rate = util::BitRate::kbps(100);  // very slow
  config.pacing_burst = 100;
  ReliableReporter reporter(sim, channel, 1, 100, config);
  channel.register_endpoint(1, [&](util::NodeId, const ReportMsg& msg) {
    reporter.on_message(msg);
  });
  for (std::uint16_t s = 0; s < 5; ++s) reporter.submit(batch_of(s, 10));
  sim.run_until(util::seconds(120));
  EXPECT_EQ(store.size(), 50u);
  // 5 segments of ~290 B at 100 kb/s: takes on the order of 100 ms.
  EXPECT_GT(sim.events_processed(), 10u);
}

}  // namespace
}  // namespace netseer::core
