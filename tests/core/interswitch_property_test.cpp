// Property tests of the inter-switch drop-detection protocol under
// randomized loss patterns, swept over ring sizes and loss rates.
// Invariants (§3.3): (1) with an adequately sized ring, every loss is
// recovered with the RIGHT flow; (2) with any ring, a recovered flow is
// never wrong; (3) duplicate notifications never double-report.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "core/detect/interswitch.h"
#include "packet/builder.h"
#include "util/rng.h"

namespace netseer::core {
namespace {

struct Params {
  std::size_t ring_slots;
  double loss_prob;
  int packets;
  int notify_delay_packets;  // deliveries between gap detection and notification
};

class InterSwitchProperty : public ::testing::TestWithParam<Params> {};

TEST_P(InterSwitchProperty, RecoversExactlyTheLostFlows) {
  const auto params = GetParam();
  InterSwitchConfig config;
  config.ring_slots = params.ring_slots;
  InterSwitchTx tx(config);
  InterSwitchRx rx(config);
  util::Rng rng(static_cast<std::uint64_t>(params.ring_slots * 1000 +
                                           params.loss_prob * 100 + params.packets));

  std::map<std::uint32_t, std::uint16_t> lost;  // seq -> sport of the lost packet
  std::unordered_map<std::uint16_t, int> recovered_per_flow;
  int wrong_recoveries = 0;

  const auto emit = [&](const packet::FlowKey& flow, std::uint32_t seq) {
    const auto it = lost.find(seq);
    if (it == lost.end() || it->second != flow.sport) {
      ++wrong_recoveries;
    } else {
      ++recovered_per_flow[flow.sport];
      lost.erase(it);
    }
  };

  std::vector<InterSwitchRx::Gap> pending_gaps;
  int delay_counter = 0;

  for (int i = 0; i < params.packets; ++i) {
    const auto sport = static_cast<std::uint16_t>(rng.uniform(32));
    auto pkt = packet::make_tcp(
        packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                        packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, sport, 80},
        500);
    tx.on_tx(pkt, emit);
    const std::uint32_t seq = *pkt.seq_tag;

    // First packet always delivered so the receiver syncs.
    const bool dropped = i > 0 && rng.chance(params.loss_prob);
    if (dropped) {
      lost.emplace(seq, sport);
      continue;
    }
    if (const auto gap = rx.on_rx(pkt)) pending_gaps.push_back(*gap);

    // Deliver queued notifications after a modeled flight delay,
    // three redundant copies each (§3.3).
    if (++delay_counter >= params.notify_delay_packets && !pending_gaps.empty()) {
      delay_counter = 0;
      const auto gap = pending_gaps.front();
      pending_gaps.erase(pending_gaps.begin());
      for (int copy = 0; copy < 3; ++copy) tx.on_notification(gap.start, gap.end, emit);
    }
  }
  // Flush remaining notifications and pending lookups.
  for (const auto& gap : pending_gaps) tx.on_notification(gap.start, gap.end, emit);
  tx.drain(params.packets, emit);

  // Invariant 2: never a wrong flow, regardless of ring size.
  EXPECT_EQ(wrong_recoveries, 0);

  // Invariant 1: with a comfortably sized ring, every loss the receiver
  // observed as a gap is recovered — no lookup ever misses. (Trailing
  // losses after the final delivery never become a gap; that is §3.3's
  // inherent limit, not a ring failure.)
  if (params.ring_slots >= 4096) {
    EXPECT_EQ(tx.lookup_misses(), 0u);
    EXPECT_EQ(tx.drops_reported(), rx.gap_packets());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InterSwitchProperty,
    ::testing::Values(Params{4096, 0.01, 5000, 8}, Params{4096, 0.10, 5000, 8},
                      Params{4096, 0.40, 3000, 4}, Params{8192, 0.05, 10000, 16},
                      Params{16, 0.05, 3000, 8},  // tiny ring: misses allowed, never wrong
                      Params{4, 0.30, 2000, 2}),
    [](const auto& info) {
      return "ring" + std::to_string(info.param.ring_slots) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss_prob * 100)) + "_n" +
             std::to_string(info.param.packets);
    });

}  // namespace
}  // namespace netseer::core
