#include "core/group_cache.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace netseer::core {
namespace {

packet::FlowKey flow(std::uint16_t sport) {
  return packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                         packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, sport, 80};
}

FlowEvent drop_event(std::uint16_t sport) {
  return make_event(EventType::kDrop, flow(sport), 1, 0);
}

struct Collector {
  std::vector<FlowEvent> events;
  GroupCache::Emit fn() {
    return [this](const FlowEvent& ev) { events.push_back(ev); };
  }
  [[nodiscard]] std::uint64_t total_counter() const {
    std::uint64_t total = 0;
    for (const auto& ev : events) total += ev.counter;
    return total;
  }
};

TEST(GroupCache, FirstPacketAlwaysReported) {
  GroupCache cache(GroupCacheConfig{.entries = 64, .report_interval = 100});
  Collector out;
  cache.offer(drop_event(1), out.fn());
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].counter, 1);
  EXPECT_EQ(out.events[0].flow, flow(1));
}

TEST(GroupCache, RedundantPacketsSuppressed) {
  GroupCache cache(GroupCacheConfig{.entries = 64, .report_interval = 100});
  Collector out;
  for (int i = 0; i < 50; ++i) cache.offer(drop_event(1), out.fn());
  // Only the initial report: 50 < target (100).
  EXPECT_EQ(out.events.size(), 1u);
  EXPECT_EQ(cache.offered(), 50u);
  EXPECT_EQ(cache.reports(), 1u);
}

TEST(GroupCache, CounterReportEveryC) {
  GroupCache cache(GroupCacheConfig{.entries = 64, .report_interval = 10});
  Collector out;
  for (int i = 0; i < 35; ++i) cache.offer(drop_event(1), out.fn());
  // Reports at counts 1 (initial), 10, 20, 30.
  EXPECT_EQ(out.events.size(), 4u);
  // Counters are deltas since the previous report: 1, 9, 10, 10.
  EXPECT_EQ(out.events[0].counter, 1);
  EXPECT_EQ(out.events[1].counter, 9);
  EXPECT_EQ(out.events[2].counter, 10);
  EXPECT_EQ(out.events[3].counter, 10);
}

TEST(GroupCache, FlushRecoversResidualCounts) {
  GroupCache cache(GroupCacheConfig{.entries = 64, .report_interval = 10});
  Collector out;
  for (int i = 0; i < 35; ++i) cache.offer(drop_event(1), out.fn());
  cache.flush(out.fn());
  // Total counters across reports reconcile with offered packets.
  EXPECT_EQ(out.total_counter(), 35u);
}

TEST(GroupCache, ZeroFalseNegativeAcrossManyFlows) {
  // Far more flows than entries: every flow must still be reported at
  // least once (the zero-FN guarantee that motivates group caching over
  // Bloom filters, §3.4).
  GroupCache cache(GroupCacheConfig{.entries = 16, .report_interval = 100});
  Collector out;
  constexpr int kFlows = 500;
  for (int f = 0; f < kFlows; ++f) {
    cache.offer(drop_event(static_cast<std::uint16_t>(f)), out.fn());
  }
  std::unordered_set<packet::FlowKey, packet::FlowKeyHash> reported;
  for (const auto& ev : out.events) reported.insert(ev.flow);
  EXPECT_EQ(reported.size(), kFlows);
}

TEST(GroupCache, EvictionReportsResidual) {
  // Two flows colliding in a 1-entry cache: every eviction must carry the
  // evicted flow's residual count so totals reconcile.
  GroupCache cache(GroupCacheConfig{.entries = 1, .report_interval = 100});
  Collector out;
  for (int i = 0; i < 5; ++i) cache.offer(drop_event(1), out.fn());
  for (int i = 0; i < 3; ++i) cache.offer(drop_event(2), out.fn());
  cache.flush(out.fn());
  std::uint64_t flow1_total = 0, flow2_total = 0;
  for (const auto& ev : out.events) {
    if (ev.flow == flow(1)) flow1_total += ev.counter;
    if (ev.flow == flow(2)) flow2_total += ev.counter;
  }
  EXPECT_EQ(flow1_total, 5u);
  EXPECT_EQ(flow2_total, 3u);
}

TEST(GroupCache, CollisionPingPongProducesFalsePositives) {
  GroupCache cache(GroupCacheConfig{.entries = 1, .report_interval = 1000});
  Collector out;
  // Alternating flows in one slot: each arrival evicts the other.
  for (int i = 0; i < 10; ++i) {
    cache.offer(drop_event(1), out.fn());
    cache.offer(drop_event(2), out.fn());
  }
  // 20 offers, ~20 reports: massive duplication (false positives), but
  // never a miss. This is exactly what the switch CPU cleans up.
  EXPECT_GE(out.events.size(), 19u);
  EXPECT_EQ(cache.evictions(), 19u);
}

TEST(GroupCache, DifferentTypesDoNotAggregate) {
  GroupCache cache(GroupCacheConfig{.entries = 64, .report_interval = 100});
  Collector out;
  cache.offer(drop_event(1), out.fn());
  auto pause = make_event(EventType::kPause, flow(1), 1, 0);
  cache.offer(pause, out.fn());
  // Same flow, different type: second event must also be reported.
  EXPECT_EQ(out.events.size(), 2u);
}

TEST(GroupCache, KeepsFreshestDetail) {
  GroupCache cache(GroupCacheConfig{.entries = 64, .report_interval = 3});
  Collector out;
  auto ev = make_event(EventType::kCongestion, flow(1), 1, 0);
  ev.queue_latency_us = 10;
  cache.offer(ev, out.fn());
  ev.queue_latency_us = 99;
  cache.offer(ev, out.fn());
  cache.offer(ev, out.fn());  // count 3 -> report
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[1].queue_latency_us, 99);
}

TEST(GroupCache, DegenerateZeroEntriesReportsEverything) {
  GroupCache cache(GroupCacheConfig{.entries = 0, .report_interval = 10});
  Collector out;
  for (int i = 0; i < 7; ++i) cache.offer(drop_event(1), out.fn());
  EXPECT_EQ(out.events.size(), 7u);
}

TEST(GroupCache, CounterSaturatesAt16Bits) {
  GroupCache cache(GroupCacheConfig{.entries = 4, .report_interval = 100000});
  Collector out;
  for (int i = 0; i < 70000; ++i) cache.offer(drop_event(1), out.fn());
  cache.flush(out.fn());
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[1].counter, 0xffff);  // saturated residual
}

TEST(GroupCache, ReductionRatioUnderRealisticBurst) {
  // A congestion burst: 20 flows, 1000 packets each. Group caching should
  // eliminate ~95% of reports (the paper's headline dedup number).
  GroupCache cache(GroupCacheConfig{.entries = 1024, .report_interval = 64});
  Collector out;
  for (int round = 0; round < 1000; ++round) {
    for (std::uint16_t f = 0; f < 20; ++f) cache.offer(drop_event(f), out.fn());
  }
  const double reduction = 1.0 - static_cast<double>(out.events.size()) / 20000.0;
  EXPECT_GT(reduction, 0.90);
}

}  // namespace
}  // namespace netseer::core
