// Failure-injection tests of NetSeer's §4 capacity ceilings: when event
// rates exceed the hardware budgets, events are MISSED AND COUNTED —
// never reported wrongly, never crashing the pipeline.
#include <gtest/gtest.h>

#include "backend/collector.h"
#include "backend/event_store.h"
#include "core/netseer_app.h"
#include "core/nic_agent.h"
#include "fabric/network.h"
#include "packet/builder.h"

namespace netseer::core {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;
using packet::Ipv4Prefix;

struct Rig {
  explicit Rig(NetSeerConfig config = {}, pdp::MmuConfig mmu = {})
      : net(7), channel(net.simulator(), util::Rng(3), util::milliseconds(1), 0.0) {
    pdp::SwitchConfig sc;
    sc.num_ports = 4;
    sc.port_rate = util::BitRate::gbps(10);
    sc.mmu = mmu;
    s1 = &net.add_switch("s1", sc);
    h1 = &net.add_host("h1", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(100));
    h2 = &net.add_host("h2", Ipv4Addr::from_octets(10, 0, 1, 1), util::BitRate::gbps(10));
    net.connect_host(*s1, 0, *h1, util::microseconds(1));
    net.connect_host(*s1, 1, *h2, util::microseconds(1));
    net.compute_routes();

    store = std::make_unique<backend::EventStore>();
    collector = std::make_unique<backend::Collector>(net.simulator(), 1000, channel, *store);
    app = std::make_unique<NetSeerApp>(*s1, config, &channel, 1000);
  }

  void finish() {
    net.simulator().run();
    app->flush();
    net.simulator().run();
  }

  fabric::Network net;
  ReportChannel channel;
  pdp::Switch* s1;
  net::Host* h1;
  net::Host* h2;
  std::unique_ptr<backend::EventStore> store;
  std::unique_ptr<backend::Collector> collector;
  std::unique_ptr<NetSeerApp> app;
};

TEST(CapacityLimits, MmuRedirectCeilingMissesAreCounted) {
  // Drop far more than the 40 Gb/s redirect budget in one burst: a 100G
  // sender into a 10G port with tiny queues.
  NetSeerConfig config;
  config.mmu_redirect_rate = util::BitRate::mbps(1);  // absurdly low ceiling
  pdp::MmuConfig mmu;
  mmu.queue_capacity_bytes = 2000;
  Rig rig(config, mmu);

  const FlowKey flow{rig.h1->addr(), rig.h2->addr(), 6, 1000, 80};
  for (int i = 0; i < 2000; ++i) rig.h1->send(packet::make_tcp(flow, 1400));
  rig.finish();

  const auto actual_drops = rig.s1->drops(pdp::DropReason::kCongestion);
  ASSERT_GT(actual_drops, 100u);
  EXPECT_GT(rig.app->missed_mmu_redirects(), 0u);

  // Reported + missed = actual: nothing lost silently, nothing invented.
  std::uint64_t reported = 0;
  for (const auto& stored : rig.store->all()) {
    if (stored.event.type == EventType::kDrop &&
        stored.event.drop_code == static_cast<std::uint8_t>(pdp::DropReason::kCongestion)) {
      reported += stored.event.counter;
    }
  }
  EXPECT_EQ(reported + rig.app->missed_mmu_redirects(), actual_drops);
}

TEST(CapacityLimits, InternalPortBudgetGatesIngressEvents) {
  NetSeerConfig config;
  config.internal_port_rate = util::BitRate::kbps(64);  // tiny internal port
  Rig rig(config);
  // Blackhole the destination: a flood of pipeline-drop event packets.
  ASSERT_TRUE(rig.s1->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  const FlowKey flow{rig.h1->addr(), rig.h2->addr(), 6, 1000, 80};
  for (int i = 0; i < 3000; ++i) rig.h1->send(packet::make_tcp(flow, 1400));
  rig.finish();

  EXPECT_GT(rig.app->missed_internal_port(), 0u);
  // The flow is still reported (the budget passes the first packets).
  backend::EventQuery query;
  query.flow = flow;
  EXPECT_FALSE(rig.store->query(query).empty());
}

TEST(CapacityLimits, EventStackOverflowCountedNotCrashed) {
  NetSeerConfig config;
  config.event_stack_capacity = 4;
  config.group_cache.entries = 0;  // degenerate: report every packet
  // Stall the batcher so the stack cannot drain.
  config.cebp.num_cebps = 1;
  config.cebp.recirc_latency = util::seconds(1);
  Rig rig(config);
  ASSERT_TRUE(rig.s1->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  const FlowKey flow{rig.h1->addr(), rig.h2->addr(), 6, 1000, 80};
  for (int i = 0; i < 500; ++i) rig.h1->send(packet::make_tcp(flow, 400));
  rig.net.simulator().run();
  EXPECT_GT(rig.app->stack().overflows(), 0u);
  EXPECT_LE(rig.app->stack().size(), 4u);
}

TEST(CapacityLimits, DefaultBudgetsAbsorbRealisticBursts) {
  // The paper's point: the ceilings cover ~99% of production situations.
  // A 10G-line-rate drop burst is comfortably under the 40G redirect cap.
  pdp::MmuConfig mmu;
  mmu.queue_capacity_bytes = 3000;
  Rig rig(NetSeerConfig{}, mmu);
  const FlowKey flow{rig.h1->addr(), rig.h2->addr(), 6, 1000, 80};
  for (int i = 0; i < 300; ++i) rig.h1->send(packet::make_tcp(flow, 1400));
  rig.finish();
  EXPECT_GT(rig.s1->drops(pdp::DropReason::kCongestion), 0u);
  EXPECT_EQ(rig.app->missed_mmu_redirects(), 0u);
  EXPECT_EQ(rig.app->missed_internal_port(), 0u);
  EXPECT_EQ(rig.app->stack().overflows(), 0u);
}

}  // namespace
}  // namespace netseer::core
