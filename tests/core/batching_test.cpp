#include <gtest/gtest.h>

#include "core/cebp.h"
#include "core/event_stack.h"
#include "core/pcie.h"

namespace netseer::core {
namespace {

packet::FlowKey flow(std::uint16_t sport) {
  return packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                         packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, sport, 80};
}

FlowEvent ev(std::uint16_t sport) { return make_event(EventType::kDrop, flow(sport), 1, 0); }

TEST(EventStack, PushPopLifo) {
  EventStack stack(10);
  EXPECT_TRUE(stack.push(ev(1)));
  EXPECT_TRUE(stack.push(ev(2)));
  EXPECT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack.pop()->flow.sport, 2);
  EXPECT_EQ(stack.pop()->flow.sport, 1);
  EXPECT_FALSE(stack.pop().has_value());
}

TEST(EventStack, OverflowCountsAndRejects) {
  EventStack stack(2);
  EXPECT_TRUE(stack.push(ev(1)));
  EXPECT_TRUE(stack.push(ev(2)));
  EXPECT_FALSE(stack.push(ev(3)));
  EXPECT_EQ(stack.overflows(), 1u);
  EXPECT_EQ(stack.size(), 2u);
}

TEST(EventStack, HighWatermark) {
  EventStack stack(10);
  for (int i = 0; i < 5; ++i) (void)stack.push(ev(1));
  (void)stack.pop();
  (void)stack.pop();
  EXPECT_EQ(stack.high_watermark(), 5u);
}

struct BatchLog {
  std::vector<EventBatch> batches;
  CebpBatcher::Flush fn() {
    return [this](EventBatch&& b) { batches.push_back(std::move(b)); };
  }
  [[nodiscard]] std::size_t total_events() const {
    std::size_t total = 0;
    for (const auto& b : batches) total += b.events.size();
    return total;
  }
};

CebpConfig small_cebp() {
  CebpConfig config;
  config.num_cebps = 2;
  config.batch_size = 5;
  config.recirc_latency = util::nanoseconds(400);
  config.flush_latency = util::microseconds(2);
  return config;
}

TEST(CebpBatcher, CollectsAndFlushesFullBatch) {
  sim::Simulator sim;
  EventStack stack(100);
  BatchLog log;
  CebpConfig config = small_cebp();
  config.num_cebps = 1;  // single collector -> a single full batch
  CebpBatcher batcher(sim, 7, stack, config, log.fn());

  for (std::uint16_t i = 0; i < 5; ++i) {
    (void)stack.push(ev(i));
    batcher.notify();
  }
  sim.run();
  ASSERT_EQ(log.batches.size(), 1u);
  EXPECT_EQ(log.batches[0].events.size(), 5u);
  EXPECT_EQ(log.batches[0].switch_id, 7u);
  EXPECT_TRUE(stack.empty());
}

TEST(CebpBatcher, PartialFlushWhenStackDrains) {
  sim::Simulator sim;
  EventStack stack(100);
  BatchLog log;
  CebpBatcher batcher(sim, 7, stack, small_cebp(), log.fn());

  (void)stack.push(ev(1));
  (void)stack.push(ev(2));
  batcher.notify();
  sim.run();
  // Fewer than batch_size events: flushed anyway once the stack is empty.
  EXPECT_EQ(log.total_events(), 2u);
}

TEST(CebpBatcher, ManyEventsAllDelivered) {
  sim::Simulator sim;
  EventStack stack(10000);
  BatchLog log;
  CebpBatcher batcher(sim, 7, stack, small_cebp(), log.fn());

  for (std::uint16_t i = 0; i < 1000; ++i) {
    (void)stack.push(ev(i));
    batcher.notify();
  }
  sim.run();
  EXPECT_EQ(log.total_events(), 1000u);
  EXPECT_EQ(stack.size(), 0u);
  // Mostly full batches.
  EXPECT_GE(log.batches.size(), 200u);
}

TEST(CebpBatcher, BatchSeqIncrements) {
  sim::Simulator sim;
  EventStack stack(100);
  BatchLog log;
  CebpBatcher batcher(sim, 7, stack, small_cebp(), log.fn());
  for (std::uint16_t i = 0; i < 20; ++i) {
    (void)stack.push(ev(i));
    batcher.notify();
  }
  sim.run();
  ASSERT_GE(log.batches.size(), 2u);
  for (std::size_t i = 0; i < log.batches.size(); ++i) {
    EXPECT_EQ(log.batches[i].seq, i);
  }
}

TEST(CebpBatcher, WakesAgainAfterIdle) {
  sim::Simulator sim;
  EventStack stack(100);
  BatchLog log;
  CebpBatcher batcher(sim, 7, stack, small_cebp(), log.fn());

  (void)stack.push(ev(1));
  batcher.notify();
  sim.run();
  EXPECT_EQ(log.total_events(), 1u);

  (void)stack.push(ev(2));
  batcher.notify();
  sim.run();
  EXPECT_EQ(log.total_events(), 2u);
}

TEST(CebpBatcher, FlushAllEmitsPartials) {
  sim::Simulator sim;
  EventStack stack(100);
  BatchLog log;
  CebpConfig config = small_cebp();
  config.num_cebps = 1;
  CebpBatcher batcher(sim, 7, stack, config, log.fn());
  (void)stack.push(ev(1));
  // No notify: event sits in the stack. flush_all drains CEBP payloads
  // only, so first let one pop happen.
  batcher.notify();
  sim.run_until(util::nanoseconds(500));  // one recirculation: popped, not flushed yet
  batcher.flush_all();
  EXPECT_EQ(log.total_events(), 1u);
}

TEST(PcieChannel, DeliversBatches) {
  sim::Simulator sim;
  std::vector<EventBatch> delivered;
  PcieChannel pcie(sim, PcieConfig{}, [&](EventBatch&& b) { delivered.push_back(std::move(b)); });

  EventBatch batch;
  batch.switch_id = 3;
  batch.events.push_back(ev(1));
  pcie.submit(std::move(batch));
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].switch_id, 3u);
  EXPECT_EQ(pcie.batches_delivered(), 1u);
}

TEST(PcieChannel, ServiceTimeScalesWithEvents) {
  const PcieConfig config;
  EXPECT_LT(PcieChannel::service_time(config, 1), PcieChannel::service_time(config, 50));
}

TEST(PcieChannel, ThroughputImprovesWithBatchSize) {
  const PcieConfig config;
  const double small = PcieChannel::throughput_eps(config, 1);
  const double large = PcieChannel::throughput_eps(config, 50);
  EXPECT_GT(large, small * 2);
}

TEST(PcieChannel, TwoCoresBeatOne) {
  PcieConfig one;
  one.cpu_cores = 1;
  PcieConfig two;
  two.cpu_cores = 2;
  EXPECT_GT(PcieChannel::throughput_eps(two, 50), PcieChannel::throughput_eps(one, 50));
}

TEST(PcieChannel, PhysicalBandwidthCapsLargeBatches) {
  PcieConfig config;
  config.per_packet_cost = 0;
  config.per_event_cost = 0;
  // Pure wire limit: eps = bw / (24 B/event).
  const double eps = PcieChannel::throughput_eps(config, 1000);
  const double expected = config.phys_bandwidth.gbps_value() * 1e9 / (24.25 * 8);
  EXPECT_NEAR(eps / expected, 1.0, 0.05);
}

TEST(PcieChannel, BacklogTracksQueue) {
  sim::Simulator sim;
  int delivered = 0;
  PcieChannel pcie(sim, PcieConfig{}, [&](EventBatch&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    EventBatch batch;
    batch.events.push_back(ev(1));
    pcie.submit(std::move(batch));
  }
  EXPECT_GT(pcie.backlog(), 0u);
  sim.run();
  EXPECT_EQ(pcie.backlog(), 0u);
  EXPECT_EQ(delivered, 10);
}

}  // namespace
}  // namespace netseer::core
