#include "core/netseer_app.h"

#include <gtest/gtest.h>

#include "backend/collector.h"
#include "backend/event_store.h"
#include "core/nic_agent.h"
#include "fabric/network.h"
#include "packet/builder.h"

namespace netseer::core {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;
using packet::Ipv4Prefix;

/// h1 -- s1 -- s2 -- h2 with NetSeer on both switches and both NICs,
/// reporting to a backend collector over a clean management channel.
struct Rig {
  explicit Rig(NetSeerConfig config = {}, pdp::MmuConfig mmu = {})
      : net(7), channel(net.simulator(), util::Rng(3), util::milliseconds(1), 0.0) {
    pdp::SwitchConfig sc;
    sc.num_ports = 4;
    sc.port_rate = util::BitRate::gbps(10);
    sc.mmu = mmu;
    s1 = &net.add_switch("s1", sc);
    s2 = &net.add_switch("s2", sc);
    h1 = &net.add_host("h1", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(10));
    h2 = &net.add_host("h2", Ipv4Addr::from_octets(10, 0, 1, 1), util::BitRate::gbps(10));
    h3 = &net.add_host("h3", Ipv4Addr::from_octets(10, 0, 0, 2), util::BitRate::gbps(10));
    net.connect_host(*s1, 0, *h1, util::microseconds(1));
    net.connect_host(*s2, 0, *h2, util::microseconds(1));
    net.connect_host(*s1, 2, *h3, util::microseconds(1));
    auto [l12, l21] = net.connect_switches(*s1, 1, *s2, 1, util::microseconds(1));
    s1_to_s2 = l12;
    s2_to_s1 = l21;
    net.compute_routes();

    store = std::make_unique<backend::EventStore>();
    collector = std::make_unique<backend::Collector>(net.simulator(), 1000, channel, *store);
    app1 = std::make_unique<NetSeerApp>(*s1, config, &channel, 1000);
    app2 = std::make_unique<NetSeerApp>(*s2, config, &channel, 1000);
    nic1 = std::make_unique<NetSeerNicAgent>();
    nic2 = std::make_unique<NetSeerNicAgent>();
    h1->set_nic_agent(nic1.get());
    h2->set_nic_agent(nic2.get());
  }

  FlowKey flow(std::uint16_t sport) const {
    return FlowKey{h1->addr(), h2->addr(), 6, sport, 80};
  }

  void send_burst(int packets, std::uint16_t sport = 1000, std::uint32_t payload = 500) {
    for (int i = 0; i < packets; ++i) {
      h1->send(packet::make_tcp(flow(sport), payload));
    }
  }

  void send_burst_from_h3(int packets, std::uint16_t sport, std::uint32_t payload = 1400) {
    for (int i = 0; i < packets; ++i) {
      h3->send(packet::make_tcp(FlowKey{h3->addr(), h2->addr(), 6, sport, 80}, payload));
    }
  }

  void finish() {
    net.simulator().run();
    app1->flush();
    app2->flush();
    net.simulator().run();
    app1->flush();
    app2->flush();
    net.simulator().run();
  }

  [[nodiscard]] std::vector<backend::StoredEvent> events(EventType type) const {
    backend::EventQuery query;
    query.type = type;
    return store->query(query);
  }

  fabric::Network net;
  ReportChannel channel;
  pdp::Switch* s1;
  pdp::Switch* s2;
  net::Host* h1;
  net::Host* h2;
  net::Host* h3;
  net::Link* s1_to_s2;
  net::Link* s2_to_s1;
  std::unique_ptr<backend::EventStore> store;
  std::unique_ptr<backend::Collector> collector;
  std::unique_ptr<NetSeerApp> app1;
  std::unique_ptr<NetSeerApp> app2;
  std::unique_ptr<NetSeerNicAgent> nic1;
  std::unique_ptr<NetSeerNicAgent> nic2;
};

TEST(NetSeerApp, CleanTrafficProducesOnlyPathEvents) {
  Rig rig;
  rig.send_burst(100);
  rig.finish();
  EXPECT_TRUE(rig.events(EventType::kDrop).empty());
  EXPECT_TRUE(rig.events(EventType::kCongestion).empty());
  EXPECT_TRUE(rig.events(EventType::kPause).empty());
  // The new flow's path is reported once per switch.
  const auto paths = rig.events(EventType::kPathChange);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_EQ(rig.h2->rx_packets(), 100u);
}

TEST(NetSeerApp, RouteMissDropsReportedWithFlow) {
  Rig rig;
  // Blackhole h2's /32 on s2 (the Case-#1 routing-error shape).
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  rig.send_burst(50);
  rig.finish();

  const auto drops = rig.events(EventType::kDrop);
  ASSERT_FALSE(drops.empty());
  std::uint64_t total = 0;
  for (const auto& stored : drops) {
    EXPECT_EQ(stored.event.flow, rig.flow(1000));
    EXPECT_EQ(stored.event.drop_code,
              static_cast<std::uint8_t>(pdp::DropReason::kRouteMiss));
    EXPECT_EQ(stored.event.switch_id, rig.s2->id());
    total += stored.event.counter;
  }
  EXPECT_EQ(total, 50u);  // every dropped packet accounted
}

TEST(NetSeerApp, ParityErrorBlackholeCaught) {
  Rig rig;
  // The Case-#3 silent bit-flip: corrupt the route entry instead of
  // removing it.
  ASSERT_TRUE(rig.s2->routes().set_corrupted(Ipv4Prefix{rig.h2->addr(), 32}, true));
  rig.send_burst(20);
  rig.finish();
  const auto drops = rig.events(EventType::kDrop);
  ASSERT_FALSE(drops.empty());
  EXPECT_EQ(drops[0].event.drop_code,
            static_cast<std::uint8_t>(pdp::DropReason::kRouteMiss));
}

TEST(NetSeerApp, AclDropsAggregatedByRule) {
  Rig rig;
  pdp::AclRule rule;
  rule.rule_id = 42;
  rule.dst = Ipv4Prefix{rig.h2->addr(), 32};
  rule.permit = false;
  rig.s1->acl().add_rule(rule);

  // 30 distinct flows all denied by one rule.
  for (std::uint16_t s = 0; s < 30; ++s) rig.send_burst(1, 2000 + s);
  rig.finish();

  const auto acl = rig.events(EventType::kAclDrop);
  ASSERT_FALSE(acl.empty());
  EXPECT_LE(acl.size(), 3u);  // rule granularity, not flow granularity
  EXPECT_EQ(acl[0].event.acl_rule_id, 42);
  EXPECT_TRUE(rig.events(EventType::kDrop).empty());
}

TEST(NetSeerApp, InterSwitchSilentDropRecovered) {
  Rig rig;
  rig.send_burst(5);  // sync the sequence stream before injecting faults
  rig.net.simulator().run();
  net::LinkFaultModel faults;
  faults.drop_prob = 0.05;
  rig.s1_to_s2->set_fault_model(faults);

  rig.send_burst(400);
  rig.net.simulator().run();
  // Clean tail: trailing losses are only detectable once later packets
  // expose the gap and trigger the ring-buffer lookups.
  rig.s1_to_s2->set_fault_model(net::LinkFaultModel{});
  rig.send_burst(20);
  rig.finish();

  const auto drops = rig.events(EventType::kDrop);
  ASSERT_FALSE(drops.empty());
  std::uint64_t recovered = 0;
  for (const auto& stored : drops) {
    EXPECT_EQ(stored.event.drop_code,
              static_cast<std::uint8_t>(pdp::DropReason::kLinkLoss));
    EXPECT_EQ(stored.event.switch_id, rig.s1->id());  // upstream reports
    EXPECT_EQ(stored.event.flow, rig.flow(1000));
    recovered += stored.event.counter;
  }
  EXPECT_EQ(recovered, rig.s1_to_s2->packets_dropped());
  EXPECT_GT(recovered, 5u);
}

TEST(NetSeerApp, CorruptionDropRecovered) {
  Rig rig;
  rig.send_burst(5);  // sync the sequence stream before injecting faults
  rig.net.simulator().run();
  net::LinkFaultModel faults;
  faults.corrupt_prob = 0.05;
  rig.s1_to_s2->set_fault_model(faults);

  rig.send_burst(400);
  rig.net.simulator().run();
  rig.s1_to_s2->set_fault_model(net::LinkFaultModel{});
  rig.send_burst(20);
  rig.finish();

  // Corrupted frames die at s2's MAC; s1 recovers their flows.
  std::uint64_t recovered = 0;
  for (const auto& stored : rig.events(EventType::kDrop)) {
    recovered += stored.event.counter;
  }
  EXPECT_EQ(recovered, rig.s1_to_s2->packets_corrupted());
  EXPECT_GT(rig.s2->counters(1).rx_fcs_errors, 0u);
}

TEST(NetSeerApp, CongestionEventsCarryLatency) {
  NetSeerConfig config;
  config.congestion_threshold = util::microseconds(5);
  Rig rig(config);
  // h1 and h3 (10G each) converge on the 10G s1->s2 link: the s1 egress
  // queue backs up.
  rig.send_burst(200, 3000, 1400);
  rig.send_burst_from_h3(200, 3001);
  rig.finish();

  const auto congestion = rig.events(EventType::kCongestion);
  ASSERT_FALSE(congestion.empty());
  for (const auto& stored : congestion) {
    EXPECT_GT(stored.event.queue_latency_us, 0);
    EXPECT_EQ(stored.event.switch_id, rig.s1->id());
    EXPECT_EQ(stored.event.egress_port, 1);
  }
  // Both contending flows show up.
  backend::EventQuery query;
  query.type = EventType::kCongestion;
  EXPECT_EQ(rig.store->distinct_flows(query).size(), 2u);
}

TEST(NetSeerApp, MmuDropsReported) {
  pdp::MmuConfig mmu;
  mmu.queue_capacity_bytes = 4000;  // tiny queues force tail drops
  Rig rig(NetSeerConfig{}, mmu);
  rig.send_burst(100, 4000, 1400);
  rig.send_burst_from_h3(100, 4001);
  rig.finish();

  std::uint64_t mmu_drop_events = 0;
  for (const auto& stored : rig.events(EventType::kDrop)) {
    if (stored.event.drop_code == static_cast<std::uint8_t>(pdp::DropReason::kCongestion)) {
      mmu_drop_events += stored.event.counter;
    }
  }
  const auto actual = rig.s1->drops(pdp::DropReason::kCongestion) +
                      rig.s2->drops(pdp::DropReason::kCongestion);
  EXPECT_GT(actual, 0u);
  EXPECT_EQ(mmu_drop_events, actual);
}

TEST(NetSeerApp, PathChangeOnReroute) {
  Rig rig;
  rig.send_burst(10);
  rig.net.simulator().run();
  // Add a parallel s1<->s2 link and reroute h2's prefix over it: packets
  // of the established flow flip from egress port 1 to port 3 at s1 —
  // the §3.3 path-change signature (e.g. a faulty network update).
  auto [l2a, l2b] = rig.net.connect_switches(*rig.s1, 3, *rig.s2, 3, util::microseconds(1));
  (void)l2a;
  (void)l2b;
  rig.s1->routes().insert(Ipv4Prefix{rig.h2->addr(), 32}, pdp::EcmpGroup{{3}});
  rig.send_burst(10);
  rig.finish();

  const auto paths = rig.events(EventType::kPathChange);
  // s1 must have reported the flow twice: once new (egress 1), once
  // changed (egress 3).
  int s1_reports = 0;
  bool saw_port1 = false, saw_port3 = false;
  for (const auto& stored : paths) {
    if (stored.event.switch_id == rig.s1->id()) {
      ++s1_reports;
      saw_port1 |= (stored.event.egress_port == 1);
      saw_port3 |= (stored.event.egress_port == 3);
    }
  }
  EXPECT_GE(s1_reports, 2);
  EXPECT_TRUE(saw_port1);
  EXPECT_TRUE(saw_port3);
}

TEST(NetSeerApp, EdgeLinkDropCoveredByNic) {
  Rig rig;
  // Sync the sequence stream first: losses before the receiver has seen
  // any sequence number are undetectable by design.
  rig.send_burst(5);
  rig.net.simulator().run();
  // Faults on the s2 -> h2 edge link: h2's NIC detects the gap and
  // notifies s2, which recovers the flows from its ring buffer.
  net::LinkFaultModel faults;
  faults.drop_prob = 0.1;
  // The switch->host direction link is the 2nd of the pair created in
  // connect_host; find it via s2's port 0.
  rig.s2->link(0)->set_fault_model(faults);

  rig.send_burst(300);
  rig.net.simulator().run();
  rig.s2->link(0)->set_fault_model(net::LinkFaultModel{});
  rig.send_burst(20);
  rig.finish();

  std::uint64_t recovered = 0;
  for (const auto& stored : rig.events(EventType::kDrop)) {
    if (stored.event.switch_id == rig.s2->id()) recovered += stored.event.counter;
  }
  const auto& tx = rig.app2->tx_module(0);
  EXPECT_EQ(recovered, rig.s2->link(0)->packets_dropped())
      << "tx reported=" << tx.drops_reported() << " misses=" << tx.lookup_misses()
      << " notifications=" << tx.notifications() << " dup=" << tx.duplicate_notifications()
      << " nic gaps=" << rig.nic2->rx_module().gaps()
      << " nic gap_packets=" << rig.nic2->rx_module().gap_packets()
      << " cache offered=" << rig.app2->cache(EventType::kDrop).offered()
      << " reports=" << rig.app2->cache(EventType::kDrop).reports()
      << " fp_elim=" << rig.app2->cpu().fp().eliminated()
      << " stack_overflow=" << rig.app2->stack().overflows();
  EXPECT_GT(recovered, 0u);
}

TEST(NetSeerApp, HostUplinkDropLoggedByNic) {
  Rig rig;
  net::LinkFaultModel faults;
  faults.drop_prob = 0.1;
  // h1 -> s1 uplink: s1's RX detects gaps, notifies h1's NIC, which logs
  // the drops locally (§4: NIC events go to local logs).
  // The uplink is the first link created in connect_host for h1.
  rig.send_burst(5);  // sync the sequence stream before injecting faults
  rig.net.simulator().run();
  rig.net.links()[0]->set_fault_model(faults);

  rig.send_burst(300);
  rig.net.simulator().run();
  rig.net.links()[0]->set_fault_model(net::LinkFaultModel{});
  rig.send_burst(20);
  rig.finish();

  EXPECT_EQ(rig.nic1->local_log().size(), rig.net.links()[0]->packets_dropped());
  EXPECT_GT(rig.nic1->local_log().size(), 0u);
  for (const auto& ev : rig.nic1->local_log()) {
    EXPECT_EQ(ev.flow, rig.flow(1000));
  }
}

TEST(NetSeerApp, FunnelAccountingIsConsistent) {
  Rig rig;
  net::LinkFaultModel faults;
  faults.drop_prob = 0.02;
  rig.s1_to_s2->set_fault_model(faults);
  rig.send_burst(500);
  rig.finish();

  const auto& funnel = rig.app1->funnel();
  EXPECT_GT(funnel.traffic_bytes, 0u);
  EXPECT_GT(funnel.event_packets, 0u);
  EXPECT_LE(funnel.dedup_reports, funnel.event_packets);
  EXPECT_GT(funnel.extracted_bytes, 0u);
  EXPECT_LT(funnel.overhead_ratio(), 0.05);
  EXPECT_GT(funnel.shim_bytes, 0u);
}

TEST(NetSeerApp, ZeroFalsePositivesOnCleanRun) {
  Rig rig;
  rig.send_burst(1000);
  rig.finish();
  // No drops, no congestion, no pause events stored — network is
  // exonerated ("if no flow event is happening, the network is
  // innocent", §3.1).
  EXPECT_TRUE(rig.events(EventType::kDrop).empty());
  EXPECT_TRUE(rig.events(EventType::kCongestion).empty());
  EXPECT_TRUE(rig.events(EventType::kPause).empty());
  EXPECT_TRUE(rig.events(EventType::kAclDrop).empty());
}

TEST(NetSeerApp, QueryByDeviceAndPeriod) {
  Rig rig;
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  rig.send_burst(10);
  rig.finish();

  backend::EventQuery by_device;
  by_device.switch_id = rig.s2->id();
  EXPECT_FALSE(rig.store->query(by_device).empty());

  backend::EventQuery by_flow;
  by_flow.flow = rig.flow(1000);
  EXPECT_FALSE(rig.store->query(by_flow).empty());

  backend::EventQuery wrong_period;
  wrong_period.from = util::seconds(100);
  EXPECT_TRUE(rig.store->query(wrong_period).empty());
}

}  // namespace
}  // namespace netseer::core
