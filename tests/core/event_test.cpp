#include "core/event.h"

#include <gtest/gtest.h>

namespace netseer::core {
namespace {

packet::FlowKey sample_flow() {
  return packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 1, 2),
                         packet::Ipv4Addr::from_octets(10, 0, 2, 3), 6, 40000, 443};
}

TEST(FlowEvent, WireSizeIs24Bytes) {
  static_assert(FlowEvent::kWireSize == 24);
  const auto ev = make_event(EventType::kDrop, sample_flow(), 5, 100);
  EXPECT_EQ(ev.serialize().size(), 24u);
}

TEST(FlowEvent, MakeEventFillsCommonFields) {
  const auto ev = make_event(EventType::kCongestion, sample_flow(), 7, 1234);
  EXPECT_EQ(ev.type, EventType::kCongestion);
  EXPECT_EQ(ev.flow, sample_flow());
  EXPECT_EQ(ev.flow_hash, sample_flow().crc32());
  EXPECT_EQ(ev.switch_id, 7u);
  EXPECT_EQ(ev.detected_at, 1234);
  EXPECT_EQ(ev.counter, 1);
}

TEST(FlowEvent, DropRoundTrip) {
  auto ev = make_event(EventType::kDrop, sample_flow(), 5, 100);
  ev.counter = 321;
  ev.ingress_port = 3;
  ev.egress_port = 9;
  ev.drop_code = 4;
  const auto parsed = FlowEvent::parse(ev.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, EventType::kDrop);
  EXPECT_EQ(parsed->flow, ev.flow);
  EXPECT_EQ(parsed->counter, 321);
  EXPECT_EQ(parsed->flow_hash, ev.flow_hash);
  EXPECT_EQ(parsed->ingress_port, 3);
  EXPECT_EQ(parsed->egress_port, 9);
  EXPECT_EQ(parsed->drop_code, 4);
}

TEST(FlowEvent, CongestionRoundTrip) {
  auto ev = make_event(EventType::kCongestion, sample_flow(), 5, 100);
  ev.egress_port = 12;
  ev.queue = 3;
  ev.queue_latency_us = 4567;
  const auto parsed = FlowEvent::parse(ev.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->egress_port, 12);
  EXPECT_EQ(parsed->queue, 3);
  EXPECT_EQ(parsed->queue_latency_us, 4567);
}

TEST(FlowEvent, PathChangeRoundTrip) {
  auto ev = make_event(EventType::kPathChange, sample_flow(), 5, 100);
  ev.ingress_port = 1;
  ev.egress_port = 2;
  const auto parsed = FlowEvent::parse(ev.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, EventType::kPathChange);
  EXPECT_EQ(parsed->ingress_port, 1);
  EXPECT_EQ(parsed->egress_port, 2);
}

TEST(FlowEvent, PauseRoundTrip) {
  auto ev = make_event(EventType::kPause, sample_flow(), 5, 100);
  ev.egress_port = 30;
  ev.queue = 7;
  const auto parsed = FlowEvent::parse(ev.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, EventType::kPause);
  EXPECT_EQ(parsed->egress_port, 30);
  EXPECT_EQ(parsed->queue, 7);
}

TEST(FlowEvent, AclDropRoundTrip) {
  auto ev = make_event(EventType::kAclDrop, sample_flow(), 5, 100);
  ev.acl_rule_id = 0xbeef;
  const auto parsed = FlowEvent::parse(ev.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, EventType::kAclDrop);
  EXPECT_EQ(parsed->acl_rule_id, 0xbeef);
}

TEST(FlowEvent, ParseRejectsBadType) {
  auto raw = make_event(EventType::kDrop, sample_flow(), 5, 100).serialize();
  raw[0] = std::byte{0};
  EXPECT_FALSE(FlowEvent::parse(raw).has_value());
  raw[0] = std::byte{99};
  EXPECT_FALSE(FlowEvent::parse(raw).has_value());
}

TEST(FlowEvent, LatencySaturates) {
  EXPECT_EQ(to_latency_us(util::microseconds(100)), 100);
  EXPECT_EQ(to_latency_us(util::seconds(10)), 0xffff);
  EXPECT_EQ(to_latency_us(0), 0);
  EXPECT_EQ(to_latency_us(999), 0);  // sub-microsecond truncates
}

TEST(FlowEvent, DedupKeySeparatesTypes) {
  const auto drop = make_event(EventType::kDrop, sample_flow(), 5, 100);
  const auto cong = make_event(EventType::kCongestion, sample_flow(), 5, 100);
  EXPECT_NE(drop.dedup_key(), cong.dedup_key());
}

TEST(FlowEvent, DedupKeySeparatesAclRules) {
  auto a = make_event(EventType::kAclDrop, sample_flow(), 5, 100);
  a.acl_rule_id = 1;
  auto b = a;
  b.acl_rule_id = 2;
  EXPECT_NE(a.dedup_key(), b.dedup_key());
}

TEST(FlowEvent, DedupKeyIgnoresCounter) {
  auto a = make_event(EventType::kDrop, sample_flow(), 5, 100);
  auto b = a;
  b.counter = 500;
  EXPECT_EQ(a.dedup_key(), b.dedup_key());
}

TEST(EventBatch, WireSizeAccounting) {
  EventBatch batch;
  EXPECT_EQ(batch.wire_size(), EventBatch::kHeaderSize);
  batch.events.push_back(make_event(EventType::kDrop, sample_flow(), 5, 100));
  batch.events.push_back(make_event(EventType::kPause, sample_flow(), 5, 100));
  EXPECT_EQ(batch.wire_size(), EventBatch::kHeaderSize + 2 * FlowEvent::kWireSize);
}

TEST(FlowEvent, ToStringContainsType) {
  const auto ev = make_event(EventType::kCongestion, sample_flow(), 5, 100);
  EXPECT_NE(ev.to_string().find("congestion"), std::string::npos);
}

}  // namespace
}  // namespace netseer::core
