// Property test: 24-byte event records round-trip for randomized field
// values across every event type (TEST_P over type).
#include <gtest/gtest.h>

#include "core/event.h"
#include "util/rng.h"

namespace netseer::core {
namespace {

class EventRoundTrip : public ::testing::TestWithParam<EventType> {};

TEST_P(EventRoundTrip, RandomizedFieldsSurviveSerialization) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009);
  for (int i = 0; i < 500; ++i) {
    FlowEvent ev;
    ev.type = GetParam();
    ev.flow.src.value = static_cast<std::uint32_t>(rng.next());
    ev.flow.dst.value = static_cast<std::uint32_t>(rng.next());
    ev.flow.proto = static_cast<std::uint8_t>(rng.uniform(256));
    ev.flow.sport = static_cast<std::uint16_t>(rng.next());
    ev.flow.dport = static_cast<std::uint16_t>(rng.next());
    ev.counter = static_cast<std::uint16_t>(rng.next());
    ev.flow_hash = static_cast<std::uint32_t>(rng.next());
    ev.ingress_port = static_cast<std::uint8_t>(rng.uniform(256));
    ev.egress_port = static_cast<std::uint8_t>(rng.uniform(256));
    ev.queue = static_cast<std::uint8_t>(rng.uniform(8));
    ev.queue_latency_us = static_cast<std::uint16_t>(rng.next());
    ev.drop_code = static_cast<std::uint8_t>(rng.uniform(10));
    ev.acl_rule_id = static_cast<std::uint16_t>(rng.next());

    const auto parsed = FlowEvent::parse(ev.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, ev.type);
    EXPECT_EQ(parsed->flow, ev.flow);
    EXPECT_EQ(parsed->counter, ev.counter);
    EXPECT_EQ(parsed->flow_hash, ev.flow_hash);
    // Type-specific fields survive; fields outside the type's detail
    // layout legitimately reset — reserialize to compare canonical forms.
    EXPECT_EQ(parsed->serialize(), ev.serialize());
    // Dedup identity is stable across the wire.
    FlowEvent canonical = *FlowEvent::parse(ev.serialize());
    EXPECT_EQ(canonical.dedup_key(), parsed->dedup_key());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, EventRoundTrip,
                         ::testing::Values(EventType::kDrop, EventType::kCongestion,
                                           EventType::kPathChange, EventType::kPause,
                                           EventType::kAclDrop),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace netseer::core
