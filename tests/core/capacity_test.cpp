#include "core/capacity.h"

#include <gtest/gtest.h>

namespace netseer::core::capacity {
namespace {

TEST(CebpCapacity, ThroughputRisesWithBatchSize) {
  const CebpConfig config;
  double prev = 0.0;
  for (int batch : {1, 5, 10, 20, 50, 70}) {
    const double eps = cebp_throughput_eps(config, batch);
    EXPECT_GT(eps, prev) << batch;
    prev = eps;
  }
}

TEST(CebpCapacity, AsymptoteIsCebpsPerRecirc) {
  CebpConfig config;
  config.num_cebps = 35;
  config.recirc_latency = util::nanoseconds(400);
  const double limit = 35.0 * 1e9 / 400.0;  // 87.5 Meps
  EXPECT_LT(cebp_throughput_eps(config, 10000), limit);
  EXPECT_GT(cebp_throughput_eps(config, 10000), 0.95 * limit);
}

TEST(CebpCapacity, PaperScaleBatch50) {
  // The paper reports ~86 Meps / ~17.7 Gb/s around batch 50 (Fig. 12).
  const CebpConfig config;
  const double meps = cebp_throughput_eps(config, 50) / 1e6;
  EXPECT_GT(meps, 50.0);
  EXPECT_LT(meps, 100.0);
  const double gbps = cebp_throughput_gbps(config, 50);
  EXPECT_GT(gbps, 10.0);
  EXPECT_LT(gbps, 20.0);
}

TEST(CebpCapacity, ZeroBatchIsZero) {
  EXPECT_EQ(cebp_throughput_eps(CebpConfig{}, 0), 0.0);
}

TEST(RingSizing, MinSlotsForPaperScenario) {
  // Fig. 15(a): ">25 slots to retrieve at least one 1024-byte dropped
  // packet". With 100G links and ~2 us of notification turnaround, the
  // model lands in the same regime.
  const auto slots = min_ring_slots(util::BitRate::gbps(100), util::microseconds(2), 1024);
  EXPECT_GE(slots, 20u);
  EXPECT_LE(slots, 40u);
}

TEST(RingSizing, SmallerPacketsNeedMoreSlots) {
  const auto rate = util::BitRate::gbps(100);
  const auto rtt = util::microseconds(2);
  std::size_t prev = SIZE_MAX;
  for (std::uint32_t bytes : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
    const auto slots = min_ring_slots(rate, rtt, bytes);
    EXPECT_LT(slots, prev) << bytes;
    prev = slots;
  }
}

TEST(RingSizing, ConsecutiveDropsAddLinearly) {
  const auto rate = util::BitRate::gbps(100);
  const auto rtt = util::microseconds(2);
  const auto base = slots_for_consecutive_drops(1, rate, rtt, 1024);
  const auto big = slots_for_consecutive_drops(1000, rate, rtt, 1024);
  EXPECT_EQ(big - base, 999u);
}

TEST(RingSizing, PaperSramBudget) {
  // Fig. 15(b): 1,000 consecutive 1024 B drops on each port of a
  // 64x100G switch within ~800 KB of SRAM.
  const auto slots =
      slots_for_consecutive_drops(1000, util::BitRate::gbps(100), util::microseconds(2), 1024);
  const auto sram = ring_sram_bytes(64, slots);
  EXPECT_LT(sram, 1000u * 1024u);
  EXPECT_GT(sram, 500u * 1024u);
}

TEST(RingSizing, ZeroRttStillNeedsOneSlot) {
  EXPECT_GE(min_ring_slots(util::BitRate::gbps(100), 0, 1024), 1u);
}

}  // namespace
}  // namespace netseer::core::capacity
