#include "core/nic_agent.h"

#include <gtest/gtest.h>

#include "fabric/network.h"
#include "packet/builder.h"

namespace netseer::core {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;

struct Rig {
  Rig() : net(5) {
    host = &net.add_host("h", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(10));
    peer = &net.add_host("peer", Ipv4Addr::from_octets(10, 0, 0, 2), util::BitRate::gbps(10));
    pdp::SwitchConfig sc;
    sc.num_ports = 2;
    sw = &net.add_switch("s", sc);
    net.connect_host(*sw, 0, *host, util::microseconds(1));
    net.connect_host(*sw, 1, *peer, util::microseconds(1));
    net.compute_routes();
    host->set_nic_agent(&agent);
  }
  fabric::Network net;
  net::Host* host;
  net::Host* peer;
  pdp::Switch* sw;
  NetSeerNicAgent agent;
};

FlowKey flow(std::uint16_t sport = 1000) {
  return FlowKey{Ipv4Addr::from_octets(10, 0, 0, 1), Ipv4Addr::from_octets(10, 0, 0, 2), 6,
                 sport, 80};
}

TEST(NicAgent, TagsOutgoingPackets) {
  Rig rig;
  for (std::uint32_t i = 0; i < 5; ++i) {
    rig.host->send(packet::make_tcp(flow(), 100));
  }
  EXPECT_EQ(rig.agent.tx_module().packets_sent(), 5u);
  EXPECT_EQ(rig.agent.tx_module().next_seq(), 5u);
}

TEST(NicAgent, StripsIncomingTags) {
  Rig rig;
  auto pkt = packet::make_tcp(flow().reversed(), 100);
  pkt.seq_tag = 0;
  rig.host->receive(std::move(pkt), 0);
  EXPECT_EQ(rig.agent.rx_module().received(), 1u);
}

TEST(NicAgent, GapTriggersNotificationUpstream) {
  Rig rig;
  // Simulate the switch's numbered stream with a hole at seq 1.
  for (const std::uint32_t seq : {0u, 2u}) {
    auto pkt = packet::make_tcp(flow().reversed(), 100);
    pkt.seq_tag = seq;
    rig.host->receive(std::move(pkt), 0);
  }
  rig.net.simulator().run();
  // Three redundant notification copies left the NIC toward the switch;
  // the switch's pipeline consumed them (no NetSeer app here, so they
  // are counted at the switch as consumed control traffic or dropped by
  // the parser — either way they were sent).
  EXPECT_EQ(rig.agent.rx_module().gaps(), 1u);
}

TEST(NicAgent, ConsumesNotificationsAndLogsLocally) {
  Rig rig;
  // The NIC transmitted seqs 0..4; the peer reports 2..3 missing.
  for (int i = 0; i < 5; ++i) rig.host->send(packet::make_tcp(flow(), 100));
  auto notify = make_loss_notification(2, 3, 0);
  rig.host->receive(std::move(notify), 0);
  // One lookup fired on notification arrival; the next TX drains the rest.
  rig.host->send(packet::make_tcp(flow(), 100));
  ASSERT_EQ(rig.agent.local_log().size(), 2u);
  for (const auto& ev : rig.agent.local_log()) {
    EXPECT_EQ(ev.type, EventType::kDrop);
    EXPECT_EQ(ev.flow, flow());
    EXPECT_EQ(ev.switch_id, rig.host->id());  // logged at the NIC itself
  }
}

TEST(NicAgent, DuplicateNotificationsIgnored) {
  Rig rig;
  for (int i = 0; i < 5; ++i) rig.host->send(packet::make_tcp(flow(), 100));
  for (int copy = 0; copy < 3; ++copy) {
    auto notify = make_loss_notification(1, 1, static_cast<std::uint8_t>(copy));
    rig.host->receive(std::move(notify), 0);
  }
  EXPECT_EQ(rig.agent.local_log().size(), 1u);
}

}  // namespace
}  // namespace netseer::core
