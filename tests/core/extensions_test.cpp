// Tests of the paper features beyond the §5 evaluation: partial
// deployment (§2.3), hardware-failure self-checks (§3.7 / Fig. 4
// "malfunctioning"), and inter-card drop detection on multi-board
// switches (§3.3).
#include <gtest/gtest.h>

#include "backend/collector.h"
#include "backend/event_store.h"
#include "core/netseer_app.h"
#include "core/nic_agent.h"
#include "fabric/multiboard.h"
#include "fabric/network.h"
#include "monitors/pingmesh.h"
#include "monitors/syslog.h"
#include "packet/builder.h"
#include "traffic/tcp.h"

namespace netseer::core {
namespace {

using packet::FlowKey;
using packet::Ipv4Addr;
using packet::Ipv4Prefix;

struct Rig {
  explicit Rig(NetSeerConfig config = {})
      : net(7), channel(net.simulator(), util::Rng(3), util::milliseconds(1), 0.0) {
    pdp::SwitchConfig sc;
    sc.num_ports = 4;
    sc.port_rate = util::BitRate::gbps(10);
    s1 = &net.add_switch("s1", sc);
    s2 = &net.add_switch("s2", sc);
    h1 = &net.add_host("h1", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(10));
    h2 = &net.add_host("h2", Ipv4Addr::from_octets(10, 0, 1, 1), util::BitRate::gbps(10));
    h3 = &net.add_host("h3", Ipv4Addr::from_octets(20, 0, 0, 1), util::BitRate::gbps(10));
    net.connect_host(*s1, 0, *h1, util::microseconds(1));
    net.connect_host(*s2, 0, *h2, util::microseconds(1));
    net.connect_host(*s1, 2, *h3, util::microseconds(1));
    auto [l12, l21] = net.connect_switches(*s1, 1, *s2, 1, util::microseconds(1));
    s1_to_s2 = l12;
    (void)l21;
    net.compute_routes();

    store = std::make_unique<backend::EventStore>();
    collector = std::make_unique<backend::Collector>(net.simulator(), 1000, channel, *store);
    app1 = std::make_unique<NetSeerApp>(*s1, config, &channel, 1000);
    app2 = std::make_unique<NetSeerApp>(*s2, config, &channel, 1000);
    nic1 = std::make_unique<NetSeerNicAgent>();
    nic2 = std::make_unique<NetSeerNicAgent>();
    nic3 = std::make_unique<NetSeerNicAgent>();
    h1->set_nic_agent(nic1.get());
    h2->set_nic_agent(nic2.get());
    h3->set_nic_agent(nic3.get());
  }

  void finish() {
    net.simulator().run();
    app1->flush();
    app2->flush();
    net.simulator().run();
  }

  fabric::Network net;
  ReportChannel channel;
  pdp::Switch* s1;
  pdp::Switch* s2;
  net::Host* h1;
  net::Host* h2;
  net::Host* h3;
  net::Link* s1_to_s2;
  std::unique_ptr<backend::EventStore> store;
  std::unique_ptr<backend::Collector> collector;
  std::unique_ptr<NetSeerApp> app1;
  std::unique_ptr<NetSeerApp> app2;
  std::unique_ptr<NetSeerNicAgent> nic1;
  std::unique_ptr<NetSeerNicAgent> nic2;
  std::unique_ptr<NetSeerNicAgent> nic3;
};

// ---- Partial deployment (§2.3) ---------------------------------------------

TEST(PartialDeployment, OnlyMonitoredPrefixReported) {
  NetSeerConfig config;
  config.monitored_prefixes = {Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 0), 8}};
  Rig rig(config);
  // Blackhole both destinations at s2? Use route miss for h2 (10/8,
  // monitored) and for a 20/8 flow from h3 (unmonitored).
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));

  const FlowKey monitored{rig.h1->addr(), rig.h2->addr(), 6, 1000, 80};
  for (int i = 0; i < 20; ++i) rig.h1->send(packet::make_tcp(monitored, 400));
  // h3 (20.0.0.1) -> h2 is also blackholed but src/dst outside 10/8?
  // dst is 10.0.1.1 which IS in 10/8 — use a flow that matches nothing:
  // impossible here since dst is monitored; instead narrow the filter.
  rig.finish();
  backend::EventQuery drops;
  drops.type = EventType::kDrop;
  EXPECT_FALSE(rig.store->query(drops).empty());
}

TEST(PartialDeployment, UnmonitoredFlowsFiltered) {
  NetSeerConfig config;
  // Monitor only the h1 host itself.
  config.monitored_prefixes = {Ipv4Prefix{Ipv4Addr::from_octets(10, 0, 0, 1), 32}};
  Rig rig(config);
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));

  const FlowKey monitored{rig.h1->addr(), rig.h2->addr(), 6, 1000, 80};
  const FlowKey unmonitored{rig.h3->addr(), rig.h2->addr(), 6, 2000, 80};
  for (int i = 0; i < 20; ++i) rig.h1->send(packet::make_tcp(monitored, 400));
  for (int i = 0; i < 20; ++i) rig.h3->send(packet::make_tcp(unmonitored, 400));
  rig.finish();

  backend::EventQuery by_monitored;
  by_monitored.flow = monitored;
  EXPECT_FALSE(rig.store->query(by_monitored).empty());

  backend::EventQuery by_unmonitored;
  by_unmonitored.flow = unmonitored;
  EXPECT_TRUE(rig.store->query(by_unmonitored).empty());
  EXPECT_GT(rig.app2->filtered_events(), 0u);
}

TEST(PartialDeployment, EmptyFilterMonitorsEverything) {
  Rig rig;  // default config
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  const FlowKey flow{rig.h3->addr(), rig.h2->addr(), 6, 2000, 80};
  for (int i = 0; i < 5; ++i) rig.h3->send(packet::make_tcp(flow, 400));
  rig.finish();
  backend::EventQuery query;
  query.flow = flow;
  EXPECT_FALSE(rig.store->query(query).empty());
  EXPECT_EQ(rig.app2->filtered_events(), 0u);
}

// ---- Hardware failures (§3.7 / Fig. 4) --------------------------------------

TEST(HardwareFailure, AsicFailureInvisibleToNetSeerButSyslogged) {
  Rig rig;
  monitors::SyslogCollector syslog(rig.net.simulator());
  syslog.attach(*rig.s2);

  const FlowKey flow{rig.h1->addr(), rig.h2->addr(), 6, 1000, 80};
  for (int i = 0; i < 5; ++i) rig.h1->send(packet::make_tcp(flow, 400));
  rig.net.simulator().run();

  rig.s2->inject_hardware_fault(pdp::HardwareFault::kAsicFailure);
  for (int i = 0; i < 50; ++i) rig.h1->send(packet::make_tcp(flow, 400));
  rig.finish();

  EXPECT_EQ(rig.s2->hardware_discards(), 50u);
  // NetSeer saw nothing: the dead ASIC never ran the pipeline. (The
  // upstream switch cannot tell either — the peer simply went silent.)
  backend::EventQuery drops;
  drops.type = EventType::kDrop;
  EXPECT_TRUE(rig.store->query(drops).empty());
  // But the self-check raised an alert — the §3.7 division of labor.
  EXPECT_TRUE(syslog.has_alert_for(rig.s2->id()));
}

TEST(HardwareFailure, MmuFailureSilentlyEatsAdmittedPackets) {
  Rig rig;
  rig.s1->inject_hardware_fault(pdp::HardwareFault::kMmuFailure,
                                /*self_check_detects=*/false);
  const FlowKey flow{rig.h1->addr(), rig.h2->addr(), 6, 1000, 80};
  for (int i = 0; i < 30; ++i) rig.h1->send(packet::make_tcp(flow, 400));
  rig.finish();
  EXPECT_EQ(rig.s1->hardware_discards(), 30u);
  EXPECT_EQ(rig.h2->rx_packets(), 0u);
  EXPECT_EQ(rig.s1->total_drops(), 0u);  // no counter anywhere
}

TEST(HardwareFailure, ActiveProbingStillDetectsDeadSwitch) {
  // Fig. 4: "A switch cannot forward packets, which can be detected
  // through active probing."
  Rig rig;
  monitors::PingmeshProber prober(rig.net.simulator(), {rig.h1, rig.h2},
                                  util::milliseconds(2), util::milliseconds(5));
  rig.s2->inject_hardware_fault(pdp::HardwareFault::kAsicFailure);
  rig.net.simulator().run_until(util::milliseconds(20));
  prober.stop();
  EXPECT_GT(prober.lost_probes(), 0u);
}

TEST(HardwareFailure, HealingRestoresForwarding) {
  Rig rig;
  rig.s2->inject_hardware_fault(pdp::HardwareFault::kAsicFailure);
  rig.s2->inject_hardware_fault(pdp::HardwareFault::kNone);
  const FlowKey flow{rig.h1->addr(), rig.h2->addr(), 6, 1000, 80};
  for (int i = 0; i < 10; ++i) rig.h1->send(packet::make_tcp(flow, 400));
  rig.finish();
  EXPECT_EQ(rig.h2->rx_packets(), 10u);
}

// ---- Inter-card drops on a multi-board chassis (§3.3) -----------------------

TEST(MultiBoard, InterCardDropsRecoveredLikeInterSwitch) {
  fabric::Network net(9);
  ReportChannel channel(net.simulator(), util::Rng(3), util::milliseconds(1), 0.0);
  pdp::SwitchConfig sc;
  sc.num_ports = 4;
  sc.port_rate = util::BitRate::gbps(10);
  auto chassis = fabric::add_multiboard_switch(net, "chassis", sc);
  auto& h1 = net.add_host("h1", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(10));
  auto& h2 = net.add_host("h2", Ipv4Addr::from_octets(10, 0, 1, 1), util::BitRate::gbps(10));
  net.connect_host(*chassis.board_a, 0, h1, util::microseconds(1));
  net.connect_host(*chassis.board_b, 0, h2, util::microseconds(1));
  net.compute_routes();

  backend::EventStore store;
  backend::Collector collector(net.simulator(), 1000, channel, store);
  NetSeerConfig config;
  NetSeerApp app_a(*chassis.board_a, config, &channel, 1000);
  NetSeerApp app_b(*chassis.board_b, config, &channel, 1000);
  NetSeerNicAgent nic1, nic2;
  h1.set_nic_agent(&nic1);
  h2.set_nic_agent(&nic2);

  const FlowKey flow{h1.addr(), h2.addr(), 6, 1000, 80};
  for (int i = 0; i < 5; ++i) h1.send(packet::make_tcp(flow, 500));
  net.simulator().run();

  // Backplane silently corrupts/drops — the Fig. 4 "inter-card drop".
  net::LinkFaultModel faults;
  faults.drop_prob = 0.08;
  chassis.backplane_ab->set_fault_model(faults);
  for (int i = 0; i < 300; ++i) h1.send(packet::make_tcp(flow, 500));
  net.simulator().run();
  chassis.backplane_ab->set_fault_model({});
  for (int i = 0; i < 20; ++i) h1.send(packet::make_tcp(flow, 500));
  net.simulator().run();
  app_a.flush();
  app_b.flush();
  net.simulator().run();

  std::uint64_t recovered = 0;
  backend::EventQuery query;
  query.flow = flow;
  for (const auto& stored : store.query(query)) {
    if (stored.event.type == EventType::kDrop) {
      // Attributed to the upstream BOARD — localizing the failing card.
      EXPECT_EQ(stored.event.switch_id, chassis.board_a->id());
      recovered += stored.event.counter;
    }
  }
  EXPECT_EQ(recovered, chassis.backplane_ab->packets_dropped());
  EXPECT_GT(recovered, 5u);
}

// ---- Flexible flow identifiers (§3.4) ----------------------------------------

TEST(FlowIdModes, CanonicalFlowZeroesOutOfScopeFields) {
  const FlowKey full{Ipv4Addr::from_octets(1, 2, 3, 4), Ipv4Addr::from_octets(5, 6, 7, 8), 6,
                     1111, 80};
  EXPECT_EQ(canonical_flow(full, FlowIdMode::k5Tuple), full);
  const auto pair = canonical_flow(full, FlowIdMode::kHostPair);
  EXPECT_EQ(pair.src, full.src);
  EXPECT_EQ(pair.dst, full.dst);
  EXPECT_EQ(pair.sport, 0);
  EXPECT_EQ(pair.dport, 0);
  EXPECT_EQ(pair.proto, 0);
  const auto dst = canonical_flow(full, FlowIdMode::kDstOnly);
  EXPECT_EQ(dst.src, Ipv4Addr{});
  EXPECT_EQ(dst.dst, full.dst);
}

TEST(FlowIdModes, HostPairAggregatesAcrossPorts) {
  NetSeerConfig config;
  config.flow_id_mode = FlowIdMode::kHostPair;
  Rig rig(config);
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  // 40 distinct 5-tuples between the same host pair.
  for (std::uint16_t s = 0; s < 40; ++s) {
    rig.h1->send(packet::make_tcp(FlowKey{rig.h1->addr(), rig.h2->addr(), 6,
                                          static_cast<std::uint16_t>(5000 + s), 80},
                                  400));
  }
  rig.finish();

  // All drops merge into ONE host-pair flow event stream.
  backend::EventQuery drops;
  drops.type = EventType::kDrop;
  const auto flows = rig.store->distinct_flows(drops);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].sport, 0);
  EXPECT_EQ(flows[0].src, rig.h1->addr());
  EXPECT_EQ(rig.store->total_counter(drops), 40u);
}

TEST(FlowIdModes, DstOnlyAggregatesAcrossSenders) {
  NetSeerConfig config;
  config.flow_id_mode = FlowIdMode::kDstOnly;
  Rig rig(config);
  ASSERT_TRUE(rig.s2->routes().remove(Ipv4Prefix{rig.h2->addr(), 32}));
  for (int i = 0; i < 10; ++i) {
    rig.h1->send(packet::make_tcp(FlowKey{rig.h1->addr(), rig.h2->addr(), 6, 5000, 80}, 400));
    rig.h3->send(packet::make_tcp(FlowKey{rig.h3->addr(), rig.h2->addr(), 6, 6000, 80}, 400));
  }
  rig.finish();
  backend::EventQuery drops;
  drops.type = EventType::kDrop;
  const auto flows = rig.store->distinct_flows(drops);
  ASSERT_EQ(flows.size(), 1u);  // one destination-service event stream
  EXPECT_EQ(flows[0].dst, rig.h2->addr());
  EXPECT_EQ(rig.store->total_counter(drops), 20u);
}

// ---- Closed-loop transport meets NetSeer (Case #5's observable) -------------

TEST(ClosedLoop, TcpRetransmissionsExplainedByBackendEvents) {
  // The Case-#5 situation inverted: TCP retransmits DO have a network
  // cause here, and the backend names the packets. A TCP flow crosses a
  // link with a lossy window; every loss the sender had to repair is
  // visible as an upstream drop event for exactly that flow.
  Rig rig;
  // Sync the link's sequence stream before the faults begin.
  for (int i = 0; i < 5; ++i) {
    rig.h1->send(packet::make_tcp(FlowKey{rig.h1->addr(), rig.h2->addr(), 6, 1, 2}, 100));
  }
  rig.net.simulator().run();

  traffic::TcpReceiver receiver;
  rig.h2->add_app(&receiver);
  traffic::TcpConfig tcp;
  tcp.rto = util::milliseconds(5);
  traffic::TcpSender sender(*rig.h1, rig.h2->addr(), 45000, 3000, tcp);
  rig.h1->add_app(&sender);

  net::LinkFaultModel faults;
  faults.drop_prob = 0.02;
  rig.s1_to_s2->set_fault_model(faults);
  sender.start();
  // Heal once the transfer is mid-flight; TCP's own retransmissions
  // provide the subsequent packets that expose trailing gaps.
  (void)rig.net.simulator().schedule_at(rig.net.simulator().now() + util::milliseconds(2),
                                  [&rig] { rig.s1_to_s2->set_fault_model({}); });
  rig.net.simulator().run_until(util::seconds(5));
  rig.finish();

  ASSERT_TRUE(sender.done());
  ASSERT_GT(sender.retransmissions(), 0u);

  // Data-direction drops on the wire, recovered by s1 with the flow id.
  const packet::FlowKey flow{rig.h1->addr(), rig.h2->addr(), 6, 45000, 8080};
  backend::EventQuery query;
  query.flow = flow;
  std::uint64_t data_drops = 0;
  for (const auto& stored : rig.store->query(query)) {
    if (stored.event.type == EventType::kDrop) data_drops += stored.event.counter;
  }
  // ACK-direction losses can also force retransmits; the data-direction
  // events must cover at least the unique lost segments.
  EXPECT_GT(data_drops, 0u);
  EXPECT_EQ(data_drops, rig.s1_to_s2->packets_dropped());
}

TEST(ClosedLoop, CleanTcpTransferProducesNoAnomalyEvents) {
  Rig rig;
  traffic::TcpReceiver receiver;
  rig.h2->add_app(&receiver);
  traffic::TcpSender sender(*rig.h1, rig.h2->addr(), 45001, 400);
  rig.h1->add_app(&sender);
  sender.start();
  rig.net.simulator().run();
  rig.finish();

  ASSERT_TRUE(sender.done());
  for (const auto& stored : rig.store->all()) {
    EXPECT_EQ(stored.event.type, EventType::kPathChange) << stored.event.to_string();
  }
}

}  // namespace
}  // namespace netseer::core
