// Property tests of Algorithm 1's invariants under randomized workloads,
// swept across table sizes and report intervals (TEST_P).
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "core/group_cache.h"
#include "util/rng.h"

namespace netseer::core {
namespace {

struct Params {
  std::size_t entries;
  std::uint32_t report_interval;
  int flows;
  int packets;
};

class GroupCacheProperty : public ::testing::TestWithParam<Params> {};

packet::FlowKey random_flow(util::Rng& rng, int universe) {
  packet::FlowKey flow;
  flow.src = packet::Ipv4Addr::from_octets(10, 0, 0, 1);
  flow.dst = packet::Ipv4Addr::from_octets(10, 0, 0, 2);
  flow.proto = 6;
  flow.sport = static_cast<std::uint16_t>(rng.uniform(static_cast<std::uint64_t>(universe)));
  flow.dport = 80;
  return flow;
}

TEST_P(GroupCacheProperty, NeverMissesAFlowAndCountersReconcile) {
  const auto params = GetParam();
  GroupCache cache(
      GroupCacheConfig{.entries = params.entries, .report_interval = params.report_interval});
  util::Rng rng(params.entries * 31 + params.report_interval);

  std::unordered_map<std::uint64_t, std::uint64_t> offered_per_flow;
  std::unordered_map<std::uint64_t, std::uint64_t> reported_per_flow;

  const auto emit = [&](const FlowEvent& out) {
    reported_per_flow[out.flow.hash64()] += out.counter;
  };
  for (int i = 0; i < params.packets; ++i) {
    const auto flow = random_flow(rng, params.flows);
    ++offered_per_flow[flow.hash64()];
    cache.offer(make_event(EventType::kDrop, flow, 1, 0), emit);
  }
  cache.flush(emit);

  // Invariant 1 (zero FN): every offered flow was reported at least once.
  // Invariant 2 (lossless counting): per-flow counters reconcile exactly.
  for (const auto& [hash, offered] : offered_per_flow) {
    const auto it = reported_per_flow.find(hash);
    ASSERT_NE(it, reported_per_flow.end()) << "flow never reported";
    EXPECT_EQ(it->second, offered) << "counter mismatch";
  }
  // Invariant 3: no phantom flows.
  for (const auto& [hash, reported] : reported_per_flow) {
    EXPECT_TRUE(offered_per_flow.contains(hash));
    (void)reported;
  }
  EXPECT_EQ(cache.offered(), static_cast<std::uint64_t>(params.packets));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupCacheProperty,
    ::testing::Values(
        // Plenty of space: no collisions.
        Params{4096, 64, 100, 20000},
        // Heavy collision pressure: more flows than entries.
        Params{64, 64, 1000, 20000},
        // Pathological: single entry.
        Params{1, 16, 50, 5000},
        // Tiny report interval: counter reports dominate.
        Params{1024, 1, 200, 10000},
        // Huge report interval: flush recovers everything.
        Params{1024, 1000000, 200, 10000},
        // Degenerate: zero-entry cache reports per packet.
        Params{0, 64, 100, 2000}),
    [](const auto& info) {
      return "e" + std::to_string(info.param.entries) + "_c" +
             std::to_string(info.param.report_interval) + "_f" +
             std::to_string(info.param.flows);
    });

}  // namespace
}  // namespace netseer::core
