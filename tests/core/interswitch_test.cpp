#include "core/detect/interswitch.h"

#include <gtest/gtest.h>

#include "packet/builder.h"

namespace netseer::core {
namespace {

packet::FlowKey flow(std::uint16_t sport) {
  return packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                         packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, sport, 80};
}

packet::Packet data(std::uint16_t sport) { return packet::make_tcp(flow(sport), 100); }

struct DropLog {
  std::vector<std::pair<packet::FlowKey, std::uint32_t>> drops;
  InterSwitchTx::EmitDrop fn() {
    return [this](const packet::FlowKey& f, std::uint32_t seq) { drops.push_back({f, seq}); };
  }
};

TEST(InterSwitchTx, AssignsConsecutiveSequence) {
  InterSwitchTx tx(InterSwitchConfig{});
  DropLog log;
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto pkt = data(1);
    tx.on_tx(pkt, log.fn());
    ASSERT_TRUE(pkt.seq_tag.has_value());
    EXPECT_EQ(*pkt.seq_tag, i);
  }
  EXPECT_EQ(tx.packets_sent(), 10u);
}

TEST(InterSwitchRx, StripsTagAndTracksSequence) {
  InterSwitchTx tx(InterSwitchConfig{});
  InterSwitchRx rx(InterSwitchConfig{});
  DropLog log;
  for (int i = 0; i < 10; ++i) {
    auto pkt = data(1);
    tx.on_tx(pkt, log.fn());
    const auto gap = rx.on_rx(pkt);
    EXPECT_FALSE(gap.has_value());
    EXPECT_FALSE(pkt.seq_tag.has_value());  // stripped
  }
  EXPECT_EQ(rx.received(), 10u);
  EXPECT_EQ(rx.gaps(), 0u);
}

TEST(InterSwitchRx, UntaggedPacketsIgnored) {
  InterSwitchRx rx(InterSwitchConfig{});
  auto pkt = data(1);
  EXPECT_FALSE(rx.on_rx(pkt).has_value());
  EXPECT_EQ(rx.received(), 0u);
}

TEST(InterSwitchRx, DetectsSingleLoss) {
  InterSwitchTx tx(InterSwitchConfig{});
  InterSwitchRx rx(InterSwitchConfig{});
  DropLog log;

  auto p0 = data(1);
  tx.on_tx(p0, log.fn());
  (void)rx.on_rx(p0);

  auto lost = data(2);
  tx.on_tx(lost, log.fn());  // seq 1, never delivered

  auto p2 = data(3);
  tx.on_tx(p2, log.fn());
  const auto gap = rx.on_rx(p2);
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(gap->start, 1u);
  EXPECT_EQ(gap->end, 1u);
  EXPECT_EQ(rx.gap_packets(), 1u);
}

TEST(InterSwitchRx, DetectsBurstLoss) {
  InterSwitchTx tx(InterSwitchConfig{});
  InterSwitchRx rx(InterSwitchConfig{});
  DropLog log;

  auto first = data(1);
  tx.on_tx(first, log.fn());
  (void)rx.on_rx(first);
  for (int i = 0; i < 5; ++i) {
    auto lost = data(2);
    tx.on_tx(lost, log.fn());
  }
  auto survivor = data(3);
  tx.on_tx(survivor, log.fn());
  const auto gap = rx.on_rx(survivor);
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(gap->start, 1u);
  EXPECT_EQ(gap->end, 5u);
}

TEST(InterSwitch, NotificationRecoversFlowOfLostPacket) {
  InterSwitchTx tx(InterSwitchConfig{});
  DropLog log;

  // Transmit seqs 0..4; pretend seq 2 (flow sport=777) was lost.
  for (std::uint16_t i = 0; i < 5; ++i) {
    auto pkt = data(i == 2 ? 777 : i);
    tx.on_tx(pkt, log.fn());
  }
  tx.on_notification(2, 2, log.fn());
  ASSERT_EQ(log.drops.size(), 1u);
  EXPECT_EQ(log.drops[0].first, flow(777));
  EXPECT_EQ(log.drops[0].second, 2u);
  EXPECT_EQ(tx.drops_reported(), 1u);
  EXPECT_EQ(tx.lookup_misses(), 0u);
}

TEST(InterSwitch, DuplicateNotificationsIgnored) {
  InterSwitchTx tx(InterSwitchConfig{});
  DropLog log;
  for (std::uint16_t i = 0; i < 5; ++i) {
    auto pkt = data(i);
    tx.on_tx(pkt, log.fn());
  }
  // The downstream sends three redundant copies (§3.3).
  tx.on_notification(2, 2, log.fn());
  tx.on_notification(2, 2, log.fn());
  tx.on_notification(2, 2, log.fn());
  EXPECT_EQ(log.drops.size(), 1u);
  EXPECT_EQ(tx.duplicate_notifications(), 2u);
}

TEST(InterSwitch, MultiPacketRangeDrainsViaSubsequentPackets) {
  // ASICs cannot loop in a stage: a 4-packet gap needs the notification
  // plus subsequent transmissions to trigger the remaining lookups.
  InterSwitchTx tx(InterSwitchConfig{});
  DropLog log;
  for (std::uint16_t i = 0; i < 10; ++i) {
    auto pkt = data(i);
    tx.on_tx(pkt, log.fn());
  }
  tx.on_notification(3, 6, log.fn());  // 4 missing packets
  EXPECT_EQ(log.drops.size(), 1u);     // notification triggered one lookup
  EXPECT_TRUE(tx.has_pending());

  auto trigger = data(100);
  tx.on_tx(trigger, log.fn());
  EXPECT_EQ(log.drops.size(), 2u);

  for (int i = 0; i < 2; ++i) {
    auto next = data(100);
    tx.on_tx(next, log.fn());
  }
  EXPECT_EQ(log.drops.size(), 4u);
  EXPECT_FALSE(tx.has_pending());
  // Flows recovered in range order 3,4,5,6.
  EXPECT_EQ(log.drops[0].first, flow(3));
  EXPECT_EQ(log.drops[3].first, flow(6));
}

TEST(InterSwitch, DrainBudgetFlushesPending) {
  InterSwitchTx tx(InterSwitchConfig{});
  DropLog log;
  for (std::uint16_t i = 0; i < 10; ++i) {
    auto pkt = data(i);
    tx.on_tx(pkt, log.fn());
  }
  tx.on_notification(1, 8, log.fn());
  tx.drain(100, log.fn());
  EXPECT_EQ(log.drops.size(), 8u);
}

TEST(InterSwitch, RingOverwriteNeverReportsWrongPacket) {
  // Tiny ring: by the time the notification arrives, the slot has been
  // overwritten. NetSeer must miss the event rather than report the
  // wrong flow (§3.3).
  InterSwitchConfig config;
  config.ring_slots = 4;
  InterSwitchTx tx(config);
  DropLog log;
  for (std::uint16_t i = 0; i < 3; ++i) {
    auto pkt = data(i);
    tx.on_tx(pkt, log.fn());
  }
  // Overwrite the whole ring (4 more packets).
  for (std::uint16_t i = 0; i < 4; ++i) {
    auto pkt = data(100 + i);
    tx.on_tx(pkt, log.fn());
  }
  tx.on_notification(1, 1, log.fn());  // seq 1's slot now holds seq 5
  EXPECT_TRUE(log.drops.empty());
  EXPECT_EQ(tx.lookup_misses(), 1u);
}

TEST(InterSwitchRx, HugeGapResyncsInsteadOfFlooding) {
  InterSwitchConfig config;
  config.max_gap = 1000;
  InterSwitchRx rx(config);
  auto first = data(1);
  first.seq_tag = 0;
  (void)rx.on_rx(first);
  auto jumped = data(2);
  jumped.seq_tag = 50000;  // peer rebooted
  const auto gap = rx.on_rx(jumped);
  EXPECT_FALSE(gap.has_value());
  EXPECT_EQ(rx.resyncs(), 1u);
  // Next consecutive packet is clean.
  auto next = data(3);
  next.seq_tag = 50001;
  EXPECT_FALSE(rx.on_rx(next).has_value());
}

TEST(InterSwitchRx, SequenceWrapAround) {
  InterSwitchRx rx(InterSwitchConfig{});
  auto a = data(1);
  a.seq_tag = 0xfffffffe;
  (void)rx.on_rx(a);
  auto b = data(2);
  b.seq_tag = 0xffffffff;
  EXPECT_FALSE(rx.on_rx(b).has_value());
  auto c = data(3);
  c.seq_tag = 0;  // wrapped
  EXPECT_FALSE(rx.on_rx(c).has_value());
  // Loss across the wrap boundary.
  auto d = data(4);
  d.seq_tag = 2;  // seq 1 missing
  const auto gap = rx.on_rx(d);
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(gap->start, 1u);
  EXPECT_EQ(gap->end, 1u);
}

TEST(InterSwitch, SramAccounting) {
  InterSwitchConfig config;
  config.ring_slots = 1000;
  InterSwitchTx tx(config);
  EXPECT_EQ(tx.sram_bytes(), 1000u * InterSwitchConfig::kSlotBytes);
}

TEST(LossNotification, PacketShape) {
  const auto pkt = make_loss_notification(10, 20, 1);
  EXPECT_EQ(pkt.kind, packet::PacketKind::kLossNotify);
  const auto* payload = dynamic_cast<const LossNotifyPayload*>(pkt.control.get());
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->start(), 10u);
  EXPECT_EQ(payload->end(), 20u);
  EXPECT_EQ(payload->copy(), 1);
  EXPECT_EQ(pkt.wire_bytes(), 64u);  // tiny control frame
}

}  // namespace
}  // namespace netseer::core
