// Property test: the reliable reporter delivers every event exactly once
// for ANY management-network loss rate below 1 — parameterized sweep.
#include <gtest/gtest.h>

#include "backend/collector.h"
#include "backend/event_store.h"
#include "core/reliable.h"

namespace netseer::core {
namespace {

class ReliableProperty : public ::testing::TestWithParam<double> {};

TEST_P(ReliableProperty, ExactlyOnceDeliveryUnderLoss) {
  const double loss = GetParam();
  sim::Simulator sim;
  ReportChannel channel(sim, util::Rng(17), util::milliseconds(1), loss);
  backend::EventStore store;
  backend::Collector collector(sim, 100, channel, store);
  ReliableReporter reporter(sim, channel, 1, 100);
  channel.register_endpoint(1, [&](util::NodeId, const ReportMsg& msg) {
    reporter.on_message(msg);
  });

  constexpr int kBatches = 40;
  for (std::uint16_t s = 0; s < kBatches; ++s) {
    EventBatch batch;
    batch.switch_id = 1;
    auto ev = make_event(EventType::kDrop,
                         packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                                         packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, s, 80},
                         1, 0);
    batch.events.push_back(ev);
    reporter.submit(std::move(batch));
  }
  sim.run_until(util::seconds(60));

  EXPECT_EQ(store.size(), static_cast<std::size_t>(kBatches));
  EXPECT_TRUE(reporter.idle());
  // Exactly once: each flow appears exactly one time.
  for (std::uint16_t s = 0; s < kBatches; ++s) {
    backend::EventQuery query;
    query.flow = packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                                 packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, s, 80};
    EXPECT_EQ(store.query(query).size(), 1u) << "sport " << s;
  }
  if (loss > 0.05) EXPECT_GT(reporter.retransmits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, ReliableProperty,
                         ::testing::Values(0.0, 0.05, 0.15, 0.3, 0.5, 0.7),
                         [](const auto& info) {
                           return "loss" + std::to_string(static_cast<int>(info.param * 100));
                         });

}  // namespace
}  // namespace netseer::core
