#include <gtest/gtest.h>

#include "core/acl_agg.h"
#include "core/cpu_runtime.h"
#include "core/detect/path_change.h"
#include "core/switch_cpu.h"

namespace netseer::core {
namespace {

packet::FlowKey flow(std::uint16_t sport) {
  return packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                         packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, sport, 80};
}

FlowEvent ev(std::uint16_t sport, std::uint16_t counter = 1) {
  auto event = make_event(EventType::kDrop, flow(sport), 1, 0);
  event.counter = counter;
  return event;
}

TEST(FpEliminator, FirstReportAdmitted) {
  FpEliminator fp(FpEliminatorConfig{});
  EXPECT_TRUE(fp.admit(ev(1), 0));
  EXPECT_EQ(fp.processed(), 1u);
  EXPECT_EQ(fp.eliminated(), 0u);
}

TEST(FpEliminator, DuplicateInitialReportEliminated) {
  FpEliminator fp(FpEliminatorConfig{.window = util::milliseconds(50)});
  EXPECT_TRUE(fp.admit(ev(1), 0));
  EXPECT_FALSE(fp.admit(ev(1), util::milliseconds(1)));  // collision ping-pong duplicate
  EXPECT_EQ(fp.eliminated(), 1u);
}

TEST(FpEliminator, CounterReportsPassThrough) {
  FpEliminator fp(FpEliminatorConfig{});
  EXPECT_TRUE(fp.admit(ev(1), 0));
  EXPECT_TRUE(fp.admit(ev(1, /*counter=*/64), util::milliseconds(1)));
}

TEST(FpEliminator, StaleEntryReadmits) {
  FpEliminator fp(FpEliminatorConfig{.window = util::milliseconds(10)});
  EXPECT_TRUE(fp.admit(ev(1), 0));
  // A genuinely new occurrence after the window is a new event.
  EXPECT_TRUE(fp.admit(ev(1), util::milliseconds(20)));
}

TEST(FpEliminator, DistinctFlowsIndependent) {
  FpEliminator fp(FpEliminatorConfig{});
  EXPECT_TRUE(fp.admit(ev(1), 0));
  EXPECT_TRUE(fp.admit(ev(2), 0));
  EXPECT_EQ(fp.map_size(), 2u);
}

TEST(FpEliminator, DistinctTypesIndependent) {
  FpEliminator fp(FpEliminatorConfig{});
  EXPECT_TRUE(fp.admit(ev(1), 0));
  auto pause = make_event(EventType::kPause, flow(1), 1, 0);
  EXPECT_TRUE(fp.admit(pause, 0));
}

TEST(FpEliminator, OffloadAndRecomputeAgree) {
  FpEliminator offload(FpEliminatorConfig{.use_precomputed_hash = true});
  FpEliminator recompute(FpEliminatorConfig{.use_precomputed_hash = false});
  for (std::uint16_t s = 0; s < 100; ++s) {
    EXPECT_EQ(offload.admit(ev(s), 0), recompute.admit(ev(s), 0));
    EXPECT_EQ(offload.admit(ev(s), 1), recompute.admit(ev(s), 1));
  }
  EXPECT_EQ(offload.eliminated(), recompute.eliminated());
}

TEST(FpEliminator, PruneKeepsMapBounded) {
  FpEliminatorConfig config;
  config.window = util::milliseconds(1);
  config.max_entries = 100;
  FpEliminator fp(config);
  for (std::uint16_t s = 0; s < 1000; ++s) {
    (void)fp.admit(ev(s), util::milliseconds(s * 2));  // all stale by insertion time
  }
  EXPECT_LE(fp.map_size(), 200u);
}

TEST(SwitchCpu, ForwardsAdmittedEventsInReports) {
  sim::Simulator sim;
  std::vector<EventBatch> reports;
  SwitchCpuConfig config;
  config.report_batch = 10;
  SwitchCpu cpu(sim, 42, config, [&](EventBatch&& b) { reports.push_back(std::move(b)); });

  EventBatch in;
  for (std::uint16_t s = 0; s < 25; ++s) in.events.push_back(ev(s));
  cpu.on_batch(std::move(in));
  sim.run();
  cpu.flush();

  std::size_t total = 0;
  for (const auto& r : reports) {
    total += r.events.size();
    EXPECT_EQ(r.switch_id, 42u);
    for (const auto& e : r.events) EXPECT_EQ(e.switch_id, 42u);
  }
  EXPECT_EQ(total, 25u);
  EXPECT_EQ(cpu.events_forwarded(), 25u);
}

TEST(SwitchCpu, EliminatesDuplicates) {
  sim::Simulator sim;
  std::size_t forwarded = 0;
  SwitchCpu cpu(sim, 42, SwitchCpuConfig{}, [&](EventBatch&& b) { forwarded += b.events.size(); });

  EventBatch in;
  for (int i = 0; i < 10; ++i) in.events.push_back(ev(1));  // same initial report x10
  cpu.on_batch(std::move(in));
  sim.run();
  cpu.flush();
  EXPECT_EQ(forwarded, 1u);
  EXPECT_EQ(cpu.fp().eliminated(), 9u);
}

TEST(SwitchCpu, ServiceTimeDelaysProcessing) {
  sim::Simulator sim;
  std::size_t forwarded = 0;
  SwitchCpuConfig config;
  config.per_event_cost = util::microseconds(1);
  config.report_batch = 1000;
  SwitchCpu cpu(sim, 42, config, [&](EventBatch&& b) { forwarded += b.events.size(); });

  EventBatch in;
  for (std::uint16_t s = 0; s < 100; ++s) in.events.push_back(ev(s));
  cpu.on_batch(std::move(in));
  sim.run_until(util::microseconds(50));
  EXPECT_EQ(forwarded, 0u);  // still "processing"
  sim.run();
  cpu.flush();
  EXPECT_EQ(forwarded, 100u);
  EXPECT_GE(sim.now(), util::microseconds(100));
}

TEST(SwitchCpu, FlushTimerEmitsPartialReports) {
  sim::Simulator sim;
  std::vector<EventBatch> reports;
  SwitchCpuConfig config;
  config.report_batch = 50;
  SwitchCpu cpu(sim, 42, config, [&](EventBatch&& b) { reports.push_back(std::move(b)); });
  EventBatch in;
  in.events.push_back(ev(1));
  cpu.on_batch(std::move(in));
  sim.run();  // flush timer fires at ~1ms
  EXPECT_EQ(reports.size(), 1u);
}

TEST(AclAggregator, FirstHitReported) {
  AclDropAggregator agg(100);
  std::vector<FlowEvent> out;
  agg.offer(7, ev(1), [&](const FlowEvent& e) { out.push_back(e); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, EventType::kAclDrop);
  EXPECT_EQ(out[0].acl_rule_id, 7);
  EXPECT_EQ(out[0].counter, 1);
}

TEST(AclAggregator, AggregatesAcrossFlows) {
  // 1000 flows hitting one rule: a handful of reports, not 1000.
  AclDropAggregator agg(100);
  std::vector<FlowEvent> out;
  for (std::uint16_t s = 0; s < 1000; ++s) {
    agg.offer(7, ev(s), [&](const FlowEvent& e) { out.push_back(e); });
  }
  EXPECT_LE(out.size(), 11u);
  EXPECT_EQ(agg.rule_hits(7), 1000u);
  // Counters reconcile.
  std::uint64_t total = 0;
  for (const auto& e : out) total += e.counter;
  EXPECT_LE(total, 1000u);
  EXPECT_GE(total, 901u);  // last partial interval unreported
}

TEST(AclAggregator, RulesIndependent) {
  AclDropAggregator agg(100);
  int reports = 0;
  agg.offer(1, ev(1), [&](const FlowEvent&) { ++reports; });
  agg.offer(2, ev(2), [&](const FlowEvent&) { ++reports; });
  EXPECT_EQ(reports, 2);
  EXPECT_EQ(agg.rule_hits(1), 1u);
  EXPECT_EQ(agg.rule_hits(2), 1u);
  EXPECT_EQ(agg.rule_hits(3), 0u);
}

TEST(PathChange, NewFlowThenKnown) {
  PathChangeDetector det(PathChangeConfig{});
  EXPECT_EQ(det.observe(flow(1), 0, 1, 0), PathChangeDetector::Observation::kNewFlow);
  EXPECT_EQ(det.observe(flow(1), 0, 1, 10), PathChangeDetector::Observation::kKnownPath);
}

TEST(PathChange, PortChangeDetected) {
  PathChangeDetector det(PathChangeConfig{});
  (void)det.observe(flow(1), 0, 1, 0);
  EXPECT_EQ(det.observe(flow(1), 0, 2, 10), PathChangeDetector::Observation::kPathChanged);
  EXPECT_EQ(det.observe(flow(1), 0, 2, 20), PathChangeDetector::Observation::kKnownPath);
  EXPECT_EQ(det.changes(), 1u);
}

TEST(PathChange, IngressChangeAlsoDetected) {
  PathChangeDetector det(PathChangeConfig{});
  (void)det.observe(flow(1), 0, 1, 0);
  EXPECT_EQ(det.observe(flow(1), 3, 1, 10), PathChangeDetector::Observation::kPathChanged);
}

TEST(PathChange, ExpiryMakesFlowNewAgain) {
  PathChangeConfig config;
  config.expiry = util::milliseconds(10);
  PathChangeDetector det(config);
  (void)det.observe(flow(1), 0, 1, 0);
  EXPECT_EQ(det.observe(flow(1), 0, 1, util::milliseconds(20)),
            PathChangeDetector::Observation::kNewFlow);
}

TEST(PathChange, CollisionEvictsSilently) {
  PathChangeConfig config;
  config.entries = 1;
  PathChangeDetector det(config);
  EXPECT_EQ(det.observe(flow(1), 0, 1, 0), PathChangeDetector::Observation::kNewFlow);
  EXPECT_EQ(det.observe(flow(2), 0, 1, 1), PathChangeDetector::Observation::kNewFlow);
  // Flow 1 evicted: reported as new again, never as a (wrong) change.
  EXPECT_EQ(det.observe(flow(1), 0, 1, 2), PathChangeDetector::Observation::kNewFlow);
}

}  // namespace
}  // namespace netseer::core
