#include "traffic/tcp.h"

#include <gtest/gtest.h>

#include "fabric/network.h"

namespace netseer::traffic {
namespace {

using packet::Ipv4Addr;

struct Rig {
  explicit Rig(std::int64_t queue_bytes = 300 * 1024, std::int64_t ecn_bytes = 0,
               util::BitRate bottleneck = util::BitRate::gbps(1))
      : net(3) {
    pdp::SwitchConfig sc;
    sc.num_ports = 8;
    sc.port_rate = bottleneck;
    sc.mmu.queue_capacity_bytes = queue_bytes;
    sc.mmu.ecn_mark_bytes = ecn_bytes;
    sw = &net.add_switch("s", sc);
    a = &net.add_host("a", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(10));
    b = &net.add_host("b", Ipv4Addr::from_octets(10, 0, 0, 2), util::BitRate::gbps(10));
    c = &net.add_host("c", Ipv4Addr::from_octets(10, 0, 0, 3), util::BitRate::gbps(10));
    net.connect_host(*sw, 0, *a, util::microseconds(2));
    net.connect_host(*sw, 1, *b, util::microseconds(2));
    net.connect_host(*sw, 2, *c, util::microseconds(2));
    net.compute_routes();
    b->add_app(&receiver);
  }

  fabric::Network net;
  pdp::Switch* sw;
  net::Host* a;
  net::Host* b;
  net::Host* c;
  TcpReceiver receiver;
};

TEST(Tcp, TransfersAllSegmentsOnCleanPath) {
  Rig rig;
  TcpSender sender(*rig.a, rig.b->addr(), 40000, 500);
  rig.a->add_app(&sender);
  sender.start();
  rig.net.simulator().run();

  EXPECT_TRUE(sender.done());
  EXPECT_EQ(sender.acked(), 500u);
  EXPECT_EQ(sender.retransmissions(), 0u);
  EXPECT_EQ(sender.timeouts(), 0u);
  packet::FlowKey flow{rig.a->addr(), rig.b->addr(), 6, 40000, 8080};
  EXPECT_EQ(rig.receiver.received_prefix(flow), 500u);
}

TEST(Tcp, SlowStartGrowsWindow) {
  Rig rig;
  TcpSender sender(*rig.a, rig.b->addr(), 40000, 200);
  rig.a->add_app(&sender);
  sender.start();
  rig.net.simulator().run();
  EXPECT_TRUE(sender.done());
  EXPECT_GT(sender.cwnd(), TcpConfig{}.initial_cwnd);
}

TEST(Tcp, RecoversFromLossViaFastRetransmit) {
  Rig rig;
  // Lossy downlink to b: the 2nd link created for host b is sw->b.
  net::LinkFaultModel faults;
  faults.drop_prob = 0.03;
  rig.sw->link(1)->set_fault_model(faults);

  TcpSender sender(*rig.a, rig.b->addr(), 40001, 800);
  rig.a->add_app(&sender);
  sender.start();
  rig.net.simulator().run_until(util::seconds(5));

  EXPECT_TRUE(sender.done());
  EXPECT_GT(sender.retransmissions(), 0u);
  packet::FlowKey flow{rig.a->addr(), rig.b->addr(), 6, 40001, 8080};
  EXPECT_EQ(rig.receiver.received_prefix(flow), 800u);
}

TEST(Tcp, SurvivesTotalBlackholeWindow) {
  Rig rig;
  rig.sw->link(1)->set_up(false);
  (void)rig.net.simulator().schedule_at(util::milliseconds(30), [&] {
    rig.sw->link(1)->set_up(true);
  });
  TcpSender sender(*rig.a, rig.b->addr(), 40002, 50);
  rig.a->add_app(&sender);
  sender.start();
  rig.net.simulator().run_until(util::seconds(5));
  EXPECT_TRUE(sender.done());
  EXPECT_GT(sender.timeouts(), 0u);
}

TEST(Tcp, CongestionCollapsesWindowUnderContention) {
  Rig rig(/*queue_bytes=*/20000);
  TcpSender s1(*rig.a, rig.b->addr(), 40003, 3000);
  TcpSender s2(*rig.c, rig.b->addr(), 40004, 3000);
  rig.a->add_app(&s1);
  rig.c->add_app(&s2);
  s1.start();
  s2.start();
  rig.net.simulator().run_until(util::seconds(10));

  EXPECT_TRUE(s1.done());
  EXPECT_TRUE(s2.done());
  // Two 10G senders into a 1G port with a 20 KB queue: loss happened and
  // both backed off at least once.
  EXPECT_GT(s1.retransmissions() + s2.retransmissions(), 0u);
  EXPECT_GT(rig.sw->drops(pdp::DropReason::kCongestion), 0u);
}

TEST(Tcp, EcnMarkingAvoidsDrops) {
  // With a DCTCP-style marking threshold well under the queue limit, the
  // sender backs off on ECE before the queue ever overflows.
  Rig marked(/*queue_bytes=*/300 * 1024, /*ecn_bytes=*/15000);
  TcpSender sender(*marked.a, marked.b->addr(), 40005, 2000);
  marked.a->add_app(&sender);
  sender.start();
  marked.net.simulator().run_until(util::seconds(10));

  EXPECT_TRUE(sender.done());
  EXPECT_GT(sender.ecn_backoffs(), 0u);
  EXPECT_EQ(marked.sw->drops(pdp::DropReason::kCongestion), 0u);
  EXPECT_EQ(sender.retransmissions(), 0u);
}

TEST(Tcp, SendersAreIndependentPerPort) {
  Rig rig;
  TcpSender s1(*rig.a, rig.b->addr(), 41000, 100);
  TcpSender s2(*rig.a, rig.b->addr(), 41001, 100);
  rig.a->add_app(&s1);
  rig.a->add_app(&s2);
  s1.start();
  s2.start();
  rig.net.simulator().run();
  EXPECT_TRUE(s1.done());
  EXPECT_TRUE(s2.done());
}

}  // namespace
}  // namespace netseer::traffic
