#include "traffic/generator.h"

#include <gtest/gtest.h>

#include "fabric/network.h"
#include "traffic/rpc.h"

namespace netseer::traffic {
namespace {

using packet::Ipv4Addr;

struct Net {
  Net() : net(5) {
    pdp::SwitchConfig sc;
    sc.num_ports = 8;
    sc.port_rate = util::BitRate::gbps(25);
    sw = &net.add_switch("s", sc);
    a = &net.add_host("a", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(25));
    b = &net.add_host("b", Ipv4Addr::from_octets(10, 0, 0, 2), util::BitRate::gbps(25));
    net.connect_host(*sw, 0, *a, util::microseconds(1));
    net.connect_host(*sw, 1, *b, util::microseconds(1));
    net.compute_routes();
  }
  fabric::Network net;
  pdp::Switch* sw;
  net::Host* a;
  net::Host* b;
};

TEST(FlowGenerator, GeneratesApproximatelyTargetLoad) {
  Net rig;
  CountingReceiver receiver;
  rig.b->add_app(&receiver);

  GeneratorConfig config;
  config.sizes = &web();
  config.load = 0.5;
  config.flow_rate = util::BitRate::gbps(5);
  config.stop = util::milliseconds(50);
  FlowGenerator gen(*rig.a, {rig.b->addr()}, config, util::Rng(9));
  gen.start();
  rig.net.simulator().run();

  EXPECT_GT(gen.flows_started(), 50u);
  EXPECT_EQ(gen.flows_completed(), gen.flows_started());
  // Offered load within a factor of the target (Poisson + small window).
  const double offered = static_cast<double>(gen.bytes_sent()) * 8 /
                         util::to_seconds(util::milliseconds(50)) /
                         static_cast<double>(util::BitRate::gbps(25).bits_per_second());
  EXPECT_GT(offered, 0.15);
  EXPECT_LT(offered, 1.2);
  EXPECT_EQ(receiver.packets(), gen.packets_sent());
}

TEST(FlowGenerator, UsesDistinctFlows) {
  Net rig;
  GeneratorConfig config;
  config.sizes = &web();
  config.load = 0.3;
  config.stop = util::milliseconds(10);
  FlowGenerator gen(*rig.a, {rig.b->addr()}, config, util::Rng(9));
  gen.start();
  rig.net.simulator().run();
  EXPECT_GT(gen.flows_started(), 5u);
}

TEST(FlowGenerator, NoDestinationsNoTraffic) {
  Net rig;
  GeneratorConfig config;
  FlowGenerator gen(*rig.a, {}, config, util::Rng(9));
  gen.start();
  rig.net.simulator().run();
  EXPECT_EQ(gen.flows_started(), 0u);
}

TEST(Incast, AllBytesArriveOrDrop) {
  Net rig;
  CountingReceiver receiver;
  rig.b->add_app(&receiver);
  auto& c = rig.net.add_host("c", Ipv4Addr::from_octets(10, 0, 0, 3), util::BitRate::gbps(25));
  rig.net.connect_host(*rig.sw, 2, c, util::microseconds(1));
  rig.net.compute_routes();

  launch_incast({rig.a, &c}, rig.b->addr(), 50'000, 1000, util::microseconds(10));
  rig.net.simulator().run();
  // 2 senders x 50 packets; default queues are large enough.
  EXPECT_EQ(receiver.packets(), 100u);
}

TEST(Rpc, RequestResponseLatency) {
  Net rig;
  RpcServer server;
  rig.b->add_app(&server);
  RpcClient::Config config;
  config.server = rig.b->addr();
  config.interval = util::microseconds(100);
  config.stop = util::milliseconds(5);
  RpcClient client(*rig.a, config, util::Rng(4));
  rig.a->add_app(&client);
  client.start();
  rig.net.simulator().run();
  client.finish();

  ASSERT_GT(client.records().size(), 10u);
  for (const auto& record : client.records()) {
    EXPECT_GE(record.latency, 0) << "rpc " << record.id << " timed out";
    // >= 2 link RTT + processing.
    EXPECT_GT(record.latency, util::microseconds(4));
    EXPECT_LT(record.latency, util::milliseconds(1));
  }
  EXPECT_EQ(server.requests(), client.records().size());
}

TEST(Rpc, SlowPeriodRaisesLatency) {
  Net rig;
  RpcServer server;
  server.add_slow_period(util::milliseconds(2), util::milliseconds(4), util::milliseconds(2));
  rig.b->add_app(&server);
  RpcClient::Config config;
  config.server = rig.b->addr();
  config.interval = util::microseconds(100);
  config.stop = util::milliseconds(6);
  config.timeout = util::milliseconds(100);
  RpcClient client(*rig.a, config, util::Rng(4));
  rig.a->add_app(&client);
  client.start();
  rig.net.simulator().run();
  client.finish();

  bool saw_slow = false, saw_fast = false;
  for (const auto& record : client.records()) {
    if (record.latency < 0) continue;
    if (server.slow_at(record.sent_at)) {
      EXPECT_GT(record.latency, util::milliseconds(1));
      saw_slow = true;
    } else if (record.sent_at < util::milliseconds(2)) {
      EXPECT_LT(record.latency, util::milliseconds(1));
      saw_fast = true;
    }
  }
  EXPECT_TRUE(saw_slow);
  EXPECT_TRUE(saw_fast);
}

TEST(Rpc, TimeoutOnBlackhole) {
  Net rig;
  // No server app on b: requests arrive but nothing responds.
  RpcClient::Config config;
  config.server = rig.b->addr();
  config.interval = util::microseconds(200);
  config.stop = util::milliseconds(2);
  config.timeout = util::milliseconds(5);
  RpcClient client(*rig.a, config, util::Rng(4));
  rig.a->add_app(&client);
  client.start();
  rig.net.simulator().run();
  client.finish();
  ASSERT_FALSE(client.records().empty());
  for (const auto& record : client.records()) EXPECT_EQ(record.latency, -1);
}

}  // namespace
}  // namespace netseer::traffic
