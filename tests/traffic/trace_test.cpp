#include "traffic/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "fabric/network.h"
#include "traffic/generator.h"

namespace netseer::traffic {
namespace {

using packet::Ipv4Addr;

TEST(Trace, ParsesWellFormedCsv) {
  std::stringstream in(
      "start_us,src,dst,bytes,sport,dport\n"
      "# a comment\n"
      "0,10.0.0.1,10.0.1.1,14600,10001,80\n"
      "250,10.0.0.2,10.0.1.1,500\n"
      "\n"
      "1000,10.0.0.1,10.0.0.2,2000,40000,443\n");
  std::vector<TraceRecord> records;
  ASSERT_TRUE(parse_trace(in, records));
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].start, 0);
  EXPECT_EQ(records[0].bytes, 14600u);
  EXPECT_EQ(records[0].sport, 10001);
  EXPECT_EQ(records[1].start, util::microseconds(250));
  EXPECT_EQ(records[1].sport, 0);   // defaulted
  EXPECT_EQ(records[1].dport, 80);  // defaulted
  EXPECT_EQ(records[2].dport, 443);
}

TEST(Trace, MalformedLinesReportedButSkipped) {
  std::stringstream in(
      "0,10.0.0.1,10.0.1.1,1000\n"
      "garbage line\n"
      "5,not-an-ip,10.0.1.1,1000\n"
      "10,10.0.0.1,10.0.1.1,1000\n");
  std::vector<TraceRecord> records;
  EXPECT_FALSE(parse_trace(in, records));
  EXPECT_EQ(records.size(), 2u);  // the two good lines survive
}

TEST(Trace, WriteParseRoundTrip) {
  std::vector<TraceRecord> records;
  records.push_back(TraceRecord{util::microseconds(42), Ipv4Addr::from_octets(10, 0, 0, 1),
                                Ipv4Addr::from_octets(10, 0, 1, 1), 12345, 1111, 80});
  records.push_back(TraceRecord{util::microseconds(99), Ipv4Addr::from_octets(10, 0, 0, 2),
                                Ipv4Addr::from_octets(10, 0, 1, 2), 67, 2222, 443});
  std::stringstream buffer;
  write_trace(buffer, records);
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(parse_trace(buffer, loaded));
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].start, records[i].start);
    EXPECT_EQ(loaded[i].src, records[i].src);
    EXPECT_EQ(loaded[i].dst, records[i].dst);
    EXPECT_EQ(loaded[i].bytes, records[i].bytes);
    EXPECT_EQ(loaded[i].sport, records[i].sport);
    EXPECT_EQ(loaded[i].dport, records[i].dport);
  }
}

TEST(Trace, ReplayDeliversEveryByte) {
  fabric::Network net(3);
  pdp::SwitchConfig sc;
  sc.num_ports = 4;
  auto& sw = net.add_switch("s", sc);
  auto& a = net.add_host("a", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(10));
  auto& b = net.add_host("b", Ipv4Addr::from_octets(10, 0, 0, 2), util::BitRate::gbps(10));
  net.connect_host(sw, 0, a, util::microseconds(1));
  net.connect_host(sw, 1, b, util::microseconds(1));
  net.compute_routes();
  CountingReceiver receiver;
  b.add_app(&receiver);

  std::vector<TraceRecord> records;
  records.push_back(TraceRecord{0, a.addr(), b.addr(), 5000, 1111, 80});
  records.push_back(
      TraceRecord{util::microseconds(100), a.addr(), b.addr(), 700, 2222, 80});
  // Unknown source: skipped.
  records.push_back(TraceRecord{0, Ipv4Addr::from_octets(1, 1, 1, 1), b.addr(), 100, 1, 1});

  TraceReplayer replayer({&a, &b});
  EXPECT_EQ(replayer.replay(records), 2u);
  EXPECT_EQ(replayer.skipped_unknown_sources(), 1u);
  net.simulator().run();
  // 5000 -> 5 packets, 700 -> 1 packet.
  EXPECT_EQ(receiver.packets(), 6u);
}

TEST(Trace, ReplayHonorsStartTimes) {
  fabric::Network net(3);
  pdp::SwitchConfig sc;
  sc.num_ports = 4;
  auto& sw = net.add_switch("s", sc);
  auto& a = net.add_host("a", Ipv4Addr::from_octets(10, 0, 0, 1), util::BitRate::gbps(10));
  auto& b = net.add_host("b", Ipv4Addr::from_octets(10, 0, 0, 2), util::BitRate::gbps(10));
  net.connect_host(sw, 0, a, util::microseconds(1));
  net.connect_host(sw, 1, b, util::microseconds(1));
  net.compute_routes();
  CountingReceiver receiver;
  b.add_app(&receiver);

  TraceReplayer replayer({&a});
  replayer.replay({TraceRecord{util::milliseconds(5), a.addr(), b.addr(), 100, 1, 2}});
  net.simulator().run_until(util::milliseconds(4));
  EXPECT_EQ(receiver.packets(), 0u);
  net.simulator().run();
  EXPECT_EQ(receiver.packets(), 1u);
}

}  // namespace
}  // namespace netseer::traffic
