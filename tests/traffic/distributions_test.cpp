#include "traffic/distributions.h"

#include <gtest/gtest.h>

namespace netseer::traffic {
namespace {

TEST(EmpiricalCdf, RejectsMalformedInput) {
  EXPECT_THROW(EmpiricalCdf("x", {{100, 1.0}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf("x", {{100, 0.5}, {50, 1.0}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf("x", {{100, 0.8}, {200, 0.5}}), std::invalid_argument);
  EXPECT_THROW(EmpiricalCdf("x", {{100, 0.5}, {200, 0.9}}), std::invalid_argument);
}

TEST(EmpiricalCdf, SamplesWithinSupport) {
  util::Rng rng(1);
  const auto& cdf = dctcp();
  for (int i = 0; i < 10000; ++i) {
    const auto s = cdf.sample(rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, static_cast<std::uint64_t>(cdf.points().back().bytes));
  }
}

TEST(EmpiricalCdf, SampleDistributionMatchesCdf) {
  util::Rng rng(2);
  const auto& cdf = web();
  const int n = 100000;
  int below_1k = 0;
  for (int i = 0; i < n; ++i) below_1k += (cdf.sample(rng) <= 1000);
  EXPECT_NEAR(static_cast<double>(below_1k) / n, cdf.cdf(1000), 0.02);
}

TEST(EmpiricalCdf, CdfMonotone) {
  const auto& cdf = vl2();
  double prev = -1;
  for (double bytes = 50; bytes < 2e8; bytes *= 2) {
    const double p = cdf.cdf(bytes);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(cdf.cdf(1e9), 1.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(1), 0.0);
}

TEST(EmpiricalCdf, MeanIsPlausible) {
  // Empirical sample mean should be near the analytic mean.
  util::Rng rng(3);
  for (const auto* cdf : all_workloads()) {
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(cdf->sample(rng));
    const double sample_mean = sum / n;
    EXPECT_NEAR(sample_mean / cdf->mean_bytes(), 1.0, 0.25) << cdf->name();
  }
}

TEST(Workloads, FiveWorkloadsWithDistinctShapes) {
  ASSERT_EQ(all_workloads().size(), 5u);
  // DCTCP (web search) is much heavier than WEB (small requests).
  EXPECT_GT(dctcp().mean_bytes(), 20 * web().mean_bytes());
  // VL2 has a heavy tail: mean far above the median region.
  EXPECT_GT(vl2().mean_bytes(), 10000);
  EXPECT_GT(vl2().cdf(2000), 0.5);  // yet most flows are tiny
}

TEST(Workloads, NamesMatchPaper) {
  EXPECT_EQ(dctcp().name(), "DCTCP");
  EXPECT_EQ(vl2().name(), "VL2");
  EXPECT_EQ(cache().name(), "CACHE");
  EXPECT_EQ(hadoop().name(), "HADOOP");
  EXPECT_EQ(web().name(), "WEB");
}

}  // namespace
}  // namespace netseer::traffic
