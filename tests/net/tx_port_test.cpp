#include "net/tx_port.h"

#include <gtest/gtest.h>

#include "packet/builder.h"

namespace netseer::net {
namespace {

using packet::Packet;

class CaptureSink final : public PacketSink {
 public:
  void send(Packet&& pkt) override { packets.push_back(std::move(pkt)); }
  std::vector<Packet> packets;
};

Packet data(std::uint32_t payload = 1000, std::uint8_t dscp = 0) {
  auto pkt = packet::make_udp(
      packet::FlowKey{packet::Ipv4Addr::from_octets(1, 1, 1, 1),
                      packet::Ipv4Addr::from_octets(2, 2, 2, 2), 17, 1, 2},
      payload);
  pkt.ip->dscp = dscp;
  return pkt;
}

TEST(TxPort, TransmitsAtLineRate) {
  sim::Simulator sim;
  CaptureSink sink;
  TxPort port(sim, util::BitRate::gbps(1));
  port.set_out(&sink);

  // 1046-byte frame at 1 Gbps = 8368 ns each.
  port.enqueue(data(), 0);
  port.enqueue(data(), 0);
  sim.run();
  EXPECT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sim.now(), 2 * 8368);
  EXPECT_EQ(port.tx_packets(), 2u);
}

TEST(TxPort, StrictPriorityOrdering) {
  sim::Simulator sim;
  CaptureSink sink;
  TxPort port(sim, util::BitRate::gbps(1));
  port.set_out(&sink);

  // Fill low priority first, then high; high must overtake queued low
  // (after the in-flight packet completes).
  port.enqueue(data(1000, 0), 0);
  port.enqueue(data(1000, 0), 0);
  port.enqueue(data(1000, 56), 7);  // dscp 56 -> class 7
  sim.run();
  ASSERT_EQ(sink.packets.size(), 3u);
  EXPECT_EQ(sink.packets[0].meta.queue, 0);  // already serializing
  EXPECT_EQ(sink.packets[1].meta.queue, 7);  // preempts queued low-prio
  EXPECT_EQ(sink.packets[2].meta.queue, 0);
}

TEST(TxPort, QueueBytesTracked) {
  sim::Simulator sim;
  CaptureSink sink;
  TxPort port(sim, util::BitRate::gbps(1));
  port.set_out(&sink);
  auto pkt = data();
  const auto bytes = pkt.wire_bytes();
  port.enqueue(std::move(pkt), 3);
  // First packet starts transmitting immediately (dequeued).
  EXPECT_EQ(port.queue_bytes(3), 0);
  port.enqueue(data(), 3);
  EXPECT_EQ(port.queue_bytes(3), bytes);
  EXPECT_EQ(port.queue_depth(3), 1u);
  sim.run();
  EXPECT_EQ(port.queue_bytes(3), 0);
  EXPECT_EQ(port.total_bytes(), 0);
}

TEST(TxPort, PauseBlocksClass) {
  sim::Simulator sim;
  CaptureSink sink;
  TxPort port(sim, util::BitRate::gbps(1));
  port.set_out(&sink);

  port.apply_pause(0, 0xffff);
  EXPECT_TRUE(port.is_paused(0));
  port.enqueue(data(1000, 0), 0);
  sim.run_until(util::microseconds(10));
  EXPECT_TRUE(sink.packets.empty());

  // Other classes still flow.
  port.enqueue(data(1000, 56), 7);
  sim.run_until(util::microseconds(20));
  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.packets[0].meta.queue, 7);
}

TEST(TxPort, PauseExpiresAutomatically) {
  sim::Simulator sim;
  CaptureSink sink;
  TxPort port(sim, util::BitRate::gbps(1));
  port.set_out(&sink);

  // Quanta 100 at 1 Gbps: 100 * 512 bit-times = 51.2 us.
  port.apply_pause(0, 100);
  port.enqueue(data(), 0);
  sim.run();
  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_GE(sim.now(), util::nanoseconds(51200));
}

TEST(TxPort, ResumeUnblocksImmediately) {
  sim::Simulator sim;
  CaptureSink sink;
  TxPort port(sim, util::BitRate::gbps(1));
  port.set_out(&sink);

  port.apply_pause(0, 0xffff);
  port.enqueue(data(), 0);
  sim.run_until(util::microseconds(5));
  EXPECT_TRUE(sink.packets.empty());
  port.apply_pause(0, 0);  // RESUME
  sim.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(TxPort, DownPortHoldsTraffic) {
  sim::Simulator sim;
  CaptureSink sink;
  TxPort port(sim, util::BitRate::gbps(1));
  port.set_out(&sink);
  port.set_up(false);
  port.enqueue(data(), 0);
  sim.run_until(util::microseconds(100));
  EXPECT_TRUE(sink.packets.empty());
  port.set_up(true);
  sim.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(TxPort, DequeueHookObservesDelay) {
  sim::Simulator sim;
  CaptureSink sink;
  TxPort port(sim, util::BitRate::gbps(1));
  port.set_out(&sink);
  std::vector<util::SimDuration> delays;
  port.set_dequeue_hook([&](Packet&, util::QueueId, util::SimDuration delay) {
    delays.push_back(delay);
  });
  port.enqueue(data(), 0);
  port.enqueue(data(), 0);
  port.enqueue(data(), 0);
  sim.run();
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_EQ(delays[0], 0);
  EXPECT_EQ(delays[1], 8368);       // waited one serialization
  EXPECT_EQ(delays[2], 2 * 8368);   // waited two
}

TEST(TxPort, HookMayGrowPacket) {
  sim::Simulator sim;
  CaptureSink sink;
  TxPort port(sim, util::BitRate::gbps(1));
  port.set_out(&sink);
  port.set_dequeue_hook([&](Packet& pkt, util::QueueId, util::SimDuration) {
    pkt.seq_tag = 7;  // +6 bytes on the wire (ID + encapsulated ethertype)
  });
  port.enqueue(data(), 0);
  sim.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.packets[0].seq_tag, 7u);
  // Serialization paid for the grown frame: 1052 bytes -> 8416 ns.
  EXPECT_EQ(sim.now(), 8416);
}

TEST(TxPort, NoSinkNoTransmit) {
  sim::Simulator sim;
  TxPort port(sim, util::BitRate::gbps(1));
  port.enqueue(data(), 0);
  sim.run();
  EXPECT_EQ(port.tx_packets(), 0u);
  EXPECT_EQ(port.queue_depth(0), 1u);
}

}  // namespace
}  // namespace netseer::net
