#include "net/host.h"

#include <gtest/gtest.h>

#include "packet/builder.h"

namespace netseer::net {
namespace {

using packet::Packet;

class CaptureNode final : public Node {
 public:
  CaptureNode() : Node(50, "capture") {}
  void receive(Packet&& pkt, util::PortId in_port) override {
    (void)in_port;
    packets.push_back(std::move(pkt));
  }
  std::vector<Packet> packets;
};

class RecordingApp final : public HostApp {
 public:
  void on_receive(Host&, const Packet& pkt) override { received.push_back(pkt); }
  std::vector<Packet> received;
};

struct Fixture {
  Fixture() : host(sim, 1, "h0", packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                   util::BitRate::gbps(25)),
              uplink(sim, util::Rng(1), peer, 3, util::microseconds(1), host.id()) {
    host.set_uplink(&uplink);
    host.add_app(&app);
  }
  sim::Simulator sim;
  CaptureNode peer;
  Host host;
  Link uplink;
  RecordingApp app;
};

packet::FlowKey flow() {
  return packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                         packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6, 1000, 80};
}

TEST(Host, SendFillsDefaultsAndTransmits) {
  Fixture f;
  auto pkt = packet::make_tcp(flow(), 500);
  pkt.ip->src = packet::Ipv4Addr{};  // let the host fill it
  f.host.send(std::move(pkt));
  f.sim.run();
  ASSERT_EQ(f.peer.packets.size(), 1u);
  EXPECT_EQ(f.peer.packets[0].ip->src, f.host.addr());
  EXPECT_EQ(f.peer.packets[0].eth.src, f.host.mac());
  EXPECT_EQ(f.peer.packets[0].meta.origin_node, f.host.id());
}

TEST(Host, DeliversToApp) {
  Fixture f;
  f.host.receive(packet::make_tcp(flow(), 100), 0);
  ASSERT_EQ(f.app.received.size(), 1u);
  EXPECT_EQ(f.host.rx_packets(), 1u);
}

TEST(Host, DiscardsCorruptFrames) {
  Fixture f;
  auto pkt = packet::make_tcp(flow(), 100);
  pkt.corrupted = true;
  f.host.receive(std::move(pkt), 0);
  EXPECT_TRUE(f.app.received.empty());
  EXPECT_EQ(f.host.rx_corrupt_discards(), 1u);
  EXPECT_EQ(f.host.rx_packets(), 0u);
}

TEST(Host, AutoRepliesToProbes) {
  Fixture f;
  auto probe = packet::make_udp(packet::FlowKey{packet::Ipv4Addr::from_octets(10, 9, 9, 9),
                                                f.host.addr(), 17, 7777, 7}, 8);
  probe.kind = packet::PacketKind::kProbe;
  probe.l4.seq = 31337;
  f.host.receive(std::move(probe), 0);
  f.sim.run();
  ASSERT_EQ(f.peer.packets.size(), 1u);
  const auto& reply = f.peer.packets[0];
  EXPECT_EQ(reply.kind, packet::PacketKind::kProbeReply);
  EXPECT_EQ(reply.ip->dst, packet::Ipv4Addr::from_octets(10, 9, 9, 9));
  EXPECT_EQ(reply.ip->src, f.host.addr());
  EXPECT_EQ(reply.l4.seq, 31337u);
  EXPECT_TRUE(f.app.received.empty());  // probes bypass apps
}

TEST(Host, ProbeForOtherAddressGoesToApp) {
  Fixture f;
  auto probe = packet::make_udp(packet::FlowKey{packet::Ipv4Addr::from_octets(10, 9, 9, 9),
                                                packet::Ipv4Addr::from_octets(10, 0, 0, 99),
                                                17, 7777, 7}, 8);
  probe.kind = packet::PacketKind::kProbe;
  f.host.receive(std::move(probe), 0);
  f.sim.run();
  EXPECT_TRUE(f.peer.packets.empty());
  EXPECT_EQ(f.app.received.size(), 1u);
}

TEST(Host, HonorsPfcPause) {
  Fixture f;
  f.host.receive(packet::make_pfc(0, 0xffff), 0);
  f.host.send(packet::make_tcp(flow(), 100));
  f.sim.run_until(util::microseconds(10));
  EXPECT_TRUE(f.peer.packets.empty());
  f.host.receive(packet::make_pfc(0, 0), 0);  // resume
  f.sim.run();
  EXPECT_EQ(f.peer.packets.size(), 1u);
}

TEST(Host, NicAgentSeesTxAndCanConsumeRx) {
  class Agent final : public NicAgent {
   public:
    void on_tx(Host&, Packet& pkt) override {
      ++tx;
      pkt.seq_tag = 99;
    }
    bool on_rx(Host&, Packet& pkt) override {
      ++rx;
      return pkt.kind != packet::PacketKind::kLossNotify;
    }
    int tx = 0, rx = 0;
  };
  Fixture f;
  Agent agent;
  f.host.set_nic_agent(&agent);

  f.host.send(packet::make_tcp(flow(), 10));
  f.sim.run();
  EXPECT_EQ(agent.tx, 1);
  ASSERT_EQ(f.peer.packets.size(), 1u);
  EXPECT_EQ(f.peer.packets[0].seq_tag, 99u);

  auto notify = packet::make_udp(flow(), 12);
  notify.kind = packet::PacketKind::kLossNotify;
  f.host.receive(std::move(notify), 0);
  EXPECT_EQ(agent.rx, 1);
  EXPECT_TRUE(f.app.received.empty());
}

TEST(Host, LossNotifyQueueIsHighPriority) {
  auto notify = packet::make_udp(flow(), 12);
  notify.kind = packet::PacketKind::kLossNotify;
  EXPECT_EQ(queue_for(notify), 7);
  EXPECT_EQ(queue_for(packet::make_tcp(flow(), 1)), 0);
  auto dscped = packet::make_tcp(flow(), 1);
  dscped.ip->dscp = 24;  // 011000 -> class 3
  EXPECT_EQ(queue_for(dscped), 3);
}

}  // namespace
}  // namespace netseer::net
