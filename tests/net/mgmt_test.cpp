#include "net/mgmt.h"

#include <gtest/gtest.h>

#include <string>

namespace netseer::net {
namespace {

struct Msg {
  int id = 0;
  std::string body;
};

TEST(MgmtChannel, DeliversAfterDelay) {
  sim::Simulator sim;
  MgmtChannel<Msg> channel(sim, util::Rng(1), util::milliseconds(2), 0.0);
  std::vector<std::pair<util::NodeId, Msg>> received;
  channel.register_endpoint(2, [&](util::NodeId from, const Msg& msg) {
    received.push_back({from, msg});
  });
  channel.send(1, 2, Msg{7, "hello"});
  EXPECT_TRUE(received.empty());
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(sim.now(), util::milliseconds(2));
  EXPECT_EQ(received[0].first, 1u);
  EXPECT_EQ(received[0].second.id, 7);
  EXPECT_EQ(received[0].second.body, "hello");
}

TEST(MgmtChannel, UnknownDestinationSilentlyDropped) {
  sim::Simulator sim;
  MgmtChannel<Msg> channel(sim, util::Rng(1), 0, 0.0);
  channel.send(1, 99, Msg{});
  sim.run();  // nothing to deliver, nothing crashes
  EXPECT_EQ(channel.messages_sent(), 1u);
}

TEST(MgmtChannel, LossRateApproximatelyHonored) {
  sim::Simulator sim;
  MgmtChannel<Msg> channel(sim, util::Rng(5), 0, 0.25);
  int received = 0;
  channel.register_endpoint(2, [&](util::NodeId, const Msg&) { ++received; });
  for (int i = 0; i < 10000; ++i) channel.send(1, 2, Msg{i, ""});
  sim.run();
  EXPECT_NEAR(static_cast<double>(channel.messages_lost()) / 10000.0, 0.25, 0.03);
  EXPECT_EQ(received, 10000 - static_cast<int>(channel.messages_lost()));
}

TEST(MgmtChannel, MultipleEndpointsRouteIndependently) {
  sim::Simulator sim;
  MgmtChannel<Msg> channel(sim, util::Rng(1), 0, 0.0);
  int a = 0, b = 0;
  channel.register_endpoint(1, [&](util::NodeId, const Msg&) { ++a; });
  channel.register_endpoint(2, [&](util::NodeId, const Msg&) { ++b; });
  channel.send(2, 1, Msg{});
  channel.send(1, 2, Msg{});
  channel.send(1, 2, Msg{});
  sim.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

}  // namespace
}  // namespace netseer::net
