#include "net/link.h"

#include <gtest/gtest.h>

#include "packet/builder.h"

namespace netseer::net {
namespace {

using packet::Packet;

class CaptureNode final : public Node {
 public:
  CaptureNode() : Node(2, "capture") {}
  void receive(Packet&& pkt, util::PortId in_port) override {
    last_port = in_port;
    packets.push_back(std::move(pkt));
  }
  std::vector<Packet> packets;
  util::PortId last_port = util::kInvalidPort;
};

class CountingObserver final : public LinkObserver {
 public:
  void on_link_fault(const Packet&, util::NodeId from, util::NodeId to,
                     LinkFault fault) override {
    last_from = from;
    last_to = to;
    drops += (fault == LinkFault::kSilentDrop);
    corruptions += (fault == LinkFault::kCorruption);
  }
  int drops = 0;
  int corruptions = 0;
  util::NodeId last_from = 0, last_to = 0;
};

Packet data() {
  return packet::make_udp(packet::FlowKey{packet::Ipv4Addr::from_octets(1, 1, 1, 1),
                                          packet::Ipv4Addr::from_octets(2, 2, 2, 2), 17, 1, 2},
                          100);
}

TEST(Link, DeliversAfterDelay) {
  sim::Simulator sim;
  CaptureNode peer;
  Link link(sim, util::Rng(1), peer, 5, util::microseconds(3), 1);
  link.send(data());
  EXPECT_TRUE(peer.packets.empty());
  sim.run();
  ASSERT_EQ(peer.packets.size(), 1u);
  EXPECT_EQ(sim.now(), util::microseconds(3));
  EXPECT_EQ(peer.last_port, 5);
  EXPECT_EQ(link.packets_carried(), 1u);
  EXPECT_GT(link.bytes_carried(), 0u);
}

TEST(Link, LosslessByDefault) {
  sim::Simulator sim;
  CaptureNode peer;
  Link link(sim, util::Rng(1), peer, 0, 0, 1);
  EXPECT_TRUE(link.fault_model().is_lossless());
  for (int i = 0; i < 1000; ++i) link.send(data());
  sim.run();
  EXPECT_EQ(peer.packets.size(), 1000u);
}

TEST(Link, SilentDropRate) {
  sim::Simulator sim;
  CaptureNode peer;
  CountingObserver observer;
  Link link(sim, util::Rng(1), peer, 0, 0, 1);
  link.set_observer(&observer);
  LinkFaultModel faults;
  faults.drop_prob = 0.1;
  link.set_fault_model(faults);

  for (int i = 0; i < 10000; ++i) link.send(data());
  sim.run();
  EXPECT_NEAR(static_cast<double>(observer.drops) / 10000.0, 0.1, 0.02);
  EXPECT_EQ(peer.packets.size() + static_cast<std::size_t>(observer.drops), 10000u);
  EXPECT_EQ(link.packets_dropped(), static_cast<std::uint64_t>(observer.drops));
}

TEST(Link, CorruptionDeliversMarkedFrames) {
  sim::Simulator sim;
  CaptureNode peer;
  CountingObserver observer;
  Link link(sim, util::Rng(2), peer, 0, 0, 1);
  link.set_observer(&observer);
  LinkFaultModel faults;
  faults.corrupt_prob = 0.2;
  link.set_fault_model(faults);

  for (int i = 0; i < 5000; ++i) link.send(data());
  sim.run();
  // Corrupted frames still arrive, flagged.
  EXPECT_EQ(peer.packets.size(), 5000u);
  int corrupt = 0;
  for (const auto& pkt : peer.packets) corrupt += pkt.corrupted;
  EXPECT_EQ(corrupt, observer.corruptions);
  EXPECT_NEAR(corrupt / 5000.0, 0.2, 0.03);
}

TEST(Link, DownLinkDropsEverything) {
  sim::Simulator sim;
  CaptureNode peer;
  CountingObserver observer;
  Link link(sim, util::Rng(3), peer, 0, 0, 1);
  link.set_observer(&observer);
  link.set_up(false);
  for (int i = 0; i < 10; ++i) link.send(data());
  sim.run();
  EXPECT_TRUE(peer.packets.empty());
  EXPECT_EQ(observer.drops, 10);
}

TEST(Link, ObserverSeesEndpoints) {
  sim::Simulator sim;
  CaptureNode peer;
  CountingObserver observer;
  Link link(sim, util::Rng(4), peer, 0, 0, /*from=*/42);
  link.set_observer(&observer);
  link.set_up(false);
  link.send(data());
  EXPECT_EQ(observer.last_from, 42u);
  EXPECT_EQ(observer.last_to, 2u);
}

TEST(Link, BurstLossClusters) {
  sim::Simulator sim;
  CaptureNode peer;
  Link link(sim, util::Rng(5), peer, 0, 0, 1);
  LinkFaultModel faults;
  faults.burst_enter_prob = 0.001;
  faults.burst_exit_prob = 0.05;
  faults.burst_drop_prob = 0.9;
  link.set_fault_model(faults);

  const int n = 200000;
  for (int i = 0; i < n; ++i) link.send(data());
  sim.run();
  const auto dropped = link.packets_dropped();
  // Burst model: expect substantial loss overall...
  EXPECT_GT(dropped, 100u);
  // ... at roughly enter/(enter+exit) * burst_drop ~ 1.8%.
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.018, 0.012);
}

}  // namespace
}  // namespace netseer::net
