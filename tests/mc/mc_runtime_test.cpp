// The model-check runtime's own guarantees, each proven on a program
// small enough to reason about by hand: exhaustive interleaving
// coverage, sleep-set pruning of independent reorderings, vector-clock
// race detection keyed to release/acquire (not just "different
// thread"), deadlock and livelock detection, and the blocking
// primitives (await, join, mutex).
#include <gtest/gtest.h>

#include <string>

#include "mc/runtime.h"

namespace netseer::mc {
namespace {

Options small() {
  Options options;
  options.max_steps = 2000;
  options.max_schedules = 100000;
  return options;
}

TEST(McRuntime, SingleThreadHasExactlyOneSchedule) {
  const Result result = explore(small(), [] {
    Atomic<int> x{0};
    x.store(1);
    MC_ASSERT(x.load() == 1);
  });
  EXPECT_TRUE(result.ok()) << result.failure;
  EXPECT_EQ(result.schedules, 1u);
}

TEST(McRuntime, ConflictingStoresExploreBothOrders) {
  // Two threads store different values to one atomic: the final value
  // must be seen to be 1 in some schedule and 2 in another.
  bool saw_one = false;
  bool saw_two = false;
  const Result result = explore(small(), [&] {
    Atomic<int> x{0};
    Thread a = spawn([&] { x.store(1); });
    Thread b = spawn([&] { x.store(2); });
    a.join();
    b.join();
    const int v = x.load();
    MC_ASSERT(v == 1 || v == 2);
    if (v == 1) saw_one = true;
    if (v == 2) saw_two = true;
  });
  EXPECT_TRUE(result.ok()) << result.failure;
  EXPECT_GE(result.schedules, 2u);
  EXPECT_TRUE(saw_one);
  EXPECT_TRUE(saw_two);
}

TEST(McRuntime, SleepSetsPruneIndependentOperations) {
  // Threads touching DIFFERENT atomics commute; sleep sets must prune
  // the redundant order instead of running both.
  const Result result = explore(small(), [] {
    Atomic<int> x{0};
    Atomic<int> y{0};
    Thread a = spawn([&] { x.store(1); });
    Thread b = spawn([&] { y.store(1); });
    a.join();
    b.join();
    MC_ASSERT(x.load() == 1 && y.load() == 1);
  });
  EXPECT_TRUE(result.ok()) << result.failure;
  EXPECT_GE(result.pruned, 1u);  // at least one reordering was cut short
}

TEST(McRuntime, RelaxedPublishIsCaughtAsADataRace) {
  // The classic bug the checker exists for: data written plainly, then
  // "published" with a relaxed store. No happens-before reaches the
  // reader, so the plain accesses race in some schedule.
  int data = 0;
  const Result result = explore(small(), [&] {
    data = 0;
    Atomic<bool> ready{false};
    Thread writer = spawn([&] {
      race_write(&data, "data");
      data = 42;
      ready.store(true, std::memory_order_relaxed);  // BUG: no release
    });
    Thread reader = spawn([&] {
      if (ready.load(std::memory_order_acquire)) {
        race_read(&data, "data");
      }
    });
    writer.join();
    reader.join();
  });
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("data race"), std::string::npos) << result.failure;
  EXPECT_FALSE(result.trace.empty());
}

TEST(McRuntime, ReleaseAcquirePublishIsRaceFree) {
  // Same program with a release store: every schedule is clean.
  int data = 0;
  const Result result = explore(small(), [&] {
    data = 0;
    Atomic<bool> ready{false};
    Thread writer = spawn([&] {
      race_write(&data, "data");
      data = 42;
      ready.store(true, std::memory_order_release);
    });
    Thread reader = spawn([&] {
      if (ready.load(std::memory_order_acquire)) {
        race_read(&data, "data");
      }
    });
    writer.join();
    reader.join();
  });
  EXPECT_TRUE(result.ok()) << result.failure;
}

TEST(McRuntime, LockOrderInversionIsReportedAsDeadlock) {
  const Result result = explore(small(), [] {
    Mutex a;
    Mutex b;
    Thread t1 = spawn([&] {
      MutexLock la(a);
      MutexLock lb(b);
    });
    Thread t2 = spawn([&] {
      MutexLock lb(b);
      MutexLock la(a);
    });
    t1.join();
    t2.join();
  });
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("deadlock"), std::string::npos) << result.failure;
}

TEST(McRuntime, MutexGivesMutualExclusionInEverySchedule) {
  // A plain ++ under a mutex: the instrumented cell would race without
  // the lock's happens-before edges; with them every schedule is clean
  // and both increments land.
  const Result result = explore(small(), [] {
    Mutex mu;
    int counter = 0;
    auto bump = [&] {
      MutexLock lock(mu);
      race_write(&counter, "counter");
      ++counter;
    };
    Thread a = spawn(bump);
    Thread b = spawn(bump);
    a.join();
    b.join();
    MC_ASSERT(counter == 2);
  });
  EXPECT_TRUE(result.ok()) << result.failure;
}

TEST(McRuntime, AwaitBlocksUntilPredicateHolds) {
  const Result result = explore(small(), [] {
    Atomic<int> stage{0};
    Thread waiter = spawn([&] {
      await([&] { return stage.load(std::memory_order_acquire) == 1; });
      MC_ASSERT(stage.load() == 1);
    });
    Thread setter = spawn([&] { stage.store(1, std::memory_order_release); });
    waiter.join();
    setter.join();
  });
  EXPECT_TRUE(result.ok()) << result.failure;
}

TEST(McRuntime, UnboundedSpinIsReportedAsLivelock) {
  // A spin loop written with yield() instead of await() never terminates
  // under a scheduler that keeps choosing the spinner; the step budget
  // turns that into a diagnosed livelock instead of a hang.
  Options options = small();
  options.max_steps = 100;
  const Result result = explore(options, [] {
    Atomic<bool> flag{false};
    Thread spinner = spawn([&] {
      while (!flag.load()) yield();
    });
    Thread setter = spawn([&] { flag.store(true); });
    spinner.join();
    setter.join();
  });
  // Depending on exploration order some schedules terminate, but the
  // spin-first schedule must blow the budget and be reported.
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("livelock"), std::string::npos) << result.failure;
}

TEST(McRuntime, AssertionFailuresCarryTheFailingSchedule) {
  // Unsynchronized read-modify-write sequences (load, then store) lose
  // an increment in some interleaving; the checker must find it and
  // hand back the schedule that did it.
  const Result result = explore(small(), [] {
    Atomic<int> x{0};
    auto bump = [&] {
      const int seen = x.load();
      x.store(seen + 1);
    };
    Thread a = spawn(bump);
    Thread b = spawn(bump);
    a.join();
    b.join();
    MC_ASSERT(x.load() == 2);  // fails when the loads interleave
  });
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("MC_ASSERT"), std::string::npos) << result.failure;
  EXPECT_FALSE(result.trace.empty());
}

TEST(McRuntime, JoinEstablishesHappensBefore) {
  // Plain (instrumented) data written by a child is safely readable
  // after join() — no race in any schedule.
  int data = 0;
  const Result result = explore(small(), [&] {
    data = 0;
    Thread child = spawn([&] {
      race_write(&data, "data");
      data = 7;
    });
    child.join();
    race_read(&data, "data");
    MC_ASSERT(data == 7);
  });
  EXPECT_TRUE(result.ok()) << result.failure;
}

TEST(McRuntime, ScheduleBudgetStopsWithoutExhaustion) {
  Options options = small();
  options.max_schedules = 2;
  const Result result = explore(options, [] {
    Atomic<int> x{0};
    Thread a = spawn([&] { x.store(1); });
    Thread b = spawn([&] { x.store(2); });
    a.join();
    b.join();
  });
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_FALSE(result.exhausted);  // cut off by the budget, not complete
  EXPECT_LE(result.schedules + result.pruned, 2u);
}

TEST(McRuntime, OutsideExploreThePrimitivesActPlain) {
  // The same types work as ordinary atomics/mutexes outside a model
  // run, so instrumented production code keeps running in normal tests.
  Atomic<int> x{1};
  x.store(5);
  EXPECT_EQ(x.load(), 5);
  EXPECT_EQ(x.fetch_add(2), 5);
  EXPECT_EQ(x.load(), 7);
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  EXPECT_FALSE(in_model());
}

}  // namespace
}  // namespace netseer::mc
