// The shipped harnesses (src/mc/harnesses.cpp), run through their own
// pass criteria: correctness harnesses must EXHAUST their schedule
// space cleanly, seeded-bug harnesses must get caught. The big
// cmb_window space runs as a ctest entry of the netseer_mc binary
// (model_check_cmb_window) rather than here, to keep this test quick.
#include <gtest/gtest.h>

#include <string>

#include "mc/harnesses.h"

namespace netseer::mc {
namespace {

const Harness& find(const std::string& name) {
  for (const Harness& h : all_harnesses()) {
    if (h.name == name) return h;
  }
  ADD_FAILURE() << "no harness named " << name;
  static const Harness missing{};
  return missing;
}

class McHarness : public ::testing::TestWithParam<const char*> {};

TEST_P(McHarness, PassesItsOwnCriteria) {
  const Harness& harness = find(GetParam());
  ASSERT_NE(harness.run, nullptr);
  const Result result = harness.run(harness.options);
  EXPECT_TRUE(harness.passed(result))
      << harness.name << ": schedules=" << result.schedules << " exhausted=" << result.exhausted
      << " failed=" << result.failed << " failure=" << result.failure;
  if (harness.expect_failure) {
    // A seeded-bug harness must hand back the schedule that tripped it.
    EXPECT_TRUE(result.failed);
    EXPECT_FALSE(result.trace.empty());
  } else {
    EXPECT_TRUE(result.exhausted);
    EXPECT_GE(result.schedules, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllButCmbWindow, McHarness,
                         ::testing::Values("spsc_serial", "spsc_handoff", "spsc_seeded_relaxed",
                                           "pool_remote_release", "registry_cross_merge",
                                           "cmb_seeded_lost_window"),
                         [](const auto& info) { return std::string(info.param); });

TEST(McHarnessRegistry, NamesAreUniqueAndSummariesPresent) {
  const auto& harnesses = all_harnesses();
  ASSERT_GE(harnesses.size(), 5u);
  for (std::size_t i = 0; i < harnesses.size(); ++i) {
    EXPECT_FALSE(harnesses[i].name.empty());
    EXPECT_FALSE(harnesses[i].summary.empty());
    for (std::size_t j = i + 1; j < harnesses.size(); ++j) {
      EXPECT_NE(harnesses[i].name, harnesses[j].name);
    }
  }
}

TEST(McHarnessRegistry, CoversTheRequiredPrimitives) {
  // The concurrency-correctness contract: the SPSC ring, the packet
  // pool's remote release, the registry cross-merge, and the 2-shard
  // CMB window protocol each have an exhaustive harness, and at least
  // one seeded-bug harness proves the checker's teeth.
  bool seeded = false;
  for (const char* required : {"spsc_handoff", "pool_remote_release", "registry_cross_merge",
                               "cmb_window"}) {
    const Harness& harness = find(required);
    EXPECT_FALSE(harness.expect_failure) << required;
  }
  for (const Harness& h : all_harnesses()) seeded = seeded || h.expect_failure;
  EXPECT_TRUE(seeded);
}

}  // namespace
}  // namespace netseer::mc
