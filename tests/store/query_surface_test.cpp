// The unified query surface: EventQuery's fluent builder, the
// range-for QueryCursor, the generation counter that turns
// use-after-mutation into an abort instead of a read of freed rows, and
// the scatter-gather parallel path (which must emit exactly what the
// serial cursor emits, in the same order, because the merge is by
// segment LSN either way). QueryPool gets its own unit coverage at the
// bottom — every task runs exactly once per run(), across reuse and
// uneven task counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "backend/event_store.h"
#include "core/event.h"
#include "store/executor.h"
#include "store/store.h"

namespace netseer::store {
namespace {

core::FlowEvent sample_event(std::uint64_t i) {
  std::uint64_t r = (i + 1) * 0x9E3779B97F4A7C15ull;
  r ^= r >> 31;
  packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, 0, (r >> 8) & 7, 1),
                       packet::Ipv4Addr::from_octets(10, 1, 0, 2), 6,
                       static_cast<std::uint16_t>(1024 + (r & 63)), 443};
  auto ev = core::make_event(
      r % 4 == 0 ? core::EventType::kCongestion : core::EventType::kDrop, flow,
      static_cast<util::NodeId>(r % 5), static_cast<util::SimTime>(i * 100));
  ev.counter = static_cast<std::uint16_t>(1 + (r % 7));
  return ev;
}

StoreOptions seeded_options(std::size_t segment_events = 128) {
  StoreOptions options;
  options.shard_batch = 16;
  options.segment_events = segment_events;
  return options;
}

void seed(FlowEventStore& fs, std::size_t events) {
  for (std::size_t i = 0; i < events; ++i) {
    const auto ev = sample_event(i);
    fs.add(ev, ev.detected_at + 10);
  }
  fs.flush();
}

TEST(QuerySurfaceTest, FluentBuilderComposesFilters) {
  FlowEventStore fs(seeded_options());
  seed(fs, 1000);
  // Builder and aggregate forms of the same query agree.
  backend::EventQuery aggregate;
  aggregate.type = core::EventType::kDrop;
  aggregate.switch_id = 2;
  aggregate.from = 10'000;
  aggregate.to = 70'000;
  const auto fluent = backend::EventQuery{}
                          .of_type(core::EventType::kDrop)
                          .for_switch(2)
                          .between(10'000, 70'000);
  EXPECT_EQ(fs.count(fluent), fs.count(aggregate));
  EXPECT_GT(fs.count(fluent), 0u);
  // between() is since()+until().
  const auto split = backend::EventQuery{}
                         .of_type(core::EventType::kDrop)
                         .for_switch(2)
                         .since(10'000)
                         .until(70'000);
  EXPECT_EQ(fs.count(split), fs.count(fluent));
}

TEST(QuerySurfaceTest, RangeForCursorVisitsEveryMatchInStoreOrder) {
  FlowEventStore fs(seeded_options());
  seed(fs, 600);
  const auto query = backend::EventQuery{}.of_type(core::EventType::kCongestion);
  const auto expected = fs.query(query);
  ASSERT_GT(expected.size(), 0u);

  std::vector<backend::StoredEvent> seen;
  auto cursor = fs.scan(query);
  for (const auto& stored : cursor) {
    seen.push_back(stored);
  }
  ASSERT_EQ(seen.size(), expected.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].event, expected[i].event) << "row " << i;
    EXPECT_EQ(seen[i].stored_at, expected[i].stored_at) << "row " << i;
  }
}

TEST(QuerySurfaceTest, CursorSeesUnflushedShardRows) {
  StoreOptions options;
  options.shard_batch = 64;  // larger than the adds below: rows stay in shards
  FlowEventStore fs(options);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto ev = sample_event(i);
    fs.add(ev, ev.detected_at);
  }
  auto cursor = fs.scan(backend::EventQuery{});
  std::size_t rows = 0;
  while (cursor.next() != nullptr) ++rows;
  EXPECT_EQ(rows, 10u);
}

TEST(QuerySurfaceDeathTest, MutationUnderACursorAbortsInsteadOfReadingFreedRows) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FlowEventStore fs(seeded_options());
  seed(fs, 300);
  EXPECT_DEATH(
      {
        auto cursor = fs.scan(backend::EventQuery{});
        (void)cursor.next();
        const auto ev = sample_event(9999);
        for (int i = 0; i < 64; ++i) fs.add(ev, ev.detected_at);  // forces a flush
        (void)cursor.next();
      },
      "used after store mutation");
}

TEST(QuerySurfaceTest, ParallelCursorMatchesSerialExactly) {
  FlowEventStore fs(seeded_options(64));  // small segments: many to scatter over
  seed(fs, 2000);
  fs.seal_active();
  const std::vector<backend::EventQuery> queries{
      backend::EventQuery{},
      backend::EventQuery{}.of_type(core::EventType::kDrop),
      backend::EventQuery{}.for_switch(3).between(5'000, 150'000),
      backend::EventQuery{}.for_flow(sample_event(7).flow),
      backend::EventQuery{}.between(190'000, 200'000),
  };
  for (const auto& query : queries) {
    const auto serial = fs.query(query);
    fs.set_query_threads(4);
    auto cursor = fs.scan(query);
    std::vector<backend::StoredEvent> parallel;
    while (const auto* stored = cursor.next()) parallel.push_back(*stored);
    fs.set_query_threads(1);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      EXPECT_EQ(parallel[i].event, serial[i].event) << "row " << i;
      EXPECT_EQ(parallel[i].stored_at, serial[i].stored_at) << "row " << i;
    }
  }
  // And the pool actually ran: cursors fanned out, tasks were dispatched.
  EXPECT_EQ(fs.stats().parallel_queries, queries.size());
  EXPECT_GT(fs.stats().parallel_tasks, 0u);
}

TEST(QuerySurfaceTest, DeprecatedWrappersAgreeWithScan) {
  FlowEventStore fs(seeded_options());
  seed(fs, 500);
  const auto query = backend::EventQuery{}.of_type(core::EventType::kDrop).since(1'000);
  auto cursor = fs.scan(query);
  std::size_t rows = 0;
  std::uint64_t counter_sum = 0;
  while (const auto* stored = cursor.next()) {
    ++rows;
    counter_sum += stored->event.counter;
  }
  EXPECT_EQ(fs.count(query), rows);
  EXPECT_EQ(fs.query(query).size(), rows);
  EXPECT_EQ(fs.total_counter(query), counter_sum);
}

TEST(QueryPoolTest, EveryTaskRunsExactlyOnce) {
  QueryPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  for (const std::size_t tasks : {0u, 1u, 3u, 17u, 256u}) {
    std::vector<std::atomic<int>> hits(tasks == 0 ? 1 : tasks);
    for (auto& h : hits) h.store(0);
    pool.run(tasks, [&](std::size_t task) { hits[task].fetch_add(1); });
    for (std::size_t i = 0; i < tasks; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " of " << tasks;
    }
  }
}

TEST(QueryPoolTest, SerialPoolSpawnsNoWorkers) {
  QueryPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::size_t sum = 0;
  pool.run(10, [&](std::size_t task) { sum += task; });  // caller-only: no data race
  EXPECT_EQ(sum, 45u);
}

TEST(QueryPoolTest, ReusableAcrossManyRuns) {
  QueryPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(8, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 400u);
}

}  // namespace
}  // namespace netseer::store
