// Subscription semantics: a tailer must see every matching row exactly
// once, in LSN order, no matter how the rows migrate underneath it —
// shard buffer -> memtable flush -> sealed segment -> compacted segment
// -> (possibly) evicted by retention. Eviction converts missed rows
// into lag, never into blocking: the store side has no wait on
// subscribers at all, which is the backpressure contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/event.h"
#include "store/store.h"
#include "store/subscription.h"

namespace netseer::store {
namespace {

namespace stdfs = std::filesystem;

core::FlowEvent tail_event(std::uint64_t i) {
  std::uint64_t r = (i + 1) * 0xD1B54A32D192ED03ull;
  r ^= r >> 32;
  packet::FlowKey flow{packet::Ipv4Addr::from_octets(172, 16, (r >> 8) & 3, 1),
                       packet::Ipv4Addr::from_octets(172, 16, 9, 9), 17,
                       static_cast<std::uint16_t>(2048 + (r & 127)), 4789};
  auto ev = core::make_event(
      r % 3 == 0 ? core::EventType::kCongestion : core::EventType::kDrop, flow,
      static_cast<util::NodeId>(r % 4), static_cast<util::SimTime>(i * 50));
  ev.counter = static_cast<std::uint16_t>(1 + (r % 11));
  return ev;
}

struct Delivery {
  std::uint64_t lsn;
  backend::StoredEvent row;
};

std::size_t drain(Subscription& sub, std::vector<Delivery>* out,
                  std::size_t max_rows = SIZE_MAX) {
  return sub.poll(
      [out](const backend::StoredEvent& stored, std::uint64_t lsn) {
        out->push_back({lsn, stored});
      },
      max_rows);
}

TEST(SubscriptionTest, ExactlyOnceAcrossFlushSealAndCompaction) {
  StoreOptions options;
  options.shard_batch = 8;
  options.segment_events = 32;     // seals often
  options.compact_min_segments = 3;  // compacts often
  options.compact_fanin = 3;
  FlowEventStore fs(options);

  // Control: same stream into a second in-memory store that never
  // seals or compacts mid-test — all() is the canonical LSN order.
  StoreOptions flat;
  flat.shard_batch = 8;
  FlowEventStore control(flat);

  auto sub = fs.subscribe();
  std::vector<Delivery> deliveries;
  constexpr std::uint64_t kEvents = 500;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    const auto ev = tail_event(i);
    fs.add(ev, ev.detected_at + 5);
    control.add(ev, ev.detected_at + 5);
    // Poll mid-stream while the store mutates around the cursor.
    if (i % 37 == 0) drain(sub, &deliveries);
    if (i % 120 == 60) fs.seal_active();
    if (i % 150 == 75) fs.maintain();  // compaction + retention round
  }
  fs.flush();
  control.flush();
  fs.checkpoint();  // seal + (in-memory: no-op persistence) one more churn
  while (drain(sub, &deliveries, 64) > 0) {
  }

  // Every LSN 1..N exactly once, ascending, with the control's payload.
  const auto reference = control.all();
  ASSERT_EQ(reference.size(), kEvents);
  ASSERT_EQ(deliveries.size(), kEvents);
  EXPECT_EQ(sub.delivered(), kEvents);
  EXPECT_EQ(sub.lagged(), 0u);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    ASSERT_EQ(deliveries[i].lsn, i + 1) << "hole or duplicate at row " << i;
    ASSERT_EQ(deliveries[i].row.event, reference[i].event) << "row " << i;
    ASSERT_EQ(deliveries[i].row.stored_at, reference[i].stored_at) << "row " << i;
  }
}

TEST(SubscriptionTest, RetentionEvictionBecomesLagNotBlocking) {
  StoreOptions options;
  options.shard_batch = 8;
  options.segment_events = 32;
  options.retain_events = 100;  // far less than the stream
  FlowEventStore fs(options);

  auto slow = fs.subscribe();  // never polled during ingest
  constexpr std::uint64_t kEvents = 600;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    const auto ev = tail_event(i);
    fs.add(ev, ev.detected_at + 5);
    if (i % 64 == 0) fs.maintain();
  }
  fs.flush();
  fs.seal_active();
  fs.maintain();
  // Ingest finished without ever waiting on the subscriber; the stream
  // kept only the newest rows.
  EXPECT_GT(fs.stats().events_evicted, 0u);

  std::vector<Delivery> deliveries;
  while (drain(slow, &deliveries, 128) > 0) {
  }
  // Everything still retained arrives exactly once and in order; the
  // evicted prefix is accounted as lag, and together they cover the
  // whole stream.
  EXPECT_EQ(slow.delivered() + slow.lagged(), kEvents);
  EXPECT_EQ(slow.lagged(), fs.stats().events_evicted);
  EXPECT_GT(slow.lagged(), 0u);
  ASSERT_FALSE(deliveries.empty());
  for (std::size_t i = 1; i < deliveries.size(); ++i) {
    ASSERT_EQ(deliveries[i].lsn, deliveries[i - 1].lsn + 1);
  }
  EXPECT_EQ(deliveries.back().lsn, kEvents);
  EXPECT_EQ(slow.cursor_lsn(), kEvents);
}

TEST(SubscriptionTest, DurableStoreTailsTheWatermarkOnly) {
  const auto dir =
      (stdfs::temp_directory_path() / "netseer_subscription_durable_test").string();
  stdfs::remove_all(dir);
  StoreOptions options;
  options.dir = dir;
  options.shard_batch = 16;
  options.sync_every_batch = false;  // group commit: acks via watermark
  FlowEventStore fs(options);

  std::vector<core::FlowEvent> batch;
  for (std::uint64_t i = 0; i < 200; ++i) batch.push_back(tail_event(i));
  fs.add_batch(std::span<const core::FlowEvent>{batch.data(), batch.size()}, 123);

  auto sub = fs.subscribe();
  std::vector<Delivery> deliveries;
  while (drain(sub, &deliveries, 64) > 0) {
  }
  // Whatever the subscription saw is covered by the durable watermark
  // at the time of the poll — never rows the WAL hasn't acknowledged.
  EXPECT_LE(sub.cursor_lsn(), fs.durable_watermark());

  ASSERT_TRUE(fs.sync());
  EXPECT_EQ(fs.durable_watermark(), 200u);
  while (drain(sub, &deliveries, 64) > 0) {
  }
  EXPECT_EQ(deliveries.size(), 200u);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    ASSERT_EQ(deliveries[i].lsn, i + 1);
  }
  stdfs::remove_all(dir);
}

TEST(SubscriptionTest, FilteredSubscriptionStillAdvancesPastNonMatches) {
  StoreOptions options;
  options.shard_batch = 8;
  FlowEventStore fs(options);
  auto sub = fs.subscribe(backend::EventQuery{}.of_type(core::EventType::kCongestion));

  std::size_t expected = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto ev = tail_event(i);
    if (ev.type == core::EventType::kCongestion) ++expected;
    fs.add(ev, ev.detected_at + 5);
  }
  fs.flush();

  std::vector<Delivery> deliveries;
  while (drain(sub, &deliveries, 32) > 0) {
  }
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(deliveries.size(), expected);
  for (const auto& d : deliveries) {
    EXPECT_EQ(d.row.event.type, core::EventType::kCongestion);
  }
  // The cursor still consumed the whole stream (non-matches are
  // consumed, not re-scanned next poll), and none of it counts as lag.
  EXPECT_EQ(sub.cursor_lsn(), 300u);
  EXPECT_EQ(sub.lagged(), 0u);
  EXPECT_EQ(drain(sub, &deliveries), 0u);
}

TEST(SubscriptionTest, FromLsnResumesMidStream) {
  StoreOptions options;
  options.shard_batch = 8;
  FlowEventStore fs(options);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto ev = tail_event(i);
    fs.add(ev, ev.detected_at + 5);
  }
  fs.flush();

  auto sub = fs.subscribe(backend::EventQuery{}, 60);  // rows with LSN > 60
  std::vector<Delivery> deliveries;
  while (drain(sub, &deliveries, 16) > 0) {
  }
  ASSERT_EQ(deliveries.size(), 40u);
  EXPECT_EQ(deliveries.front().lsn, 61u);
  EXPECT_EQ(deliveries.back().lsn, 100u);
  EXPECT_EQ(sub.lagged(), 0u);
}

TEST(SubscriptionTest, LastLsnSurvivesStoreCloseAndReopen) {
  // The resume contract consumers like the detection service rely on:
  // checkpoint last_lsn(), close the store, reopen it, and subscribe
  // from that LSN — the union of the two tails is every row exactly
  // once: nothing redelivered, nothing missed.
  const auto dir =
      (stdfs::temp_directory_path() / "netseer_subscription_reopen_test").string();
  stdfs::remove_all(dir);
  StoreOptions options;
  options.dir = dir;
  options.shard_batch = 16;

  constexpr std::uint64_t kFirst = 120;
  constexpr std::uint64_t kSecond = 80;
  std::vector<Delivery> deliveries;
  std::uint64_t resume_lsn = 0;
  {
    FlowEventStore fs(options);
    auto sub = fs.subscribe();
    for (std::uint64_t i = 0; i < kFirst; ++i) {
      const auto ev = tail_event(i);
      fs.add(ev, ev.detected_at + 5);
    }
    fs.flush();
    ASSERT_TRUE(fs.sync());
    while (drain(sub, &deliveries, 32) > 0) {
    }
    EXPECT_EQ(sub.last_lsn(), sub.cursor_lsn());
    EXPECT_EQ(sub.last_lsn(), kFirst);
    resume_lsn = sub.last_lsn();  // what a checkpoint would persist
  }

  {
    // Rows land while no subscriber exists (a restart window).
    FlowEventStore fs(options);
    for (std::uint64_t i = kFirst; i < kFirst + kSecond; ++i) {
      const auto ev = tail_event(i);
      fs.add(ev, ev.detected_at + 5);
    }
    fs.flush();
    ASSERT_TRUE(fs.sync());
  }

  FlowEventStore fs(options);
  auto sub = fs.subscribe(backend::EventQuery{}, resume_lsn);
  while (drain(sub, &deliveries, 32) > 0) {
  }
  // Nothing redelivered, nothing missed: LSNs 1..kFirst+kSecond, once.
  ASSERT_EQ(deliveries.size(), kFirst + kSecond);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    ASSERT_EQ(deliveries[i].lsn, i + 1);
  }
  EXPECT_EQ(sub.last_lsn(), kFirst + kSecond);
  EXPECT_EQ(sub.lagged(), 0u);
  stdfs::remove_all(dir);
}

TEST(SubscriptionTest, PollAccountingLandsInStoreStats) {
  FlowEventStore fs;
  auto sub = fs.subscribe();
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto ev = tail_event(i);
    fs.add(ev, ev.detected_at + 5);
  }
  fs.flush();
  std::vector<Delivery> deliveries;
  while (drain(sub, &deliveries, 10) > 0) {
  }
  EXPECT_GE(fs.stats().subscription_polls, 5u);
  EXPECT_EQ(fs.stats().subscription_rows, 50u);
  EXPECT_EQ(fs.stats().subscription_lagged_rows, 0u);
}

}  // namespace
}  // namespace netseer::store
