// Satellite: EventQuery parity. The same event stream goes into the
// reference backend::EventStore (the oracle) and into store::FlowEventStore,
// and every query shape must return identical results — element for
// element, in the same order — in every lifecycle state: with rows still
// in shard buffers, after sealing, after compaction, and after a durable
// round trip through segment files.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "backend/event_store.h"
#include "core/event.h"
#include "store/store.h"

namespace netseer::store {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kEvents = 2000;

struct Gen {
  std::uint64_t state = 99;
  std::uint64_t rnd() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
  core::FlowEvent next(std::uint64_t i) {
    const auto r = rnd();
    // ~40 distinct flows so flow queries hit many rows.
    packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, 0, 0, (r % 8) + 1),
                         packet::Ipv4Addr::from_octets(10, 9, 9, 9), 6,
                         static_cast<std::uint16_t>(5000 + (r % 5)), 443};
    auto ev = core::make_event(static_cast<core::EventType>(1 + r % 5), flow,
                               static_cast<util::NodeId>(r % 4),
                               static_cast<util::SimTime>(i * 10 + r % 7));
    ev.counter = static_cast<std::uint16_t>(1 + (r % 20));
    return ev;
  }
};

std::vector<backend::EventQuery> query_shapes() {
  const auto flow = Gen{}.next(0).flow;  // a flow guaranteed to exist
  packet::FlowKey absent = flow;
  absent.dport = 1;  // and one guaranteed not to

  std::vector<backend::EventQuery> shapes;
  shapes.emplace_back();  // match-all
  {
    backend::EventQuery q;
    q.flow = flow;
    shapes.push_back(q);
    q.type = core::EventType::kCongestion;
    shapes.push_back(q);  // flow + type
    q.from = 4000;
    q.to = 12000;
    shapes.push_back(q);  // flow + type + window
  }
  {
    backend::EventQuery q;
    q.flow = absent;
    shapes.push_back(q);
  }
  for (const auto type : {core::EventType::kDrop, core::EventType::kPause}) {
    backend::EventQuery q;
    q.type = type;
    shapes.push_back(q);
  }
  {
    backend::EventQuery q;
    q.switch_id = 2;
    shapes.push_back(q);
    q.type = core::EventType::kPathChange;
    q.from = 1000;
    q.to = 15000;
    shapes.push_back(q);  // switch + type + window
  }
  {
    backend::EventQuery q;  // window only, mid-stream
    q.from = 7000;
    q.to = 7500;
    shapes.push_back(q);
  }
  {
    backend::EventQuery q;  // empty range: to == from
    q.from = 5000;
    q.to = 5000;
    shapes.push_back(q);
  }
  {
    backend::EventQuery q;  // empty range: past the last event
    q.from = static_cast<util::SimTime>(kEvents * 10 + 100);
    shapes.push_back(q);
  }
  {
    backend::EventQuery q;  // unbounded from / unbounded to
    q.to = 3000;
    shapes.push_back(q);
    backend::EventQuery r;
    r.from = static_cast<util::SimTime>(kEvents * 10 - 2000);
    shapes.push_back(r);
  }
  return shapes;
}

void expect_parity(const backend::EventStore& oracle, const FlowEventStore& fstore,
                   const std::string& state) {
  ASSERT_EQ(oracle.size(), fstore.size()) << state;
  std::size_t shape_idx = 0;
  for (const auto& query : query_shapes()) {
    SCOPED_TRACE(state + ", query shape #" + std::to_string(shape_idx++));
    const auto want = oracle.query(query);
    const auto got = fstore.query(query);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].event, want[i].event) << "row " << i;
      ASSERT_EQ(got[i].stored_at, want[i].stored_at) << "row " << i;
    }
    EXPECT_EQ(fstore.count(query), oracle.count(query));
    EXPECT_EQ(fstore.total_counter(query), oracle.total_counter(query));
    const auto want_flows = oracle.distinct_flows(query);
    const auto got_flows = fstore.distinct_flows(query);
    ASSERT_EQ(got_flows.size(), want_flows.size());
    for (std::size_t i = 0; i < got_flows.size(); ++i) {
      EXPECT_EQ(got_flows[i], want_flows[i]);
    }
  }
}

// shard_batch = 1 keeps the store's LSN order identical to the oracle's
// insertion order, so parity is exact element-for-element equality.
StoreOptions parity_options() {
  StoreOptions options;
  options.shard_batch = 1;
  options.segment_events = 128;
  options.compact_min_segments = 4;
  options.compact_fanin = 4;
  return options;
}

TEST(QueryParity, MatchesOracleAcrossLifecycleStates) {
  backend::EventStore oracle;
  FlowEventStore fstore(parity_options());
  Gen gen;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    const auto ev = gen.next(i);
    oracle.add(ev, ev.detected_at + 1);
    fstore.add(ev, ev.detected_at + 1);
  }
  // Mixed state: sealed segments plus a memtable remainder.
  expect_parity(oracle, fstore, "mixed segments+memtable");

  fstore.seal_active();
  expect_parity(oracle, fstore, "fully sealed");

  ASSERT_GT(fstore.compact(), 0u);
  expect_parity(oracle, fstore, "compacted");
}

TEST(QueryParity, MatchesOracleThroughDurableReopen) {
  const auto dir = (fs::temp_directory_path() / "netseer_query_parity_test").string();
  fs::remove_all(dir);
  backend::EventStore oracle;
  {
    auto options = parity_options();
    options.dir = dir;
    FlowEventStore fstore(options);
    Gen gen;
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      const auto ev = gen.next(i);
      oracle.add(ev, ev.detected_at + 1);
      fstore.add(ev, ev.detected_at + 1);
    }
    fstore.checkpoint();
    expect_parity(oracle, fstore, "durable, pre-close");
  }
  auto options = parity_options();
  options.dir = dir;
  FlowEventStore reopened(options);
  expect_parity(oracle, reopened, "durable, reopened");
  fs::remove_all(dir);
}

// With real shard batching the LSN order differs from insertion order,
// but the *set* of results must still agree for every query shape.
TEST(QueryParity, BatchedShardsAgreeAsMultisets) {
  backend::EventStore oracle;
  auto options = parity_options();
  options.shard_batch = 16;
  FlowEventStore fstore(options);
  Gen gen;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    const auto ev = gen.next(i);
    oracle.add(ev, ev.detected_at + 1);
    fstore.add(ev, ev.detected_at + 1);
  }
  const auto sort_key = [](const backend::StoredEvent& a, const backend::StoredEvent& b) {
    if (a.event.detected_at != b.event.detected_at) {
      return a.event.detected_at < b.event.detected_at;
    }
    if (a.event.switch_id != b.event.switch_id) return a.event.switch_id < b.event.switch_id;
    return a.event.flow.hash64() < b.event.flow.hash64();
  };
  std::size_t shape_idx = 0;
  for (const auto& query : query_shapes()) {
    SCOPED_TRACE("query shape #" + std::to_string(shape_idx++));
    auto want = oracle.query(query);
    auto got = fstore.query(query);
    ASSERT_EQ(got.size(), want.size());
    std::sort(want.begin(), want.end(), sort_key);
    std::sort(got.begin(), got.end(), sort_key);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].event, want[i].event) << "row " << i;
    }
  }
}

}  // namespace
}  // namespace netseer::store
