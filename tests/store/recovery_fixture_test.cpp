// Recovery over the checked-in torn-WAL fixture
// (tests/store/fixtures/torn_wal, generated with `netseer_store gen
// <dir> 600 9000`): a WAL whose tail was torn mid-record by the fault
// injector, with no clean shutdown and no sealed segments. Recovery
// must keep the longest valid prefix (492 rows), flag the torn tail,
// and a checkpoint must turn the directory into clean segments that
// reopen without replaying anything.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "store/store.h"

#ifndef NETSEER_TEST_DIR
#error "NETSEER_TEST_DIR must point at the tests/ source directory"
#endif

namespace netseer::store {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFixtureRows = 492;  // complete records before the tear

class RecoveryFixtureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto fixture = fs::path(NETSEER_TEST_DIR) / "store" / "fixtures" / "torn_wal";
    ASSERT_TRUE(fs::exists(fixture)) << fixture;
    // Suffix with the case name: ctest runs each case as its own process,
    // possibly in parallel with siblings.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("netseer_recovery_fixture_test.") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::copy(fixture, dir_, fs::copy_options::recursive);
  }
  void TearDown() override { fs::remove_all(dir_); }

  StoreOptions opened() const {
    StoreOptions options;
    options.dir = dir_;
    return options;
  }

  std::string dir_;
};

TEST_F(RecoveryFixtureTest, ReplaysLongestValidPrefixAndFlagsTornTail) {
  FlowEventStore store(opened());
  const auto& recovery = store.recovery();
  EXPECT_TRUE(recovery.ran);
  EXPECT_TRUE(recovery.torn_tail);
  EXPECT_EQ(recovery.segments_loaded, 0u);
  EXPECT_EQ(recovery.wal_rows_replayed, kFixtureRows);
  EXPECT_EQ(recovery.max_lsn, kFixtureRows);
  EXPECT_EQ(store.size(), kFixtureRows);

  // The replayed rows are a sane, fully-decoded stream.
  const auto rows = store.all();
  ASSERT_EQ(rows.size(), kFixtureRows);
  for (const auto& stored : rows) {
    EXPECT_NE(stored.event.switch_id, util::kInvalidNode);
    EXPECT_GE(stored.stored_at, stored.event.detected_at);
  }
}

TEST_F(RecoveryFixtureTest, CheckpointThenReopenIsClean) {
  {
    FlowEventStore store(opened());
    store.checkpoint();
  }
  FlowEventStore reopened(opened());
  EXPECT_FALSE(reopened.recovery().torn_tail);
  EXPECT_EQ(reopened.recovery().wal_rows_replayed, 0u);
  EXPECT_EQ(reopened.recovery().segment_rows, kFixtureRows);
  EXPECT_EQ(reopened.size(), kFixtureRows);
}

}  // namespace
}  // namespace netseer::store
