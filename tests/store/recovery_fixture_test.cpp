// Recovery over the checked-in torn-WAL fixtures:
//
//   tests/store/fixtures/torn_wal      `netseer_store gen <dir> 600 9000`
//   tests/store/fixtures/writer_crash  `netseer_store gen <dir> 600 9000 group`
//
// Both hold the same 600-event stream with the WAL torn mid-record by
// the fault injector, no clean shutdown, no sealed segments. The first
// was written through the inline per-batch path; the second through the
// async group-commit writer (add_batch, watermark-only acks), so its
// tear lands inside an open fsync group spanning several batches.
// Recovery must treat them identically: keep the longest valid record
// prefix (492 rows for both — the tear offset cuts the same row), flag
// the torn tail, and a checkpoint must turn the directory into clean
// segments that reopen without replaying anything.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "store/store.h"

#ifndef NETSEER_TEST_DIR
#error "NETSEER_TEST_DIR must point at the tests/ source directory"
#endif

namespace netseer::store {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFixtureRows = 492;  // complete records before the tear

class TornFixtureTest : public ::testing::Test {
 protected:
  explicit TornFixtureTest(const char* fixture_name) : fixture_name_(fixture_name) {}

  void SetUp() override {
    const auto fixture = fs::path(NETSEER_TEST_DIR) / "store" / "fixtures" / fixture_name_;
    ASSERT_TRUE(fs::exists(fixture)) << fixture;
    // Suffix with the fixture and case name: ctest runs each case as its
    // own process, possibly in parallel with siblings.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("netseer_recovery_fixture_test.") + fixture_name_ + "." +
             info->name()))
               .string();
    fs::remove_all(dir_);
    fs::copy(fixture, dir_, fs::copy_options::recursive);
  }
  void TearDown() override { fs::remove_all(dir_); }

  StoreOptions opened() const {
    StoreOptions options;
    options.dir = dir_;
    return options;
  }

  std::string fixture_name_;
  std::string dir_;
};

class RecoveryFixtureTest : public TornFixtureTest {
 protected:
  RecoveryFixtureTest() : TornFixtureTest("torn_wal") {}
};

class WriterCrashFixtureTest : public TornFixtureTest {
 protected:
  WriterCrashFixtureTest() : TornFixtureTest("writer_crash") {}
};

TEST_F(RecoveryFixtureTest, ReplaysLongestValidPrefixAndFlagsTornTail) {
  FlowEventStore store(opened());
  const auto& recovery = store.recovery();
  EXPECT_TRUE(recovery.ran);
  EXPECT_TRUE(recovery.torn_tail);
  EXPECT_EQ(recovery.segments_loaded, 0u);
  EXPECT_EQ(recovery.wal_rows_replayed, kFixtureRows);
  EXPECT_EQ(recovery.max_lsn, kFixtureRows);
  EXPECT_EQ(store.size(), kFixtureRows);

  // The replayed rows are a sane, fully-decoded stream.
  const auto rows = store.all();
  ASSERT_EQ(rows.size(), kFixtureRows);
  for (const auto& stored : rows) {
    EXPECT_NE(stored.event.switch_id, util::kInvalidNode);
    EXPECT_GE(stored.stored_at, stored.event.detected_at);
  }
}

TEST_F(RecoveryFixtureTest, CheckpointThenReopenIsClean) {
  {
    FlowEventStore store(opened());
    store.checkpoint();
  }
  FlowEventStore reopened(opened());
  EXPECT_FALSE(reopened.recovery().torn_tail);
  EXPECT_EQ(reopened.recovery().wal_rows_replayed, 0u);
  EXPECT_EQ(reopened.recovery().segment_rows, kFixtureRows);
  EXPECT_EQ(reopened.size(), kFixtureRows);
}

// The group-commit fixture recovers to the exact same state: torn
// records never ack, so a tear mid-fsync-group loses only the open
// group's tail, never an acknowledged row.
TEST_F(WriterCrashFixtureTest, GroupCommitTearRecoversTheSamePrefix) {
  FlowEventStore store(opened());
  const auto& recovery = store.recovery();
  EXPECT_TRUE(recovery.ran);
  EXPECT_TRUE(recovery.torn_tail);
  EXPECT_EQ(recovery.segments_loaded, 0u);
  EXPECT_EQ(recovery.wal_rows_replayed, kFixtureRows);
  EXPECT_EQ(recovery.max_lsn, kFixtureRows);
  EXPECT_EQ(store.size(), kFixtureRows);
  // Nothing past the tear can be inside the recovered durable range.
  EXPECT_LE(store.durable_watermark(), kFixtureRows);
}

TEST_F(WriterCrashFixtureTest, CheckpointThenReopenIsClean) {
  {
    FlowEventStore store(opened());
    store.checkpoint();
  }
  FlowEventStore reopened(opened());
  EXPECT_FALSE(reopened.recovery().torn_tail);
  EXPECT_EQ(reopened.recovery().wal_rows_replayed, 0u);
  EXPECT_EQ(reopened.recovery().segment_rows, kFixtureRows);
  EXPECT_EQ(reopened.size(), kFixtureRows);
}

// The two fixtures were written through different ingest paths but
// carry the same logical stream: recovered events must agree row by
// row (stored_at legitimately differs — the batch path stamps a batch
// timestamp).
TEST_F(WriterCrashFixtureTest, RecoveredRowsMatchTheInlineFixture) {
  const auto inline_fixture =
      fs::path(NETSEER_TEST_DIR) / "store" / "fixtures" / "torn_wal";
  const auto inline_dir =
      (fs::temp_directory_path() / "netseer_recovery_fixture_test.inline_twin").string();
  fs::remove_all(inline_dir);
  fs::copy(inline_fixture, inline_dir, fs::copy_options::recursive);

  FlowEventStore group_store(opened());
  StoreOptions inline_options;
  inline_options.dir = inline_dir;
  FlowEventStore inline_store(inline_options);

  const auto group_rows = group_store.all();
  const auto inline_rows = inline_store.all();
  ASSERT_EQ(group_rows.size(), inline_rows.size());
  for (std::size_t i = 0; i < group_rows.size(); ++i) {
    ASSERT_EQ(group_rows[i].event, inline_rows[i].event) << "row " << i;
  }
  fs::remove_all(inline_dir);
}

}  // namespace
}  // namespace netseer::store
