// Crash-recovery property test: tear the WAL at arbitrary byte offsets
// via the store's fault-injection hook, reopen the directory, and check
// the recovery invariants against an identical in-memory control run:
//
//   1. recovered rows are exactly a prefix of the control's flushed
//      sequence (no holes, no duplicates, no reordering, no torn rows),
//   2. every event acknowledged by a successful sync() before the crash
//      is present (durability of the fsync point),
//   3. ingest keeps working in memory after the WAL dies.
#include <gtest/gtest.h>

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/event.h"
#include "store/store.h"

namespace netseer::store {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kEvents = 400;
constexpr std::size_t kSyncEvery = 50;

// Deterministic mixed workload: several switches (so shard batching
// reorders relative to add order), a few hundred flows, two types.
core::FlowEvent workload_event(std::uint64_t i) {
  std::uint64_t r = (i + 1) * 6364136223846793005ull;
  r ^= r >> 29;
  packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, 0, (r >> 8) & 255, 1),
                       packet::Ipv4Addr::from_octets(10, 1, 2, 3), 17,
                       static_cast<std::uint16_t>(1024 + (r & 255)), 53};
  auto ev = core::make_event(
      r % 3 == 0 ? core::EventType::kCongestion : core::EventType::kDrop, flow,
      static_cast<util::NodeId>(r % 6), static_cast<util::SimTime>(i * 10));
  ev.counter = static_cast<std::uint16_t>(1 + (r % 9));
  return ev;
}

StoreOptions small_options(const std::string& dir) {
  StoreOptions options;
  options.dir = dir;
  options.shard_batch = 8;
  options.segment_events = 64;
  options.wal_segment_bytes = 4096;  // several WAL files per run
  return options;
}

// Run the workload against `store`, syncing every kSyncEvery adds.
// Returns how many events had been added at the last successful sync —
// the acknowledged set the crash must not lose.
std::uint64_t run_workload(FlowEventStore& store) {
  std::uint64_t acked = 0;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    const auto ev = workload_event(i);
    store.add(ev, ev.detected_at + 3);
    if ((i + 1) % kSyncEvery == 0 && store.sync()) acked = i + 1;
  }
  store.flush();
  return acked;
}

TEST(WalCrashProperty, RecoveredRowsArePrefixOfAcknowledgedStream) {
  const auto dir = (fs::temp_directory_path() / "netseer_wal_crash_test").string();

  // Control: the same workload fully in memory. Its all() order is the
  // canonical LSN order — flush points depend only on the add sequence
  // and shard_batch, which the crashed runs share.
  StoreOptions mem = small_options("");
  mem.dir.clear();
  FlowEventStore control(mem);
  run_workload(control);
  const auto reference = control.all();
  ASSERT_EQ(reference.size(), kEvents);

  // Measure a clean durable run to size the crash sweep.
  fs::remove_all(dir);
  std::uint64_t total_wal_bytes = 0;
  {
    FlowEventStore clean(small_options(dir));
    run_workload(clean);
    total_wal_bytes = clean.stats().wal_bytes;
  }
  fs::remove_all(dir);
  ASSERT_GT(total_wal_bytes, 0u);

  // Sweep tears across the whole log, plus awkward offsets: before any
  // bytes, inside the file header, and inside the first record header.
  std::vector<std::uint64_t> budgets{0, 3, 8, 15, 20, 27};
  for (int i = 1; i <= 24; ++i) {
    budgets.push_back(total_wal_bytes * static_cast<std::uint64_t>(i) / 25);
  }
  budgets.push_back(total_wal_bytes + 1000);  // no tear: clean shutdown path

  for (const std::uint64_t budget : budgets) {
    SCOPED_TRACE("wal byte budget " + std::to_string(budget));
    fs::remove_all(dir);
    std::uint64_t acked = 0;
    {
      FlowEventStore store(small_options(dir));
      store.crash_after_wal_bytes(budget);
      acked = run_workload(store);
      // Whatever happens to the disk, the in-memory view stays whole.
      EXPECT_EQ(store.size(), kEvents);
    }

    FlowEventStore recovered(small_options(dir));
    EXPECT_TRUE(recovered.recovery().ran);
    const auto rows = recovered.all();

    // (2) Nothing acknowledged before the crash may be missing.
    EXPECT_GE(rows.size(), acked);
    // (1) Exactly a prefix of the control sequence: same events, same
    // stored_at, same order — which also rules out duplicates and any
    // row materialised from a torn record.
    ASSERT_LE(rows.size(), reference.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i].event, reference[i].event) << "row " << i;
      ASSERT_EQ(rows[i].stored_at, reference[i].stored_at) << "row " << i;
    }

    // (3) The recovered store ingests and serves new events.
    const auto extra = workload_event(kEvents);
    recovered.add(extra, extra.detected_at);
    recovered.flush();
    EXPECT_EQ(recovered.size(), rows.size() + 1);
  }
  fs::remove_all(dir);
}

// Regression for the crash→recover→write+sync→reopen cycle: the torn
// wal-N left behind by the first crash must neither shadow the rows a
// recovered writer acknowledged into wal-N+1, nor cause the next
// incarnation to truncate wal-N+1 by reusing its index.
TEST(WalCrashProperty, AcknowledgedRowsSurviveRepeatedCrashRecoverCycles) {
  const auto dir = (fs::temp_directory_path() / "netseer_wal_crash_cycles_test").string();
  for (const std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{27}, std::uint64_t{900},
                                     std::uint64_t{4000}, std::uint64_t{9000}}) {
    SCOPED_TRACE("cycle-1 wal byte budget " + std::to_string(budget));
    fs::remove_all(dir);

    // Cycle 1: tear the WAL partway through the workload.
    {
      FlowEventStore store(small_options(dir));
      store.crash_after_wal_bytes(budget);
      run_workload(store);
    }

    // Cycle 2: recover, ingest more, sync, and shut down cleanly —
    // everything this store holds is acknowledged durable.
    std::vector<backend::StoredEvent> expected;
    {
      FlowEventStore store(small_options(dir));
      EXPECT_TRUE(store.recovery().ran);
      for (std::uint64_t i = 0; i < 100; ++i) {
        const auto ev = workload_event(kEvents + i);
        store.add(ev, ev.detected_at + 3);
      }
      store.flush();
      ASSERT_TRUE(store.sync());
      expected = store.all();
    }

    // Cycle 3: every acknowledged row comes back, exactly once, in order.
    FlowEventStore recovered(small_options(dir));
    EXPECT_FALSE(recovered.recovery().torn_tail) << "cycle-2 repair did not stick";
    const auto rows = recovered.all();
    ASSERT_EQ(rows.size(), expected.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i].event, expected[i].event) << "row " << i;
      ASSERT_EQ(rows[i].stored_at, expected[i].stored_at) << "row " << i;
    }
  }
  fs::remove_all(dir);
}

// Same shape, but the second incarnation crashes too: recovery after a
// double tear must still hold the second cycle's fsync point.
TEST(WalCrashProperty, SecondCrashStillKeepsItsOwnFsyncPoint) {
  const auto dir = (fs::temp_directory_path() / "netseer_wal_crash_double_test").string();
  fs::remove_all(dir);
  {
    FlowEventStore store(small_options(dir));
    store.crash_after_wal_bytes(5000);
    run_workload(store);
  }
  std::uint64_t baseline = 0;   // rows recovered from cycle 1
  std::uint64_t acked = 0;      // rows acknowledged before cycle 2's tear
  {
    FlowEventStore store(small_options(dir));
    baseline = store.size();
    store.crash_after_wal_bytes(3000);
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      const auto ev = workload_event(kEvents + i);
      store.add(ev, ev.detected_at + 3);
      if ((i + 1) % kSyncEvery == 0 && store.sync()) acked = i + 1;
    }
    store.flush();
  }
  FlowEventStore recovered(small_options(dir));
  // No row recovered the first time may vanish, and nothing cycle 2
  // acknowledged before its own tear may be lost either.
  EXPECT_GE(recovered.size(), baseline + acked);
  fs::remove_all(dir);
}

// Group-commit sweep: ingest through the batch-first API with
// watermark-only acks — no inline fsync at all, sync() only every few
// chunks — and tear the WAL at offsets across the whole log, so tears
// land inside open fsync groups spanning several shard batches. The
// recovery invariants are the same as the inline sweep's: recovered
// rows are exactly a prefix of the control stream, and nothing inside
// the watermark observed at the last successful sync() may be lost.
TEST(WalCrashProperty, GroupCommitTearsKeepEveryWatermarkedRow) {
  const auto dir = (fs::temp_directory_path() / "netseer_wal_crash_gc_test").string();
  constexpr std::size_t kChunk = 32;

  const auto run_batched = [&](FlowEventStore& store, std::uint64_t* acked) {
    std::vector<core::FlowEvent> chunk;
    std::uint64_t synced = 0;
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      chunk.push_back(workload_event(i));
      if (chunk.size() == kChunk) {
        store.add_batch(std::span<const core::FlowEvent>{chunk.data(), chunk.size()},
                        chunk.back().detected_at + 3);
        chunk.clear();
        if (++synced % 4 == 0 && store.sync()) *acked = store.durable_watermark();
      }
    }
    if (!chunk.empty()) {
      store.add_batch(std::span<const core::FlowEvent>{chunk.data(), chunk.size()},
                      chunk.back().detected_at + 3);
    }
    store.flush();
  };

  // Control: identical batched stream fully in memory — its all() order
  // is the canonical LSN order for every crashed run below.
  StoreOptions mem = small_options("");
  mem.dir.clear();
  FlowEventStore control(mem);
  std::uint64_t ignored = 0;
  run_batched(control, &ignored);
  const auto reference = control.all();
  ASSERT_EQ(reference.size(), kEvents);

  fs::remove_all(dir);
  std::uint64_t total_wal_bytes = 0;
  {
    FlowEventStore clean(small_options(dir));
    std::uint64_t acked = 0;
    run_batched(clean, &acked);
    ASSERT_TRUE(clean.sync());
    total_wal_bytes = clean.stats().wal_bytes;
  }
  fs::remove_all(dir);
  ASSERT_GT(total_wal_bytes, 0u);

  std::vector<std::uint64_t> budgets{0, 3, 8, 15, 20, 27};
  for (int i = 1; i <= 16; ++i) {
    budgets.push_back(total_wal_bytes * static_cast<std::uint64_t>(i) / 17);
  }
  budgets.push_back(total_wal_bytes + 1000);  // no tear: clean shutdown path

  for (const std::uint64_t budget : budgets) {
    SCOPED_TRACE("wal byte budget " + std::to_string(budget));
    fs::remove_all(dir);
    std::uint64_t acked = 0;
    {
      FlowEventStore store(small_options(dir));
      store.crash_after_wal_bytes(budget);
      run_batched(store, &acked);
      EXPECT_EQ(store.size(), kEvents);  // in-memory view survives the dead WAL
    }

    FlowEventStore recovered(small_options(dir));
    EXPECT_TRUE(recovered.recovery().ran);
    const auto rows = recovered.all();

    // Durability of the watermark: every row sync() acknowledged exists.
    EXPECT_GE(rows.size(), acked);
    // Prefix property: no holes, duplicates, reordering, or torn rows.
    ASSERT_LE(rows.size(), reference.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i].event, reference[i].event) << "row " << i;
      ASSERT_EQ(rows[i].stored_at, reference[i].stored_at) << "row " << i;
    }
  }
  fs::remove_all(dir);
}

TEST(WalCrashProperty, SyncEveryBatchShrinksTheLossWindowToZero) {
  const auto dir = (fs::temp_directory_path() / "netseer_wal_crash_sync_test").string();
  fs::remove_all(dir);
  auto options = small_options(dir);
  options.sync_every_batch = true;
  std::uint64_t flushed = 0;
  {
    FlowEventStore store(options);
    // Tear mid-log; with per-batch fsync every *flushed* batch is
    // already acknowledged, so recovery must keep every complete record.
    store.crash_after_wal_bytes(6000);
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      const auto ev = workload_event(i);
      store.add(ev, ev.detected_at);
      if (!store.wal_dead()) flushed = store.durable_lsn();
    }
  }
  FlowEventStore recovered(small_options(dir));
  EXPECT_GE(recovered.size(), flushed);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace netseer::store
