#include "store/segment.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/event.h"

namespace netseer::store {
namespace {

namespace fs = std::filesystem;

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Suffix with the case name: ctest runs each case as its own process,
    // possibly in parallel with siblings.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() / (std::string("netseer_segment_test.") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static Row row(std::uint64_t lsn, util::NodeId node, std::uint16_t sport,
                 core::EventType type = core::EventType::kDrop) {
    auto ev = core::make_event(type,
                               packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                                               packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6,
                                               sport, 80},
                               node, static_cast<util::SimTime>(lsn * 100));
    return Row{backend::StoredEvent{ev, static_cast<util::SimTime>(lsn * 100 + 7)}, lsn};
  }

  std::string dir_;
};

TEST_F(SegmentTest, BuildComputesFencesAndIndexes) {
  std::vector<Row> rows{row(10, 1, 1000), row(11, 2, 1001), row(12, 1, 1000),
                        row(13, 3, 1002, core::EventType::kCongestion)};
  const auto segment = Segment::build(std::move(rows));
  EXPECT_EQ(segment.size(), 4u);
  EXPECT_EQ(segment.min_lsn(), 10u);
  EXPECT_EQ(segment.max_lsn(), 13u);
  EXPECT_EQ(segment.min_time(), 1000);
  EXPECT_EQ(segment.max_time(), 1300);
  EXPECT_EQ(segment.type_count(core::EventType::kDrop), 3u);
  EXPECT_EQ(segment.type_count(core::EventType::kCongestion), 1u);
  EXPECT_EQ(segment.type_count(core::EventType::kPause), 0u);

  const auto* same_flow = segment.flow_rows(row(0, 1, 1000).stored.event.flow.hash64());
  ASSERT_NE(same_flow, nullptr);
  EXPECT_EQ(same_flow->size(), 2u);
  const auto* node1 = segment.switch_rows(1);
  ASSERT_NE(node1, nullptr);
  EXPECT_EQ(node1->size(), 2u);
  EXPECT_EQ(segment.switch_rows(99), nullptr);
}

TEST_F(SegmentTest, OverlapUsesFences) {
  const auto segment = Segment::build({row(1, 1, 1000), row(2, 1, 1001)});  // times 100..200
  EXPECT_TRUE(segment.overlaps(std::nullopt, std::nullopt));
  EXPECT_TRUE(segment.overlaps(100, 101));
  EXPECT_TRUE(segment.overlaps(200, std::nullopt));
  EXPECT_FALSE(segment.overlaps(201, std::nullopt));  // starts past max_time
  EXPECT_FALSE(segment.overlaps(std::nullopt, 100));  // to exclusive
  EXPECT_TRUE(segment.overlaps(std::nullopt, 101));
}

TEST_F(SegmentTest, SaveLoadRoundTrip) {
  std::vector<Row> rows;
  for (std::uint64_t i = 0; i < 100; ++i) {
    rows.push_back(row(50 + i, static_cast<util::NodeId>(i % 4),
                       static_cast<std::uint16_t>(2000 + i % 16)));
  }
  const auto segment = Segment::build(std::move(rows));
  const auto path = segment_path(dir_, 7);
  ASSERT_TRUE(segment.save(path));

  const auto loaded = Segment::load(path, 7);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->file_id(), 7u);
  ASSERT_EQ(loaded->size(), 100u);
  EXPECT_EQ(loaded->min_lsn(), 50u);
  EXPECT_EQ(loaded->max_lsn(), 149u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(loaded->rows()[i].lsn, segment.rows()[i].lsn);
    EXPECT_EQ(loaded->rows()[i].stored.event, segment.rows()[i].stored.event);
    EXPECT_EQ(loaded->rows()[i].stored.stored_at, segment.rows()[i].stored.stored_at);
  }
  // Indexes are rebuilt on load.
  EXPECT_NE(loaded->switch_rows(1), nullptr);
}

TEST_F(SegmentTest, LoadRejectsFlippedByte) {
  const auto segment = Segment::build({row(1, 1, 1000), row(2, 1, 1001)});
  const auto path = segment_path(dir_, 1);
  ASSERT_TRUE(segment.save(path));
  const auto size = fs::file_size(path);
  for (const std::uintmax_t offset : {std::uintmax_t{10}, size / 2, size - 2}) {
    auto bytes = [&] {
      std::ifstream in(path, std::ios::binary);
      return std::string(std::istreambuf_iterator<char>(in), {});
    }();
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x10);
    const auto mangled = (fs::path(dir_) / "mangled.seg").string();
    std::ofstream(mangled, std::ios::binary) << bytes;
    EXPECT_FALSE(Segment::load(mangled, 1).has_value()) << "offset " << offset;
  }
}

TEST_F(SegmentTest, LoadRejectsTruncation) {
  const auto segment = Segment::build({row(1, 1, 1000), row(2, 1, 1001)});
  const auto path = segment_path(dir_, 1);
  ASSERT_TRUE(segment.save(path));
  const auto size = fs::file_size(path);
  for (std::uintmax_t keep = 0; keep < size; keep += 7) {
    const auto cut = (fs::path(dir_) / "cut.seg").string();
    fs::copy_file(path, cut, fs::copy_options::overwrite_existing);
    fs::resize_file(cut, keep);
    EXPECT_FALSE(Segment::load(cut, 1).has_value()) << "kept " << keep << " bytes";
  }
}

TEST_F(SegmentTest, LoadRejectsTrailingBytes) {
  // A mangled count field that shrank past real rows (or appended
  // garbage) leaves bytes after the footer; load must not accept the
  // file as a smaller segment.
  const auto segment = Segment::build({row(1, 1, 1000), row(2, 1, 1001)});
  const auto path = segment_path(dir_, 1);
  ASSERT_TRUE(segment.save(path));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << 'x';
  }
  EXPECT_FALSE(Segment::load(path, 1).has_value());
}

TEST_F(SegmentTest, ListSegmentFilesSortsAndFilters) {
  ASSERT_TRUE(Segment::build({row(1, 1, 1)}).save(segment_path(dir_, 12)));
  ASSERT_TRUE(Segment::build({row(2, 1, 2)}).save(segment_path(dir_, 3)));
  std::ofstream(fs::path(dir_) / "notasegment.txt") << "x";
  const auto files = list_segment_files(dir_);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].index, 3u);
  EXPECT_EQ(files[1].index, 12u);
}

}  // namespace
}  // namespace netseer::store
