#include "store/store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/event.h"
#include "sim/simulator.h"

namespace netseer::store {
namespace {

namespace fs = std::filesystem;

core::FlowEvent event_at(std::uint64_t i, util::NodeId node = 1,
                         core::EventType type = core::EventType::kDrop) {
  auto ev = core::make_event(type,
                             packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                                             packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6,
                                             static_cast<std::uint16_t>(1024 + i % 512), 80},
                             node, static_cast<util::SimTime>(i * 10));
  return ev;
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Suffix with the case name: ctest runs each case as its own process,
    // possibly in parallel with siblings.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() / (std::string("netseer_store_test.") + info->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(StoreTest, QueryAnswersAcrossShardsMemtableAndSegments) {
  StoreOptions options;
  options.shard_batch = 4;
  options.segment_events = 16;
  FlowEventStore store(options);
  // 100 events spread over 5 switches: some sealed, some in the
  // memtable, some still sitting in shard buffers.
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto ev = event_at(i, static_cast<util::NodeId>(i % 5));
    store.add(ev, ev.detected_at + 1);
  }
  EXPECT_EQ(store.size(), 100u);
  EXPECT_GT(store.segment_count(), 0u);

  backend::EventQuery by_switch;
  by_switch.switch_id = 2;
  EXPECT_EQ(store.count(by_switch), 20u);

  backend::EventQuery window;
  window.from = 100;
  window.to = 300;  // detected_at 100..290 -> i in [10, 30)
  EXPECT_EQ(store.count(window), 20u);

  // all() returns rows in LSN order — shard batching interleaves
  // detection times — but every ingested event appears exactly once.
  auto all = store.all();
  ASSERT_EQ(all.size(), 100u);
  std::vector<util::SimTime> times;
  times.reserve(all.size());
  for (const auto& stored : all) times.push_back(stored.event.detected_at);
  std::sort(times.begin(), times.end());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(times[i], static_cast<util::SimTime>(i * 10));
  }
}

TEST_F(StoreTest, SealAndCompactPreserveQueryResults) {
  StoreOptions options;
  options.segment_events = 8;
  options.compact_min_segments = 2;
  options.compact_fanin = 4;
  FlowEventStore store(options);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto ev = event_at(i, static_cast<util::NodeId>(i % 3),
                             i % 4 == 0 ? core::EventType::kCongestion
                                        : core::EventType::kDrop);
    store.add(ev, ev.detected_at);
  }
  store.flush();
  store.seal_active();

  backend::EventQuery congestion;
  congestion.type = core::EventType::kCongestion;
  const auto before = store.query(congestion);
  const auto segments_before = store.segment_count();

  EXPECT_GT(store.compact(), 0u);
  EXPECT_LT(store.segment_count(), segments_before);
  EXPECT_GT(store.stats().compactions, 0u);

  const auto after = store.query(congestion);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].event, before[i].event);
  }
  EXPECT_EQ(store.size(), 200u);
}

TEST_F(StoreTest, RetentionEvictsOldestSegmentsAndCounts) {
  StoreOptions options;
  options.shard_batch = 10;  // seal per batch: ten 10-row segments
  options.segment_events = 10;
  options.retain_events = 30;
  FlowEventStore store(options);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto ev = event_at(i);
    store.add(ev, ev.detected_at);
  }
  store.flush();
  store.seal_active();
  EXPECT_GT(store.enforce_retention(), 0u);
  EXPECT_GT(store.stats().segments_evicted, 0u);
  EXPECT_GT(store.stats().events_evicted, 0u);
  // Only recent rows survive; the oldest event is gone.
  backend::EventQuery oldest;
  oldest.to = 10;  // the first event only (detected_at 0)
  EXPECT_EQ(store.count(oldest), 0u);
  const auto all = store.all();
  ASSERT_FALSE(all.empty());
  EXPECT_LE(all.size(), 30u + options.segment_events);
  // Survivors are the newest suffix.
  EXPECT_EQ(all.back().event.detected_at, 990);
}

TEST_F(StoreTest, MaintenanceRunsOnSimulatorClock) {
  StoreOptions options;
  options.shard_batch = 8;
  options.segment_events = 8;
  options.compact_min_segments = 2;
  FlowEventStore store(options);
  sim::Simulator sim;
  auto handle = store.start_maintenance(sim, util::microseconds(10));
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto ev = event_at(i);
    store.add(ev, ev.detected_at);
  }
  store.flush();
  const auto segments_before = store.segment_count();
  sim.run_until(util::microseconds(50));
  handle.cancel();
  sim.run();
  EXPECT_GT(store.stats().compactions, 0u);
  EXPECT_LT(store.segment_count(), segments_before);
}

TEST_F(StoreTest, CheckpointReopenRoundTrip) {
  backend::EventQuery congestion;
  congestion.type = core::EventType::kCongestion;
  std::vector<backend::StoredEvent> expected;
  {
    StoreOptions options;
    options.dir = dir_;
    options.segment_events = 32;
    FlowEventStore store(options);
    for (std::uint64_t i = 0; i < 500; ++i) {
      const auto ev = event_at(i, static_cast<util::NodeId>(i % 7),
                               i % 3 == 0 ? core::EventType::kCongestion
                                          : core::EventType::kPause);
      store.add(ev, ev.detected_at + 2);
    }
    store.checkpoint();
    expected = store.query(congestion);
    EXPECT_EQ(store.size(), 500u);
    // Checkpoint sealed everything into durable segments and reclaimed
    // the WAL files they made obsolete.
    EXPECT_GT(store.stats().wal_files_deleted, 0u);
  }
  {
    StoreOptions options;
    options.dir = dir_;
    FlowEventStore store(options);
    EXPECT_TRUE(store.recovery().ran);
    EXPECT_FALSE(store.recovery().torn_tail);
    EXPECT_EQ(store.size(), 500u);
    EXPECT_EQ(store.recovery().segment_rows, 500u);
    EXPECT_EQ(store.recovery().wal_rows_replayed, 0u);
    const auto got = store.query(congestion);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].event, expected[i].event);
      EXPECT_EQ(got[i].stored_at, expected[i].stored_at);
    }
  }
}

TEST_F(StoreTest, ReopenWithoutCheckpointReplaysWal) {
  {
    StoreOptions options;
    options.dir = dir_;
    options.segment_events = 1u << 20u;  // nothing seals: rows live in the WAL
    FlowEventStore store(options);
    for (std::uint64_t i = 0; i < 50; ++i) {
      const auto ev = event_at(i);
      store.add(ev, ev.detected_at);
    }
    store.flush();
    ASSERT_TRUE(store.sync());
    EXPECT_EQ(store.durable_lsn(), 50u);
    // No checkpoint: destructor closes the WAL, segments were never
    // written, so reopen must recover everything from the log.
  }
  {
    StoreOptions options;
    options.dir = dir_;
    FlowEventStore store(options);
    EXPECT_EQ(store.recovery().wal_rows_replayed, 50u);
    EXPECT_EQ(store.recovery().segments_loaded, 0u);
    EXPECT_EQ(store.size(), 50u);
  }
}

TEST_F(StoreTest, RecoveryDropsSegmentsSupersededByCompactionOutput) {
  // Simulate a crash between compact()'s rename and its input deletes:
  // the merged output and both of its inputs are all on disk.
  fs::create_directories(dir_);
  std::vector<Row> first, second, merged;
  for (std::uint64_t lsn = 1; lsn <= 8; ++lsn) {
    const Row r{backend::StoredEvent{event_at(lsn), static_cast<util::SimTime>(lsn * 10 + 1)},
                lsn};
    (lsn <= 4 ? first : second).push_back(r);
    merged.push_back(r);
  }
  ASSERT_TRUE(Segment::build(first).save(segment_path(dir_, 1)));
  ASSERT_TRUE(Segment::build(second).save(segment_path(dir_, 2)));
  ASSERT_TRUE(Segment::build(merged).save(segment_path(dir_, 3)));

  StoreOptions options;
  options.dir = dir_;
  FlowEventStore store(options);
  EXPECT_EQ(store.recovery().segments_superseded, 2u);
  EXPECT_EQ(store.recovery().segments_loaded, 1u);
  EXPECT_EQ(store.recovery().segment_rows, 8u);

  // No duplicated rows, and the stale input files are gone from disk.
  const auto rows = store.all();
  ASSERT_EQ(rows.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rows[i].event, merged[i].stored.event) << "row " << i;
  }
  const auto files = list_segment_files(dir_);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0].index, 3u);
}

TEST_F(StoreTest, RecoveryKeepsNewerOfIdenticalRangeSegments) {
  // A compaction whose output covers exactly the same LSN range as a
  // single surviving input (fanin collapsed by earlier eviction): the
  // newer file id is the output and wins; exactly one copy survives.
  fs::create_directories(dir_);
  std::vector<Row> rows;
  for (std::uint64_t lsn = 1; lsn <= 4; ++lsn) {
    rows.push_back(
        Row{backend::StoredEvent{event_at(lsn), static_cast<util::SimTime>(lsn * 10 + 1)}, lsn});
  }
  ASSERT_TRUE(Segment::build(rows).save(segment_path(dir_, 1)));
  ASSERT_TRUE(Segment::build(rows).save(segment_path(dir_, 2)));

  StoreOptions options;
  options.dir = dir_;
  FlowEventStore store(options);
  EXPECT_EQ(store.recovery().segments_superseded, 1u);
  EXPECT_EQ(store.size(), 4u);
  const auto files = list_segment_files(dir_);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0].index, 2u);
}

TEST_F(StoreTest, CursorStreamsInOrderAndCountsPruning) {
  StoreOptions options;
  options.shard_batch = 16;
  options.segment_events = 16;
  FlowEventStore store(options);
  for (std::uint64_t i = 0; i < 160; ++i) {
    const auto ev = event_at(i);
    store.add(ev, ev.detected_at);
  }
  store.flush();
  store.seal_active();
  ASSERT_GE(store.segment_count(), 10u);

  backend::EventQuery window;
  window.from = 200;
  window.to = 400;  // covers ~2 of 10 segments
  const auto pruned_before = store.stats().segments_pruned;
  auto cursor = store.scan(window);
  std::size_t n = 0;
  util::SimTime last = -1;
  for (const auto* stored = cursor.next(); stored != nullptr; stored = cursor.next()) {
    EXPECT_GE(stored->event.detected_at, 200);
    EXPECT_LT(stored->event.detected_at, 400);
    EXPECT_GT(stored->event.detected_at, last);
    last = stored->event.detected_at;
    ++n;
  }
  EXPECT_EQ(n, 20u);
  EXPECT_GT(store.stats().segments_pruned, pruned_before);
}

TEST_F(StoreTest, TypeCountPrunesSegmentsWithoutThatType) {
  StoreOptions options;
  options.shard_batch = 8;
  options.segment_events = 8;
  FlowEventStore store(options);
  // First 80 events are drops, last 8 are pauses: only the last segment
  // can contain pauses, the rest prune on the per-type count.
  for (std::uint64_t i = 0; i < 88; ++i) {
    const auto ev =
        event_at(i, 1, i < 80 ? core::EventType::kDrop : core::EventType::kPause);
    store.add(ev, ev.detected_at);
  }
  store.flush();
  store.seal_active();
  const auto pruned_before = store.stats().segments_pruned;
  backend::EventQuery pauses;
  pauses.type = core::EventType::kPause;
  EXPECT_EQ(store.count(pauses), 8u);
  EXPECT_GE(store.stats().segments_pruned - pruned_before, 9u);
}

TEST_F(StoreTest, ParseQueryAcceptsFullSpecAndRejectsGarbage) {
  std::string error;
  const auto query =
      parse_query("type=congestion,switch=7,from=100,to=2000", &error);
  ASSERT_TRUE(query.has_value()) << error;
  EXPECT_EQ(query->type, core::EventType::kCongestion);
  EXPECT_EQ(query->switch_id, 7u);
  EXPECT_EQ(query->from, 100);
  EXPECT_EQ(query->to, 2000);

  const auto flow = parse_query("flow=10.0.0.1:1234>10.0.0.2:80/6", &error);
  ASSERT_TRUE(flow.has_value()) << error;
  ASSERT_TRUE(flow->flow.has_value());
  EXPECT_EQ(flow->flow->sport, 1234);
  EXPECT_EQ(flow->flow->dport, 80);
  EXPECT_EQ(flow->flow->proto, 6);

  EXPECT_FALSE(parse_query("type=banana", &error).has_value());
  EXPECT_FALSE(parse_query("nonsense", &error).has_value());
  EXPECT_FALSE(parse_query("from=abc", &error).has_value());
}

TEST_F(StoreTest, WalDeathKeepsStoreServingFromMemory) {
  StoreOptions options;
  options.dir = dir_;
  options.shard_batch = 4;
  FlowEventStore store(options);
  store.crash_after_wal_bytes(64);
  for (std::uint64_t i = 0; i < 40; ++i) {
    const auto ev = event_at(i);
    store.add(ev, ev.detected_at);
  }
  store.flush();
  EXPECT_TRUE(store.wal_dead());
  EXPECT_GT(store.stats().wal_append_failures, 0u);
  // Ingest and queries keep working in memory.
  EXPECT_EQ(store.size(), 40u);
  backend::EventQuery any;
  EXPECT_EQ(store.count(any), 40u);
}

}  // namespace
}  // namespace netseer::store
