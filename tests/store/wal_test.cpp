#include "store/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/event.h"

namespace netseer::store {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Suffix with the case name: ctest runs each case as its own process,
    // possibly in parallel with siblings.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() / (std::string("netseer_wal_test.") + info->name())).string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static Row row(std::uint64_t lsn, std::uint16_t sport = 99) {
    auto ev = core::make_event(core::EventType::kDrop,
                               packet::FlowKey{packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                                               packet::Ipv4Addr::from_octets(10, 0, 0, 2), 6,
                                               sport, 80},
                               /*switch_id=*/3, /*now=*/static_cast<util::SimTime>(lsn * 10));
    return Row{backend::StoredEvent{ev, static_cast<util::SimTime>(lsn * 10 + 5)}, lsn};
  }

  static std::vector<Row> rows(std::uint64_t first_lsn, std::size_t n) {
    std::vector<Row> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(row(first_lsn + i, static_cast<std::uint16_t>(100 + i)));
    }
    return out;
  }

  std::string dir_;
};

TEST_F(WalTest, AppendSyncReplayRoundTrip) {
  {
    WalWriter writer({dir_});
    ASSERT_TRUE(writer.append(rows(1, 5)));
    ASSERT_TRUE(writer.append(rows(6, 3)));
    ASSERT_TRUE(writer.sync());
  }
  std::vector<Row> replayed;
  const auto result = replay_wal_dir(dir_, 0, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_EQ(result.records, 2u);
  EXPECT_EQ(result.rows, 8u);
  EXPECT_EQ(result.max_lsn, 8u);
  EXPECT_FALSE(result.torn_tail);
  ASSERT_EQ(replayed.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(replayed[i].lsn, i + 1);
    EXPECT_EQ(replayed[i].stored.event.flow.sport, 100 + (i % 5));
  }
}

TEST_F(WalTest, WatermarkSkipsSealedRows) {
  {
    WalWriter writer({dir_});
    ASSERT_TRUE(writer.append(rows(1, 10)));
  }
  std::vector<Row> replayed;
  const auto result = replay_wal_dir(dir_, 7, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_EQ(result.skipped_rows, 7u);
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed.front().lsn, 8u);
}

TEST_F(WalTest, RotatesAtSegmentBytes) {
  WalWriter::Options options;
  options.dir = dir_;
  options.segment_bytes = 256;  // a couple of records per file
  WalWriter writer(options);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer.append(rows(1 + i * 4, 4)));
  }
  ASSERT_TRUE(writer.sync());  // flush stdio buffering before replaying
  EXPECT_GT(writer.files_opened(), 5u);
  std::vector<Row> replayed;
  const auto result = replay_wal_dir(dir_, 0, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_EQ(result.rows, 80u);
  EXPECT_GT(result.files, 5u);
  EXPECT_FALSE(result.torn_tail);
}

TEST_F(WalTest, RemoveObsoleteReclaimsCoveredFiles) {
  WalWriter::Options options;
  options.dir = dir_;
  options.segment_bytes = 256;
  WalWriter writer(options);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer.append(rows(1 + i * 4, 4)));
  }
  ASSERT_TRUE(writer.sync());
  const auto before = list_wal_files(dir_).size();
  EXPECT_GT(writer.remove_obsolete(40), 0u);
  EXPECT_LT(list_wal_files(dir_).size(), before);
  // Rows above the watermark must still replay.
  std::vector<Row> replayed;
  const auto result = replay_wal_dir(dir_, 40, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(replayed.size(), 40u);
  EXPECT_EQ(result.max_lsn, 80u);
}

TEST_F(WalTest, TornTailStopsReplayCleanly) {
  {
    WalWriter writer({dir_});
    ASSERT_TRUE(writer.append(rows(1, 4)));
    ASSERT_TRUE(writer.append(rows(5, 4)));
  }
  // Tear bytes off the end: the second record becomes unreadable, the
  // first must survive untouched.
  const auto files = list_wal_files(dir_);
  ASSERT_EQ(files.size(), 1u);
  fs::resize_file(files[0].path, files[0].bytes - 30);

  std::vector<Row> replayed;
  const auto result = replay_wal_dir(dir_, 0, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.records, 1u);
  ASSERT_EQ(replayed.size(), 4u);
  EXPECT_EQ(replayed.back().lsn, 4u);
}

TEST_F(WalTest, TornFileDoesNotHideLaterFiles) {
  // Crash cycle 1 tears wal-1; a recovered writer then fills wal-2 with
  // acknowledged rows. Replay must deliver wal-1's valid prefix AND all
  // of wal-2, and last_file_index must cover wal-2 so the next writer
  // never truncates it.
  {
    WalWriter writer({dir_});
    ASSERT_TRUE(writer.append(rows(1, 4)));
    ASSERT_TRUE(writer.append(rows(5, 4)));
  }
  const auto files = list_wal_files(dir_);
  ASSERT_EQ(files.size(), 1u);
  fs::resize_file(files[0].path, files[0].bytes - 30);  // tear the second record
  {
    WalWriter writer({dir_}, /*first_file_index=*/2);
    ASSERT_TRUE(writer.append(rows(5, 6)));  // LSNs 5..10 reissued post-recovery
    ASSERT_TRUE(writer.sync());
  }

  std::vector<Row> replayed;
  const auto result = replay_wal_dir(dir_, 0, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.last_file_index, 2u);
  ASSERT_EQ(replayed.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(replayed[i].lsn, i + 1);
}

TEST_F(WalTest, RepairTruncatesTornTailForCleanReplays) {
  {
    WalWriter writer({dir_});
    ASSERT_TRUE(writer.append(rows(1, 4)));
    ASSERT_TRUE(writer.append(rows(5, 4)));
  }
  const auto files = list_wal_files(dir_);
  ASSERT_EQ(files.size(), 1u);
  fs::resize_file(files[0].path, files[0].bytes - 30);

  std::vector<Row> replayed;
  auto result = replay_wal_dir(dir_, 0, [&](Row&& r) { replayed.push_back(r); },
                               /*repair=*/true);
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(result.repaired_files, 1u);
  ASSERT_EQ(replayed.size(), 4u);

  // The torn tail is gone: replaying again is clean and sees the same
  // valid prefix.
  replayed.clear();
  result = replay_wal_dir(dir_, 0, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.repaired_files, 0u);
  ASSERT_EQ(replayed.size(), 4u);
  EXPECT_EQ(replayed.back().lsn, 4u);
}

TEST_F(WalTest, ZeroByteFileReplaysAsCleanEmpty) {
  {
    WalWriter writer({dir_});
    ASSERT_TRUE(writer.append(rows(1, 4)));
    ASSERT_TRUE(writer.sync());
  }
  // A crash between rotation and the buffered header write leaves a
  // zero-byte file: no records were ever visible, so it is not torn.
  std::ofstream((fs::path(dir_) / "wal-00000002.log").string(), std::ios::binary);
  std::vector<Row> replayed;
  const auto result = replay_wal_dir(dir_, 0, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.last_file_index, 2u);
  EXPECT_EQ(replayed.size(), 4u);
}

TEST_F(WalTest, OversizedBatchSplitsIntoMultipleRecords) {
  // More rows than the u16 record count can hold: append must frame
  // several records, and every row must replay.
  constexpr std::size_t kBig = (1u << 16) + 10;
  {
    WalWriter writer({dir_});
    ASSERT_TRUE(writer.append(rows(1, kBig)));
    ASSERT_TRUE(writer.sync());
  }
  std::uint64_t n = 0;
  std::uint64_t last_lsn = 0;
  const auto result = replay_wal_dir(dir_, 0, [&](Row&& r) {
    ++n;
    last_lsn = r.lsn;
  });
  EXPECT_FALSE(result.torn_tail);
  EXPECT_GE(result.records, 2u);
  EXPECT_EQ(n, kBig);
  EXPECT_EQ(last_lsn, kBig);
}

TEST_F(WalTest, CorruptPayloadByteFailsCrc) {
  {
    WalWriter writer({dir_});
    ASSERT_TRUE(writer.append(rows(1, 4)));
  }
  const auto files = list_wal_files(dir_);
  ASSERT_EQ(files.size(), 1u);
  {
    std::fstream f(files[0].path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(files[0].bytes) - 10);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  std::vector<Row> replayed;
  const auto result = replay_wal_dir(dir_, 0, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(replayed.size(), 0u);
}

TEST_F(WalTest, FaultBudgetTearsMidRecordAndKillsWriter) {
  WalWriter writer({dir_});
  ASSERT_TRUE(writer.append(rows(1, 4)));
  writer.fail_after_bytes(30);  // next record tears 30 bytes in
  EXPECT_FALSE(writer.append(rows(5, 4)));
  EXPECT_TRUE(writer.dead());
  EXPECT_FALSE(writer.append(rows(9, 4)));  // stays dead
  EXPECT_FALSE(writer.sync());

  std::vector<Row> replayed;
  const auto result = replay_wal_dir(dir_, 0, [&](Row&& r) { replayed.push_back(r); });
  EXPECT_TRUE(result.torn_tail);
  EXPECT_EQ(replayed.size(), 4u);
}

TEST_F(WalTest, EmptyDirReplaysToNothing) {
  const auto result = replay_wal_dir(dir_, 0, [](Row&&) { FAIL(); });
  EXPECT_EQ(result.files, 0u);
  EXPECT_EQ(result.max_lsn, 0u);
  EXPECT_FALSE(result.torn_tail);
}

}  // namespace
}  // namespace netseer::store
