#include "scenarios/incidents.h"

#include <gtest/gtest.h>

namespace netseer::scenarios {
namespace {

TEST(Incidents, RoutingErrorLocatedFast) {
  IncidentSuite suite(1);
  const auto report = suite.routing_error();
  ASSERT_TRUE(report.located()) << report.evidence;
  EXPECT_GT(report.attributable_events, 0u);
  // Sub-second in-sim detection vs 162 operator-minutes in the paper.
  EXPECT_LT(report.detection_latency, util::seconds(1));
  EXPECT_EQ(report.id, "#1");
}

TEST(Incidents, AclMisconfigurationNamesRule) {
  IncidentSuite suite(1);
  const auto report = suite.acl_misconfiguration();
  ASSERT_TRUE(report.located()) << report.evidence;
  EXPECT_GT(report.attributable_events, 0u);
  EXPECT_NE(report.evidence.find("rule 501"), std::string::npos);
}

TEST(Incidents, ParityErrorLocalizedToOneAgg) {
  IncidentSuite suite(1);
  const auto report = suite.parity_error();
  ASSERT_TRUE(report.located()) << report.evidence;
  // Several client flows blackholed probabilistically; all attributable.
  EXPECT_GT(report.attributable_events, 3u);
  EXPECT_LT(report.detection_latency, util::seconds(1));
}

TEST(Incidents, UnexpectedVolumeFindsBully) {
  IncidentSuite suite(1);
  const auto report = suite.unexpected_volume();
  ASSERT_TRUE(report.located()) << report.evidence;
  EXPECT_NE(report.evidence.find("IS a bully"), std::string::npos) << report.evidence;
}

TEST(Incidents, ServerSideBugExoneratesNetwork) {
  IncidentSuite suite(1);
  const auto report = suite.server_side_bug();
  EXPECT_TRUE(report.network_exonerated) << report.evidence;
  EXPECT_EQ(report.attributable_events, 0u);
  // The red herring existed: unrelated events at the same ToR.
  EXPECT_EQ(report.evidence.find(" 0 unrelated"), std::string::npos) << report.evidence;
}

TEST(Incidents, RunAllProducesFiveReports) {
  IncidentSuite suite(2);  // different seed still works
  const auto reports = suite.run_all();
  ASSERT_EQ(reports.size(), 5u);
  for (const auto& report : reports) {
    EXPECT_FALSE(report.name.empty());
    EXPECT_GT(report.paper_without_minutes, 0.0);
  }
}

}  // namespace
}  // namespace netseer::scenarios
