#include "scenarios/sla.h"

#include <gtest/gtest.h>

namespace netseer::scenarios {
namespace {

class SlaStudyTest : public ::testing::Test {
 protected:
  static const SlaStudyResult& result() {
    static const SlaStudyResult r = run_sla_study(SlaStudyConfig{.seed = 3});
    return r;
  }
};

TEST_F(SlaStudyTest, ProducesSlowRpcs) {
  EXPECT_GT(result().total_rpcs, 200u);
  EXPECT_GT(result().slow_rpcs, 10u);
  EXPECT_LT(result().slow_rpcs, result().total_rpcs);
}

TEST_F(SlaStudyTest, BreakdownsSumToOne) {
  for (const auto* b : {&result().host_only, &result().host_pingmesh,
                        &result().host_netseer, &result().truth}) {
    EXPECT_NEAR(b->app + b->net + b->both + b->unknown, 1.0, 1e-9);
  }
}

TEST_F(SlaStudyTest, NetSeerExplainsMost) {
  // The Fig. 8b ordering: host < host+pingmesh <= host+netseer, with
  // NetSeer explaining the bulk of slow RPCs.
  EXPECT_LE(result().host_only.explained(), result().host_pingmesh.explained() + 1e-9);
  EXPECT_LE(result().host_pingmesh.explained(), result().host_netseer.explained() + 1e-9);
  EXPECT_GT(result().host_netseer.explained(), 0.7);
}

TEST_F(SlaStudyTest, HostOnlyCannotSeeTheNetwork) {
  // Host metrics alone can never attribute network-caused slowness —
  // anything not overlapping an app-metric anomaly is unknown or
  // misattributed.
  EXPECT_EQ(result().host_only.net, 0.0);
  EXPECT_EQ(result().host_only.both, 0.0);
}

TEST_F(SlaStudyTest, NetSeerAttributionMostAccurate) {
  EXPECT_GT(result().host_netseer_accuracy, result().host_only_accuracy);
  EXPECT_GT(result().host_netseer_accuracy, result().host_pingmesh_accuracy);
  EXPECT_GT(result().host_netseer_accuracy, 0.8);
  // Coarse sources get some attributions wrong.
  EXPECT_LT(result().host_pingmesh_accuracy, 0.95);
}

TEST_F(SlaStudyTest, TruthHasBothCauses) {
  EXPECT_GT(result().truth.app + result().truth.both, 0.0);
  EXPECT_GT(result().truth.net + result().truth.both, 0.0);
}

TEST_F(SlaStudyTest, FormatBreakdownRenders) {
  const auto text = format_breakdown("host", result().host_only);
  EXPECT_NE(text.find("app="), std::string::npos);
  EXPECT_NE(text.find("explained"), std::string::npos);
}

}  // namespace
}  // namespace netseer::scenarios
