#include "scenarios/harness.h"

#include <gtest/gtest.h>

#include "traffic/generator.h"

namespace netseer::scenarios {
namespace {

TEST(Harness, BuildsPaperTestbedWithNetSeerEverywhere) {
  Harness harness{HarnessOptions{}};
  EXPECT_EQ(harness.testbed().all_switches().size(), 10u);
  EXPECT_EQ(harness.app_count(), 10u);
  for (auto* sw : harness.testbed().all_switches()) {
    EXPECT_NE(harness.app_for(sw->id()), nullptr) << sw->name();
  }
  EXPECT_EQ(harness.app_for(99999), nullptr);
}

TEST(Harness, OptionalMonitorsAbsentByDefault) {
  Harness harness{HarnessOptions{}};
  EXPECT_EQ(harness.monitor<monitors::NetSightMonitor>(), nullptr);
  EXPECT_EQ(harness.monitor<monitors::EverflowMonitor>(), nullptr);
  EXPECT_EQ(harness.monitor<monitors::PingmeshProber>(), nullptr);
  EXPECT_EQ(harness.monitor<monitors::SnmpMonitor>(), nullptr);
  EXPECT_EQ(harness.monitor<monitors::SamplingMonitor>(10), nullptr);
}

TEST(Harness, MonitorsPresentWhenEnabled) {
  HarnessOptions options;
  options.enable_netsight = true;
  options.sampling_rates = {10, 1000};
  options.enable_everflow = true;
  options.enable_pingmesh = true;
  options.enable_snmp = true;
  Harness harness{options};
  EXPECT_NE(harness.monitor<monitors::NetSightMonitor>(), nullptr);
  EXPECT_NE(harness.monitor<monitors::EverflowMonitor>(), nullptr);
  EXPECT_NE(harness.monitor<monitors::PingmeshProber>(), nullptr);
  EXPECT_NE(harness.monitor<monitors::SnmpMonitor>(), nullptr);
  EXPECT_NE(harness.monitor<monitors::SamplingMonitor>(10), nullptr);
  EXPECT_NE(harness.monitor<monitors::SamplingMonitor>(1000), nullptr);
  EXPECT_EQ(harness.monitor<monitors::SamplingMonitor>(100), nullptr);
  // Keyed monitors need their denominator: the unkeyed lookup matches none.
  EXPECT_EQ(harness.monitor<monitors::SamplingMonitor>(), nullptr);
  harness.run_and_settle(util::milliseconds(1));  // periodic tasks stop cleanly
}

TEST(Harness, WorkloadGeneratesAndSettles) {
  Harness harness{HarnessOptions{}};
  traffic::GeneratorConfig gen;
  gen.sizes = &traffic::web();
  gen.load = 0.3;
  gen.flow_rate = util::BitRate::gbps(1);
  gen.stop = util::milliseconds(3);
  harness.add_workload(gen);
  harness.run_and_settle(util::milliseconds(5));
  EXPECT_GT(harness.total_generated_bytes(), 0u);
  EXPECT_EQ(harness.generators().size(), harness.testbed().hosts.size());
  const auto funnel = harness.total_funnel();
  EXPECT_GT(funnel.traffic_bytes, harness.total_generated_bytes());  // per-hop counting
  // Clean run: path events only, all flows' paths covered.
  EXPECT_EQ(harness.coverage(harness.netseer_groups(core::EventType::kPathChange),
                             harness.truth().groups(core::EventType::kPathChange)),
            1.0);
}

TEST(Harness, CoverageHelperEdgeCases) {
  monitors::EventGroupSet empty;
  monitors::EventGroupSet one;
  one.insert(monitors::EventGroup{1, 2, core::EventType::kDrop});
  EXPECT_DOUBLE_EQ(Harness::coverage(empty, empty), 1.0);  // nothing to cover
  EXPECT_DOUBLE_EQ(Harness::coverage(empty, one), 0.0);
  EXPECT_DOUBLE_EQ(Harness::coverage(one, one), 1.0);
}

TEST(Harness, LargeFatTreeFullCoverage) {
  // §3.2 "linearly scalable": the same stack on a k=6 fat-tree (45
  // switches) still yields full drop coverage with zero FN.
  HarnessOptions options;
  options.seed = 23;
  options.topo.num_pods = 6;
  options.topo.aggs_per_pod = 3;
  options.topo.tors_per_pod = 3;
  options.topo.num_cores = 9;
  options.topo.hosts_per_tor = 3;
  Harness harness{options};
  auto& tb = harness.testbed();
  ASSERT_EQ(tb.all_switches().size(), 45u);

  // Sync sequences, then a lossy core link plus a blackhole.
  traffic::GeneratorConfig gen;
  gen.sizes = &traffic::web();
  gen.load = 0.2;
  gen.flow_rate = util::BitRate::gbps(1);
  gen.stop = util::milliseconds(6);
  harness.add_workload(gen);
  (void)harness.simulator().schedule_at(util::milliseconds(2), [&tb] {
    net::LinkFaultModel faults;
    faults.drop_prob = 0.01;
    tb.aggs[0]->link(static_cast<util::PortId>(tb.tors.size() / 6))->set_fault_model(faults);
    tb.tors[5]->routes().set_corrupted(
        packet::Ipv4Prefix{tb.hosts[5 * 3]->addr(), 32}, true);
  });
  (void)harness.simulator().schedule_at(util::milliseconds(5), [&tb] {
    // Heal the link so trailing gaps resolve before settling.
    tb.aggs[0]->link(static_cast<util::PortId>(tb.tors.size() / 6))->set_fault_model({});
  });
  harness.run_and_settle(util::milliseconds(12));

  const auto actual = harness.truth().groups(core::EventType::kDrop);
  const auto detected = harness.netseer_groups(core::EventType::kDrop);
  EXPECT_GT(actual.size(), 0u);
  EXPECT_DOUBLE_EQ(Harness::coverage(detected, actual), 1.0);
}

}  // namespace
}  // namespace netseer::scenarios
