// End-to-end golden signatures: a faulty, congested testbed run whose
// observable outputs (events processed, final virtual time, event-store
// population, funnel byte totals) are order-sensitive all the way down —
// any change to event ordering, RNG consumption, or monitor sampling
// shifts them. The constants were recorded from the pre-rewrite engine
// (std::function + binary heap); the zero-allocation engine must
// reproduce them exactly, which is what licenses reusing every Fig. 9-15
// result across the rewrite. Regenerate only for an intentional
// behaviour change, and say why in the commit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "scenarios/harness.h"
#include "traffic/generator.h"

namespace netseer {
namespace {

struct Signature {
  std::uint64_t seed;
  std::uint64_t events;
  std::int64_t now;
  std::size_t store;
  std::uint64_t traffic_bytes;
  std::uint64_t report_bytes;
  std::uint64_t notify_bytes;
};

TEST(HarnessGolden, EndToEndSignaturesAreBitIdentical) {
  constexpr Signature kGolden[] = {
      {1, 417250, 40378785, 2979, 108846224, 74896, 4416},
      {2, 167452, 23027382, 2753, 41530827, 69322, 1728},
      {3, 259922, 47366886, 2811, 60684804, 70764, 2688},
  };
  for (const auto& golden : kGolden) {
    scenarios::HarnessOptions options;
    options.seed = golden.seed;
    options.topo.host_rate = util::BitRate::gbps(5);
    options.topo.fabric_rate = util::BitRate::gbps(20);
    scenarios::Harness harness{options};
    auto& tb = harness.testbed();

    traffic::GeneratorConfig gen;
    gen.sizes = &traffic::web();
    gen.load = 0.6;
    gen.flow_rate = util::BitRate::gbps(1);
    gen.stop = util::milliseconds(2);
    harness.add_workload(gen);

    // A lossy+corrupting ToR uplink exercises the drop/corruption paths.
    net::Link* bad = tb.tors[0]->link(static_cast<util::PortId>(options.topo.hosts_per_tor));
    net::LinkFaultModel faults;
    faults.drop_prob = 0.01;
    faults.corrupt_prob = 0.002;
    bad->set_fault_model(faults);

    // An 8-way incast guarantees congestion drops and notify traffic.
    std::vector<net::Host*> senders(tb.hosts.begin(), tb.hosts.begin() + 8);
    traffic::launch_incast(senders, tb.hosts.back()->addr(), 50 * 1000, 1000,
                           util::milliseconds(1));

    harness.run_and_settle(util::milliseconds(12));

    const auto funnel = harness.total_funnel();
    EXPECT_EQ(harness.simulator().events_processed(), golden.events)
        << "seed " << golden.seed;
    EXPECT_EQ(harness.simulator().now(), golden.now) << "seed " << golden.seed;
    EXPECT_EQ(harness.store().size(), golden.store) << "seed " << golden.seed;
    EXPECT_EQ(funnel.traffic_bytes, golden.traffic_bytes) << "seed " << golden.seed;
    EXPECT_EQ(funnel.report_bytes, golden.report_bytes) << "seed " << golden.seed;
    EXPECT_EQ(funnel.notify_bytes, golden.notify_bytes) << "seed " << golden.seed;
  }
}

}  // namespace
}  // namespace netseer
