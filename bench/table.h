#pragma once

#include <cstdio>
#include <string>

namespace netseer::bench {

/// Tiny helpers so every bench binary prints the same way: a title, the
/// paper's expectation, then the measured rows.
inline void print_title(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) { std::printf("  %s\n", note.c_str()); }

inline void print_paper(const std::string& expectation) {
  std::printf("  paper: %s\n", expectation.c_str());
}

/// Render a ratio as a percentage with sensible precision for tiny values.
inline std::string pct(double fraction) {
  char buf[32];
  if (fraction == 0.0) {
    return "0%";
  } else if (fraction < 0.0001) {
    std::snprintf(buf, sizeof(buf), "%.4f%%", fraction * 100);
  } else if (fraction < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.3f%%", fraction * 100);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100);
  }
  return buf;
}

}  // namespace netseer::bench
