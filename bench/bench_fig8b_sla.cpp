// Figure 8(b): attributing occasional SLA violations (slow RPCs) to the
// application, the network, or both — using host metrics alone, host
// metrics + Pingmesh, and host metrics + NetSeer. Paper: 40.8% / 44% /
// 97% of slow RPCs explained.
#include "experiment.h"
#include "scenarios/sla.h"
#include "table.h"

using namespace netseer;
using namespace netseer::bench;

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 8(b) — debugging SLA violations by data source"};
  cli.parse(argc, argv);
  print_title("Figure 8(b) — debugging SLA violations by data source");
  print_paper("explained slow RPCs: host 40.8%, host+pingmesh 44%, host+netseer 97%");

  const auto result = scenarios::run_sla_study(
      scenarios::SlaStudyConfig{.seed = 42, .metrics = cli.sink()});

  std::printf("\n  %zu RPCs issued, %zu violated the SLA\n", result.total_rpcs,
              result.slow_rpcs);
  std::printf("  %s\n", scenarios::format_breakdown("host", result.host_only).c_str());
  std::printf("  %s\n",
              scenarios::format_breakdown("host+pingmesh", result.host_pingmesh).c_str());
  std::printf("  %s\n",
              scenarios::format_breakdown("host+netseer", result.host_netseer).c_str());
  std::printf("  %s\n", scenarios::format_breakdown("(ground truth)", result.truth).c_str());
  std::printf("\n  attribution accuracy vs ground truth: host %.0f%%, host+pingmesh %.0f%%, "
              "host+netseer %.0f%%\n",
              100 * result.host_only_accuracy, 100 * result.host_pingmesh_accuracy,
              100 * result.host_netseer_accuracy);
  print_note("host metrics are window-aggregated (the paper's 15s counters, scaled);");
  print_note("NetSeer attributes by querying the backend for each slow RPC's own flow.");
  return cli.write_metrics();
}
