#pragma once

#include <string>

#include "core/netseer_app.h"
#include "scenarios/harness.h"
#include "telemetry/metrics.h"
#include "traffic/distributions.h"

namespace netseer::bench {

/// Per-monitor coverage of one event class: the fraction of ground-truth
/// (node, flow, type) groups each monitoring system explained.
struct CoverageRow {
  double netseer = 0;
  double netsight = 0;
  double everflow = 0;
  double sample10 = 0;
  double sample100 = 0;
  double sample1000 = 0;
  double pingmesh_existence = 0;  // existence only — never flow-attributed
  std::size_t truth_groups = 0;
};

/// Everything the Fig. 9/10/11/13 harnesses need from one workload run.
struct WorkloadResult {
  std::string workload;

  CoverageRow path_change;
  CoverageRow pipeline_drop;
  CoverageRow mmu_drop;
  CoverageRow interswitch_drop;
  CoverageRow congestion;

  // Overheads as a fraction of carried application traffic (Fig. 11).
  std::uint64_t traffic_bytes = 0;
  double netseer_overhead = 0;
  double netsight_overhead = 0;
  double everflow_overhead = 0;
  double sample10_overhead = 0;
  double sample100_overhead = 0;
  double sample1000_overhead = 0;
  double pingmesh_overhead = 0;
  double snmp_overhead = 0;

  core::FunnelStats funnel;  // Fig. 13 per-step accounting

  // §5.2 accuracy claim checked against omniscient ground truth.
  bool netseer_zero_fn = true;
  bool netseer_zero_fp = true;

  std::uint64_t netseer_events_stored = 0;
};

/// Static-verification behaviour of an experiment run (--verify flags).
enum class VerifyMode {
  kOff = 0,  // construct and run without checking
  kOn,       // verify the constructed deployment; abort the run on errors
  kStrict,   // also abort on warnings
};

struct ExperimentConfig {
  std::uint64_t seed = 7;
  util::SimTime duration = util::milliseconds(20);
  double load = 0.7;
  /// Scaled-down host rate keeps bench runs tractable while preserving
  /// contention ratios (hosts:fabric = 1:4, as in the paper's testbed).
  util::BitRate host_rate = util::BitRate::gbps(5);
  util::BitRate fabric_rate = util::BitRate::gbps(20);
  /// When set, the harness's full metrics snapshot is folded in here
  /// after the run (additively — share one registry across workloads).
  telemetry::Registry* metrics = nullptr;
  /// Statically verify the deployment before generating any traffic;
  /// a failed verification exits the process with status 1 so CI runs
  /// cannot silently measure an undeployable configuration.
  VerifyMode verify = VerifyMode::kOff;
};

/// Map the shared --verify[=strict] CLI switches onto a VerifyMode.
[[nodiscard]] inline VerifyMode verify_mode(bool requested, bool strict) {
  return requested ? (strict ? VerifyMode::kStrict : VerifyMode::kOn) : VerifyMode::kOff;
}

/// Run the §5.2 benchmark setup on one workload: all-to-all traffic at
/// `load`, with congestion/MMU drops arising naturally and inter-switch
/// drops, pipeline drops, and path changes injected mid-run (exactly the
/// paper's methodology), all monitors attached.
[[nodiscard]] WorkloadResult run_workload_experiment(const traffic::EmpiricalCdf& workload,
                                                     const ExperimentConfig& config = {});

}  // namespace netseer::bench
