#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/netseer_app.h"
#include "scenarios/harness.h"
#include "telemetry/metrics.h"
#include "traffic/distributions.h"

namespace netseer::bench {

/// Per-monitor coverage of one event class: the fraction of ground-truth
/// (node, flow, type) groups each monitoring system explained.
struct CoverageRow {
  double netseer = 0;
  double netsight = 0;
  double everflow = 0;
  double sample10 = 0;
  double sample100 = 0;
  double sample1000 = 0;
  double pingmesh_existence = 0;  // existence only — never flow-attributed
  std::size_t truth_groups = 0;
};

/// Everything the Fig. 9/10/11/13 harnesses need from one workload run.
struct WorkloadResult {
  std::string workload;

  CoverageRow path_change;
  CoverageRow pipeline_drop;
  CoverageRow mmu_drop;
  CoverageRow interswitch_drop;
  CoverageRow congestion;

  // Overheads as a fraction of carried application traffic (Fig. 11).
  std::uint64_t traffic_bytes = 0;
  double netseer_overhead = 0;
  double netsight_overhead = 0;
  double everflow_overhead = 0;
  double sample10_overhead = 0;
  double sample100_overhead = 0;
  double sample1000_overhead = 0;
  double pingmesh_overhead = 0;
  double snmp_overhead = 0;

  core::FunnelStats funnel;  // Fig. 13 per-step accounting

  // §5.2 accuracy claim checked against omniscient ground truth.
  bool netseer_zero_fn = true;
  bool netseer_zero_fp = true;

  std::uint64_t netseer_events_stored = 0;
};

/// Static-verification behaviour of an experiment run (--verify flags).
enum class VerifyMode {
  kOff = 0,  // construct and run without checking
  kOn,       // verify the constructed deployment; abort the run on errors
  kStrict,   // also abort on warnings
};

struct ExperimentConfig {
  std::uint64_t seed = 7;
  util::SimTime duration = util::milliseconds(20);
  double load = 0.7;
  /// Scaled-down host rate keeps bench runs tractable while preserving
  /// contention ratios (hosts:fabric = 1:4, as in the paper's testbed).
  util::BitRate host_rate = util::BitRate::gbps(5);
  util::BitRate fabric_rate = util::BitRate::gbps(20);
  /// When set, the harness's full metrics snapshot is folded in here
  /// after the run (additively — share one registry across workloads).
  telemetry::Registry* metrics = nullptr;
  /// Statically verify the deployment before generating any traffic;
  /// a failed verification exits the process with status 1 so CI runs
  /// cannot silently measure an undeployable configuration.
  VerifyMode verify = VerifyMode::kOff;
};

/// The single command-line surface shared by every bench binary and
/// example. Construct with a one-line program summary, bind any
/// binary-specific flags to variables, then call parse(), which strips
/// everything it recognises from argv:
///
///   int duration_ms = 20;
///   ExperimentOptions cli{"Figure 9 — event coverage per monitor"};
///   cli.flag("duration-ms", &duration_ms, "simulated run length")
///      .parse(argc, argv);
///
/// Three flags come built in: --metrics-out=<path> (collect a telemetry
/// snapshot, written by write_metrics()), --verify[=strict] (statically
/// verify deployments before running), and --help (print the
/// synthesized usage, which lists every bound flag with its default,
/// and exit 0). `--name value` and `--name=value` both work. An unknown
/// flag prints the usage to stderr and exits 2, unless allow_unknown()
/// opted into leaving unrecognised arguments in argv for a second-stage
/// parser (google-benchmark in bench_cpu_micro).
class ExperimentOptions {
 public:
  explicit ExperimentOptions(std::string summary);

  ExperimentOptions& flag(std::string_view name, std::string* out, std::string_view help);
  ExperimentOptions& flag(std::string_view name, int* out, std::string_view help);
  ExperimentOptions& flag(std::string_view name, double* out, std::string_view help);
  ExperimentOptions& flag(std::string_view name, std::uint64_t* out, std::string_view help);
  /// A value-less switch: presence sets *out to true.
  ExperimentOptions& flag(std::string_view name, bool* out, std::string_view help);
  ExperimentOptions& allow_unknown();

  /// Parse and strip recognised flags, compacting argv/argc down to
  /// whatever remains. Bound variables keep their initial value (the
  /// default shown by --help) when their flag is absent.
  ExperimentOptions& parse(int& argc, char** argv);

  /// The --verify[=strict] switches folded into a mode.
  [[nodiscard]] VerifyMode verify() const {
    return verify_requested_ ? (verify_strict_ ? VerifyMode::kStrict : VerifyMode::kOn)
                             : VerifyMode::kOff;
  }

  [[nodiscard]] telemetry::Registry& registry() { return registry_; }
  /// Registry pointer for APIs taking an optional sink; null when
  /// --metrics-out was not given (skips collection on hot benches).
  [[nodiscard]] telemetry::Registry* sink() { return metrics_enabled() ? &registry_ : nullptr; }
  [[nodiscard]] bool metrics_enabled() const { return !metrics_path_.empty(); }
  [[nodiscard]] const std::string& metrics_path() const { return metrics_path_; }

  /// Point an experiment config at this option set (metrics sink +
  /// verify mode) — the common prologue of the workload benches.
  void configure(ExperimentConfig& config) {
    config.metrics = sink();
    config.verify = verify();
  }

  /// The synthesized --help text.
  [[nodiscard]] std::string usage() const;

  /// Write the --metrics-out snapshot if requested. Returns 0 on
  /// success (or when disabled), 1 on I/O failure — main's exit code.
  int write_metrics() const;

 private:
  enum class Kind { kString, kInt, kDouble, kUint64, kSwitch };
  struct Spec {
    std::string name;  // without the leading "--"
    Kind kind;
    void* out;
    std::string help;
  };

  ExperimentOptions& add(std::string_view name, Kind kind, void* out, std::string_view help);
  [[nodiscard]] std::string default_of(const Spec& spec) const;

  std::string summary_;
  std::string program_ = "bench";
  std::vector<Spec> specs_;
  telemetry::Registry registry_;
  std::string metrics_path_;
  bool verify_requested_ = false;
  bool verify_strict_ = false;
  bool allow_unknown_ = false;
};

/// Run the §5.2 benchmark setup on one workload: all-to-all traffic at
/// `load`, with congestion/MMU drops arising naturally and inter-switch
/// drops, pipeline drops, and path changes injected mid-run (exactly the
/// paper's methodology), all monitors attached.
[[nodiscard]] WorkloadResult run_workload_experiment(const traffic::EmpiricalCdf& workload,
                                                     const ExperimentConfig& config = {});

}  // namespace netseer::bench
