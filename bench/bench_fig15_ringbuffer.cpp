// Figure 15: inter-switch drop detection capacity. (a) minimal ring
// buffer slots per port to recover at least one dropped packet, vs
// packet size — paper: >25 slots for 1024 B packets; (b) SRAM needed to
// survive N consecutive drops — paper: 1,000 consecutive 1024 B drops on
// all 64 ports of a switch within ~800 KB. The analytic sizing is
// cross-checked by simulating the actual ring buffer + notification
// protocol.
#include "core/capacity.h"
#include "core/detect/interswitch.h"
#include "experiment.h"
#include "packet/builder.h"
#include "table.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

/// Simulate a burst of `drops` consecutive losses with the real TX/RX
/// modules and `slots` ring slots; how many dropped flows were recovered
/// after the notification came back `rtt_packets` packets later?
std::size_t simulate_recovery(std::size_t slots, int drops, int rtt_packets) {
  core::InterSwitchConfig config;
  config.ring_slots = slots;
  core::InterSwitchTx tx(config);
  core::InterSwitchRx rx(config);
  std::size_t recovered = 0;
  const auto emit = [&recovered](const packet::FlowKey&, std::uint32_t) { ++recovered; };

  auto transmit = [&](bool deliver) -> std::optional<core::InterSwitchRx::Gap> {
    auto pkt = packet::make_tcp(packet::FlowKey{packet::Ipv4Addr::from_octets(1, 1, 1, 1),
                                                packet::Ipv4Addr::from_octets(2, 2, 2, 2), 6,
                                                1000, 80},
                                1000);
    tx.on_tx(pkt, emit);
    if (!deliver) return std::nullopt;
    return rx.on_rx(pkt);
  };

  (void)transmit(true);  // sync
  for (int i = 0; i < drops; ++i) (void)transmit(false);
  const auto gap = transmit(true);  // first survivor reveals the gap
  // Notification flight: rtt_packets further deliveries overwrite slots.
  for (int i = 0; i < rtt_packets; ++i) (void)transmit(true);
  if (gap) tx.on_notification(gap->start, gap->end, emit);
  // Subsequent packets trigger the remaining lookups.
  for (int i = 0; i < drops + 8; ++i) (void)transmit(true);
  return recovered;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 15 — ring-buffer sizing for inter-switch drop detection"};
  cli.parse(argc, argv);
  print_title("Figure 15(a) — minimal ring-buffer slots per port vs packet size");
  print_paper(">25 slots to recover one 1024 B dropped packet (100G link)");

  const auto rate = util::BitRate::gbps(100);
  const auto rtt = util::microseconds(2);
  std::printf("\n  %-10s %12s %16s\n", "pkt bytes", "min slots", "sim recovers 1?");
  for (std::uint32_t bytes : {64u, 128u, 256u, 512u, 1024u, 1280u, 1500u}) {
    const auto slots = core::capacity::min_ring_slots(rate, rtt, bytes);
    const int rtt_packets =
        static_cast<int>(rtt / std::max<util::SimDuration>(rate.serialization_delay(bytes), 1));
    const bool enough = simulate_recovery(slots, 1, rtt_packets) >= 1;
    const bool too_few = simulate_recovery(slots / 2, 1, rtt_packets) >= 1;
    std::printf("  %-10u %12zu %11s (half: %s)\n", bytes, slots, enough ? "yes" : "NO",
                too_few ? "yes" : "no");
  }

  print_title("Figure 15(b) — SRAM vs detectable consecutive drops (64x100G ports)");
  print_paper("1,000 consecutive 1024 B drops within ~800 KB of SRAM");
  std::printf("\n  %-8s %10s %10s %10s\n", "drops", "64B KB", "256B KB", "1024B KB");
  for (int drops : {1, 10, 50, 100, 200, 400, 600, 800, 1000}) {
    std::printf("  %-8d", drops);
    for (std::uint32_t bytes : {64u, 256u, 1024u}) {
      const auto slots = core::capacity::slots_for_consecutive_drops(drops, rate, rtt, bytes);
      std::printf(" %10.1f", static_cast<double>(core::capacity::ring_sram_bytes(64, slots)) /
                                 1024.0);
    }
    std::printf("\n");
  }

  // Cross-check: the simulated mechanism recovers all 1000 drops with
  // the analytically sized ring, and misses some with half of it.
  const auto slots_1k = core::capacity::slots_for_consecutive_drops(1000, rate, rtt, 1024);
  const auto full = simulate_recovery(slots_1k, 1000, 24);
  const auto half = simulate_recovery(slots_1k / 2, 1000, 24);
  std::printf("\n  cross-check @1000 drops: sized ring recovers %zu/1000, half ring %zu/1000\n",
              full, half);
  if (cli.metrics_enabled()) {
    auto& reg = cli.registry();
    reg.counter("bench", "fig15.drops_injected").add(1000);
    reg.counter("bench", "fig15.recovered_full_ring").add(full);
    reg.counter("bench", "fig15.recovered_half_ring").add(half);
    reg.gauge("bench", "fig15.slots_for_1000_drops")
        .set(static_cast<std::int64_t>(slots_1k));
  }
  return cli.write_metrics();
}
