#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "telemetry/snapshot.h"

namespace netseer::bench {

/// Remove `--name=value` or `--name value` from argv (compacting it and
/// decrementing argc) and return the value. Lets every bench keep its
/// positional simplicity while sharing flags like --metrics-out.
std::optional<std::string> take_flag(int& argc, char** argv, std::string_view name);

/// Like take_flag but for switches that may appear bare: `--name` yields
/// an empty string, `--name=value` yields the value. Never consumes the
/// following argv entry.
std::optional<std::string> take_switch(int& argc, char** argv, std::string_view name);

/// The --metrics-out=<path> and --verify[=strict] handling shared by
/// every bench binary and example: construct it FIRST (it strips the
/// flags before any other parsing), register/collect metrics during the
/// run, and return write() from main. Without the flags it is a no-op
/// that still lets callers populate the registry.
class MetricsCli {
 public:
  MetricsCli(int& argc, char** argv);

  /// --verify was given: statically verify the deployment before running.
  [[nodiscard]] bool verify_requested() const { return verify_; }
  /// --verify=strict: also fail on warnings.
  [[nodiscard]] bool verify_strict() const { return verify_strict_; }

  [[nodiscard]] telemetry::Registry& registry() { return registry_; }
  /// Registry pointer for APIs taking an optional sink; null when the
  /// flag was not given (skips collection entirely on hot benches).
  [[nodiscard]] telemetry::Registry* sink() { return enabled() ? &registry_ : nullptr; }
  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Write the snapshot if requested. Returns 0 on success (or when
  /// disabled), 1 on I/O failure — usable as main's exit code.
  int write() const;

 private:
  telemetry::Registry registry_;
  std::string path_;
  bool verify_ = false;
  bool verify_strict_ = false;
};

}  // namespace netseer::bench
