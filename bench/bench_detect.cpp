// Streaming-detection microbench: tail-and-detect throughput — events
// flowing store -> subscription -> window engines -> detectors ->
// alert pipeline, with ingest and pump interleaved the way the service
// actually runs (netseer_detect --follow, or start() on the simulator).
//
//   bench_detect --events 2000000 --reps 3
//   bench_detect --events 2000000 --baseline bench/BENCH_detect.json
//
// With --baseline the run exits 1 if the best in-memory tail-and-detect
// rate lands more than --max-regression-pct below its checked-in value
// — the CI perf-smoke gate, same contract as bench_store. Independent
// of any baseline, the run hard-fails when the best rate is below
// --min-eps (default 1M events/s: the detection tier must keep up with
// the store's ingest floor or alerts lag reality), when the
// subscription ends a rep lagged or short of the final LSN (bounded-lag
// claim), or when the detectors close zero windows (the bench would be
// measuring an idle pipeline). A second, ungated phase repeats the
// interleave against a WAL-backed store for the durable-tail number.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/event.h"
#include "detect/service.h"
#include "experiment.h"
#include "store/store.h"
#include "table.h"
#include "telemetry/collect.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

// Deterministic steady-state event mix: 64 switches x 64 flows each
// (4096 window keys), monotone detected_at at 100ns spacing so the 1ms
// default window closes every ~10k events. Counters stay small enough
// that no per-flow window crosses the drop-burst threshold and the
// congestion rate per device is exactly constant — the shipped rules
// see a healthy fabric, which is what a tail keeps up with for weeks.
// One 4000-event burst at the stream's midpoint hammers a single flow
// with large drop counters: the alert pipeline must raise (and later
// resolve) against it, proving the bench drives the full path and not
// an idle filter.
struct EventGen {
  std::uint64_t burst_begin, burst_end;
  std::uint64_t state = 7;
  std::uint64_t rnd() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
  core::FlowEvent next(std::uint64_t i) {
    const auto r = rnd();
    const auto t = static_cast<util::SimTime>(i * 100);
    if (i >= burst_begin && i < burst_end && i % 2 == 0) {
      packet::FlowKey hot{packet::Ipv4Addr::from_octets(10, 7, 7, 1),
                          packet::Ipv4Addr::from_octets(10, 128, 7, 2), 6, 7777, 80};
      auto ev = core::make_event(core::EventType::kDrop, hot, 7, t);
      ev.counter = 50;
      return ev;
    }
    if (i % 5 == 0) {
      // Exactly one congestion event per device per 32us: constant rate
      // by construction, so the CUSUM/EWMA device rules stay quiet.
      const auto sw = static_cast<util::NodeId>((i / 5) % 64);
      packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, 0, sw, 1),
                           packet::Ipv4Addr::from_octets(10, 128, sw, 2), 6, 5000, 80};
      return core::make_event(core::EventType::kCongestion, flow, sw, t);
    }
    const auto sw = static_cast<util::NodeId>(r % 64);
    const auto fl = static_cast<std::uint16_t>((r >> 8) & 63);
    packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, 0, sw, 1),
                         packet::Ipv4Addr::from_octets(10, 128, fl, 2), 6,
                         static_cast<std::uint16_t>(1024 + fl), 80};
    auto ev = core::make_event(core::EventType::kDrop, flow, sw, t);
    ev.counter = static_cast<std::uint16_t>(1 + (r & 1));
    return ev;
  }
};

double read_json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

struct RepResult {
  double wall = 0;             // ingest + pump + finish, one clock
  std::uint64_t windows = 0;   // non-empty windows closed across engines
  std::uint64_t raised = 0;    // alerts raised
  std::uint64_t last_lsn = 0;  // subscription cursor after the final pump
  std::uint64_t lagged = 0;    // rows evicted before delivery (must be 0)
};

/// One tail-and-detect rep: feed pre-generated events through add_batch
/// in `chunk`-sized slices, pumping the service after every slice — the
/// store and the detection tier share the clock, like production.
RepResult tail_detect_run(store::FlowEventStore& fs, std::span<const core::FlowEvent> pregen,
                          std::uint64_t chunk) {
  detect::DetectService service(fs);
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t events = pregen.size();
  for (std::uint64_t off = 0; off < events; off += chunk) {
    const auto n = static_cast<std::size_t>(std::min<std::uint64_t>(chunk, events - off));
    fs.add_batch(pregen.subspan(off, n), pregen[off].detected_at + 50);
    service.pump();
  }
  (void)fs.sync();
  service.pump();  // rows the final sync made visible
  service.finish();
  RepResult r;
  r.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  for (const auto& engine : service.engines()) r.windows += engine.stats().windows_closed;
  r.raised = service.alerts().stats().raised;
  r.last_lsn = service.subscription().last_lsn();
  r.lagged = service.subscription().lagged();
  return r;
}

/// The bounded-lag claim, asserted per rep: after the final pump the
/// subscription has consumed every LSN the store assigned and lost none
/// to retention. A lagging detection tier is a correctness bug here,
/// not a slow run.
bool check_drained(const char* phase, const RepResult& r, std::uint64_t events) {
  if (r.last_lsn == events && r.lagged == 0) return true;
  std::fprintf(stderr, "FAIL: %s rep ended lagged (last LSN %llu of %llu, %llu evicted)\n",
               phase, static_cast<unsigned long long>(r.last_lsn),
               static_cast<unsigned long long>(events),
               static_cast<unsigned long long>(r.lagged));
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t events = 2'000'000;
  int reps = 3;
  std::uint64_t chunk = 8192;
  double min_eps = 1'000'000.0;
  std::string baseline_path;
  double max_regression_pct = 20.0;
  ExperimentOptions cli{"Detection microbench — tail-and-detect events/sec and lag"};
  cli.flag("events", &events, "events per rep")
      .flag("reps", &reps, "take the best rate over this many reps")
      .flag("chunk", &chunk, "events per add_batch/pump interleave step")
      .flag("min-eps", &min_eps, "absolute tail-and-detect floor (events/s)")
      .flag("baseline", &baseline_path, "BENCH_detect.json to gate regressions against")
      .flag("max-regression-pct", &max_regression_pct, "allowed drop vs baseline")
      .parse(argc, argv);
  if (events < 1) events = 1;
  if (reps < 1) reps = 1;
  if (chunk < 1) chunk = 1;

  print_title("Streaming-detection microbench");

  std::vector<core::FlowEvent> pregen;
  pregen.reserve(events);
  {
    EventGen gen{events / 2, events / 2 + std::min<std::uint64_t>(4000, events / 2)};
    for (std::uint64_t i = 0; i < events; ++i) pregen.push_back(gen.next(i));
  }

  // Phase 1: in-memory tail-and-detect — the gated number. Measures the
  // detection tier itself (windowing, detectors, alert state machine)
  // with the store's ingest cost but no WAL in the loop.
  double best_mem = -1.0;
  RepResult best_mem_rep;
  for (int rep = 0; rep < reps; ++rep) {
    store::FlowEventStore fs;
    const RepResult r = tail_detect_run(fs, pregen, chunk);
    if (!check_drained("mem", r, events)) return 1;
    const double eps = static_cast<double>(events) / r.wall;
    std::printf("  mem tail-detect rep %d: %.3fs (%.2fM events/s, %llu windows, %llu alerts)\n",
                rep, r.wall, eps / 1e6, static_cast<unsigned long long>(r.windows),
                static_cast<unsigned long long>(r.raised));
    if (eps > best_mem) {
      best_mem = eps;
      best_mem_rep = r;
    }
  }
  if (best_mem_rep.windows == 0) {
    std::fprintf(stderr, "FAIL: detectors closed zero windows — idle pipeline measured\n");
    return 1;
  }
  if (events >= 100'000 && best_mem_rep.raised == 0) {
    std::fprintf(stderr, "FAIL: the injected burst raised no alert — dead detection path\n");
    return 1;
  }

  // Phase 2: the same interleave over a group-commit durable store —
  // the netseer_detect --follow shape. Informational (disk variance is
  // the WAL's problem, bench_store gates it), but the lag assertion
  // still holds: durability must not make the tail fall behind.
  const auto dir = std::filesystem::temp_directory_path() / "netseer_bench_detect";
  double best_wal = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::filesystem::remove_all(dir);
    store::StoreOptions options;
    options.dir = dir.string();
    options.shard_batch = 2048;
    options.writer_queue = 128;
    store::FlowEventStore fs(options);
    const RepResult r = tail_detect_run(fs, pregen, chunk);
    if (!check_drained("wal", r, events)) return 1;
    const double eps = static_cast<double>(events) / r.wall;
    std::printf("  wal tail-detect rep %d: %.3fs (%.2fM events/s, %llu windows, %llu alerts)\n",
                rep, r.wall, eps / 1e6, static_cast<unsigned long long>(r.windows),
                static_cast<unsigned long long>(r.raised));
    if (eps > best_wal) best_wal = eps;
  }
  std::filesystem::remove_all(dir);

  std::printf("  tail-detect mem   %.2fM events/s (%llu windows, %llu alerts, lag 0)\n",
              best_mem / 1e6, static_cast<unsigned long long>(best_mem_rep.windows),
              static_cast<unsigned long long>(best_mem_rep.raised));
  std::printf("  tail-detect wal   %.2fM events/s (group-commit durable store)\n",
              best_wal / 1e6);

  if (cli.metrics_enabled()) {
    auto& reg = cli.registry();
    reg.gauge("bench_detect", "tail_detect_mem_eps")
        .update_max(static_cast<std::int64_t>(best_mem));
    reg.gauge("bench_detect", "tail_detect_wal_eps")
        .update_max(static_cast<std::int64_t>(best_wal));
    reg.gauge("bench_detect", "windows_closed")
        .update_max(static_cast<std::int64_t>(best_mem_rep.windows));
    reg.gauge("bench_detect", "alerts_raised")
        .update_max(static_cast<std::int64_t>(best_mem_rep.raised));
    reg.gauge("bench_detect", "final_lag_rows").set(0);
  }

  // The absolute floor holds with or without a baseline file: a
  // detection tier below --min-eps cannot tail the store's own gated
  // ingest rate, so lag would grow without bound in production.
  std::printf("\n  absolute floor    %.0f events/s, got %.0f\n", min_eps, best_mem);
  if (best_mem < min_eps) {
    std::fprintf(stderr, "FAIL: tail-and-detect %.0f events/s below floor %.0f\n", best_mem,
                 min_eps);
    return 1;
  }

  if (!baseline_path.empty()) {
    FILE* f = std::fopen(baseline_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::string text;
    char buffer[4096];
    for (std::size_t n; (n = std::fread(buffer, 1, sizeof(buffer), f)) > 0;) {
      text.append(buffer, n);
    }
    std::fclose(f);
    const double baseline_eps = read_json_number(text, "baseline_detect_events_per_sec");
    if (baseline_eps <= 0) {
      std::fprintf(stderr, "no \"baseline_detect_events_per_sec\" in %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const double floor = baseline_eps * (1.0 - max_regression_pct / 100.0);
    std::printf("  baseline mem      %.0f events/s, floor %.0f (-%g%%)\n", baseline_eps, floor,
                max_regression_pct);
    if (best_mem < floor) {
      std::fprintf(stderr, "FAIL: tail-and-detect %.0f events/s below floor %.0f\n", best_mem,
                   floor);
      return 1;
    }
    std::printf("  gate              PASS\n");
  }
  return cli.write_metrics();
}
