// Ablation of §3.4's design choices:
//  (1) group caching vs a Bloom filter — the paper rejects Bloom filters
//      because hash collisions cause FALSE NEGATIVES (missed flows);
//      group caching trades them for removable false positives.
//  (2) the report-interval constant C — report volume vs counter
//      freshness.
//  (3) group-cache size — false-positive (duplicate report) rate under
//      collision pressure.
#include <array>
#include <unordered_set>

#include "core/group_cache.h"
#include "experiment.h"
#include "table.h"
#include "util/hash.h"
#include "util/rng.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

packet::FlowKey random_flow(util::Rng& rng) {
  packet::FlowKey flow;
  flow.src.value = static_cast<std::uint32_t>(rng.next());
  flow.dst.value = static_cast<std::uint32_t>(rng.next());
  flow.proto = 6;
  flow.sport = static_cast<std::uint16_t>(rng.next());
  flow.dport = 80;
  return flow;
}

/// The rejected alternative: a Bloom filter that suppresses repeat
/// reports. Collisions make genuinely new flows look already-reported —
/// silent false negatives.
class BloomDedup {
 public:
  explicit BloomDedup(std::size_t bits) : bits_(bits, false) {}

  /// True when the flow should be reported (i.e. not seen before).
  bool offer(const packet::FlowKey& flow) {
    const auto h = flow.hash64();
    const std::array<std::size_t, 3> idx = {
        static_cast<std::size_t>(h % bits_.size()),
        static_cast<std::size_t>(util::mix64(h) % bits_.size()),
        static_cast<std::size_t>(util::mix64(h ^ 0x9e37) % bits_.size()),
    };
    bool all_set = true;
    for (const auto i : idx) all_set &= static_cast<bool>(bits_[i]);
    for (const auto i : idx) bits_[i] = true;
    return !all_set;
  }

 private:
  std::vector<bool> bits_;
};

}  // namespace

int main(int argc, char** argv) {
  ExperimentOptions cli{"Ablation — deduplication design (group cache vs Bloom filter)"};
  cli.parse(argc, argv);
  // Bare-GroupCache microbench: fold each cache's counters straight into
  // the registry (there is no switch/app to collect from).
  const auto note_cache = [&cli](const core::GroupCache& cache) {
    if (!cli.metrics_enabled()) return;
    auto& reg = cli.registry();
    reg.counter("core", "group_cache.hits").add(cache.hits());
    reg.counter("core", "group_cache.misses").add(cache.misses());
    reg.counter("core", "group_cache.offered").add(cache.offered());
    reg.counter("core", "group_cache.reports").add(cache.reports());
  };
  print_title("Ablation — deduplication design (§3.4)");

  // ---- (1) group cache vs Bloom filter: false negatives ------------------
  print_note("(1) zero-FN guarantee: 20,000 distinct event flows through each structure");
  print_paper("Bloom filters 'have an unavoidable possibility of false negatives'");
  {
    util::Rng rng(1);
    constexpr int kFlows = 20000;
    std::vector<packet::FlowKey> flows;
    for (int i = 0; i < kFlows; ++i) flows.push_back(random_flow(rng));

    std::printf("\n  %-26s %14s %14s\n", "structure (same SRAM)", "missed flows",
                "duplicate reports");
    for (const std::size_t entries : {1024ul, 4096ul, 16384ul}) {
      // Same memory: one cache entry ~25 bytes = 200 Bloom bits.
      core::GroupCache cache(core::GroupCacheConfig{.entries = entries});
      BloomDedup bloom(entries * 200);
      std::unordered_set<std::uint64_t> cache_reported;
      std::size_t cache_reports = 0, bloom_reports = 0, bloom_missed = 0;
      for (const auto& flow : flows) {
        auto ev = core::make_event(core::EventType::kDrop, flow, 1, 0);
        cache.offer(ev, [&](const core::FlowEvent& out) {
          ++cache_reports;
          cache_reported.insert(out.flow.hash64());
        });
        if (bloom.offer(flow)) {
          ++bloom_reports;
        }
      }
      // Which flows never got any report?
      std::size_t cache_missed = 0;
      for (const auto& flow : flows) cache_missed += !cache_reported.contains(flow.hash64());
      note_cache(cache);
      bloom_missed = static_cast<std::size_t>(kFlows) - bloom_reports;
      char name[64];
      std::snprintf(name, sizeof(name), "group cache %zu entries", entries);
      std::printf("  %-26s %14zu %14zu\n", name, cache_missed, cache_reports - kFlows);
      std::snprintf(name, sizeof(name), "bloom filter %zu bits", entries * 200);
      std::printf("  %-26s %14zu %14s\n", name, bloom_missed, "0");
    }
    print_note("group caching never misses a flow; its cost is duplicate reports the");
    print_note("switch CPU removes. The Bloom filter silently loses flows.");
  }

  // ---- (2) report interval C ----------------------------------------------
  print_note("");
  print_note("(2) report-interval constant C: one elephant flow event, 100,000 packets");
  {
    std::printf("\n  %-8s %16s %22s\n", "C", "reports emitted", "max unreported packets");
    for (const std::uint32_t c : {8u, 16u, 32u, 64u, 128u, 256u, 1024u}) {
      core::GroupCache cache(core::GroupCacheConfig{.entries = 64, .report_interval = c});
      util::Rng rng(2);
      const auto flow = random_flow(rng);
      std::size_t reports = 0;
      std::uint64_t reported_total = 0, max_gap = 0, since_last = 0;
      for (int i = 0; i < 100000; ++i) {
        auto ev = core::make_event(core::EventType::kDrop, flow, 1, 0);
        ++since_last;
        cache.offer(ev, [&](const core::FlowEvent& out) {
          ++reports;
          reported_total += out.counter;
          if (since_last > max_gap) max_gap = since_last;
          since_last = 0;
        });
      }
      std::printf("  %-8u %16zu %22llu\n", c, reports,
                  static_cast<unsigned long long>(max_gap));
      note_cache(cache);
    }
  }

  // ---- (3) cache size vs duplicate-report (FP) rate -----------------------
  print_note("");
  print_note("(3) collision pressure: 5,000 concurrent event flows, 20 packets each");
  {
    std::printf("\n  %-10s %14s %18s\n", "entries", "reports", "duplicates (FPs)");
    for (const std::size_t entries : {256ul, 1024ul, 4096ul, 16384ul, 65536ul}) {
      core::GroupCache cache(core::GroupCacheConfig{.entries = entries});
      util::Rng rng(3);
      std::vector<packet::FlowKey> flows;
      for (int i = 0; i < 5000; ++i) flows.push_back(random_flow(rng));
      std::size_t reports = 0;
      for (int round = 0; round < 20; ++round) {
        for (const auto& flow : flows) {
          auto ev = core::make_event(core::EventType::kDrop, flow, 1, 0);
          cache.offer(ev, [&](const core::FlowEvent&) { ++reports; });
        }
      }
      std::printf("  %-10zu %14zu %18zu\n", entries, reports, reports - flows.size());
      note_cache(cache);
    }
    print_note("duplicates fall steeply once the table comfortably holds the working set");
  }
  return cli.write_metrics();
}
