// Figure 11: overall bandwidth overhead of each monitoring system as a
// fraction of carried application traffic. Paper result: NetSeer
// <0.01%; NetSight ~18%; EverFlow and 1:1000 sampling comparable to
// NetSeer's order of magnitude; 1:10 sampling heavy.
#include "experiment.h"
#include "table.h"

using namespace netseer;
using namespace netseer::bench;

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 11 — overall bandwidth overhead per monitoring system"};
  cli.parse(argc, argv);
  print_title("Figure 11 — overall bandwidth overhead (monitoring bytes / traffic bytes)");
  print_paper("NetSeer <0.01%; NetSight ~18%; sampling scales with rate");

  ExperimentConfig config;
  cli.configure(config);
  std::printf("\n  %-8s %10s %10s %10s %10s %10s %10s %10s %10s\n", "workload", "NetSeer",
              "NetSight", "EverFlow", "1:10", "1:100", "1:1000", "Pingmesh", "SNMP");
  for (const auto* workload : traffic::all_workloads()) {
    const auto result = run_workload_experiment(*workload, config);
    std::printf("  %-8s %10s %10s %10s %10s %10s %10s %10s %10s\n", result.workload.c_str(),
                pct(result.netseer_overhead).c_str(), pct(result.netsight_overhead).c_str(),
                pct(result.everflow_overhead).c_str(), pct(result.sample10_overhead).c_str(),
                pct(result.sample100_overhead).c_str(),
                pct(result.sample1000_overhead).c_str(),
                pct(result.pingmesh_overhead).c_str(), pct(result.snmp_overhead).c_str());
  }
  print_note("NetSeer column counts the batched event reports leaving the switch CPU.");
  return cli.write_metrics();
}
