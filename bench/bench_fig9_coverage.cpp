// Figure 9: event coverage ratios per monitoring system for path change,
// MMU drop, inter-switch drop, and pipeline drop — across the five
// workloads of §5.2. Paper result: NetSeer and NetSight reach full
// coverage; sampling cannot capture drops at all; EverFlow stays <1%.
#include <cctype>
#include <cstdlib>

#include "experiment.h"
#include "table.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

void print_rows(const char* event, const CoverageRow& row) {
  std::printf("  %-17s %9zu %9s %9s %9s %9s %9s %9s\n", event, row.truth_groups,
              pct(row.netseer).c_str(), pct(row.netsight).c_str(), pct(row.everflow).c_str(),
              pct(row.sample10).c_str(), pct(row.sample100).c_str(),
              pct(row.sample1000).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string only_workload;
  int duration_ms = 20;
  ExperimentOptions cli{"Figure 9 — event coverage ratios per monitoring system"};
  cli.flag("workload", &only_workload, "run a single workload (the CI bench-smoke path)")
      .flag("duration-ms", &duration_ms, "simulated run length per workload")
      .parse(argc, argv);

  print_title("Figure 9 — event coverage ratios (flow-attributed)");
  print_paper("NetSeer & NetSight 100%; EverFlow <1%; sampling ~0 for drops");

  ExperimentConfig config;
  cli.configure(config);
  config.duration = util::milliseconds(duration_ms);

  bool ran_any = false;
  for (const auto* workload : traffic::all_workloads()) {
    if (!only_workload.empty()) {
      std::string lower = workload->name();
      for (auto& c : lower) c = static_cast<char>(std::tolower(c));
      if (lower != only_workload) continue;
    }
    ran_any = true;
    const auto result = run_workload_experiment(*workload, config);
    std::printf("\n[%s]  traffic=%.1f MB  netseer events=%llu  zeroFN=%s zeroFP=%s\n",
                result.workload.c_str(), result.traffic_bytes / 1e6,
                static_cast<unsigned long long>(result.netseer_events_stored),
                result.netseer_zero_fn ? "yes" : "NO",
                result.netseer_zero_fp ? "yes" : "NO");
    std::printf("  %-17s %9s %9s %9s %9s %9s %9s %9s\n", "event type", "groups", "NetSeer",
                "NetSight", "EverFlow", "1:10", "1:100", "1:1000");
    print_rows("path change", result.path_change);
    print_rows("MMU drop", result.mmu_drop);
    print_rows("inter-switch drop", result.interswitch_drop);
    print_rows("pipeline drop", result.pipeline_drop);
  }
  if (!ran_any) {
    std::fprintf(stderr, "unknown workload '%s'\n", only_workload.c_str());
    return 2;
  }
  return cli.write_metrics();
}
