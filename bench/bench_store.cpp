// Flow-event store microbench: ingest throughput (in-memory and durable)
// and the query engine's index/pruning behaviour over a sealed store.
//
//   bench_store --events 2000000 --reps 3
//   bench_store --events 2000000 --baseline bench/BENCH_store.json
//
// With --baseline the run exits 1 if the best in-memory ingest rate lands
// more than --max-regression-pct below the checked-in value — the CI
// perf-smoke gate, same contract as bench_engine. The query phase asserts
// that time-windowed queries actually prune segments (the whole point of
// the per-segment time fences); zero pruning fails the run.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/event.h"
#include "experiment.h"
#include "store/store.h"
#include "table.h"
#include "telemetry/collect.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

// Deterministic event mix: 64 switches, 4096 flows, monotonically
// increasing detected_at so segments get disjoint time fences (the
// realistic shape — events arrive roughly in detection order).
struct EventGen {
  std::uint64_t state = 7;
  std::uint64_t rnd() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
  core::FlowEvent next(std::uint64_t i) {
    const auto r = rnd();
    packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, (r >> 8) & 15, (r >> 4) & 255, 1),
                         packet::Ipv4Addr::from_octets(10, 128, (r >> 12) & 255, 2), 6,
                         static_cast<std::uint16_t>(1024 + (r & 4095)), 80};
    auto ev = core::make_event(
        r % 5 == 0 ? core::EventType::kCongestion : core::EventType::kDrop, flow,
        static_cast<util::NodeId>(r % 64), static_cast<util::SimTime>(i * 100));
    ev.counter = static_cast<std::uint16_t>(1 + (r % 50));
    return ev;
  }
};

double read_json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

double ingest_run(store::FlowEventStore& fs, std::uint64_t events) {
  EventGen gen;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < events; ++i) {
    const auto ev = gen.next(i);
    fs.add(ev, ev.detected_at + 50);
  }
  fs.flush();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t events = 2'000'000;
  int reps = 3;
  std::string baseline_path;
  double max_regression_pct = 20.0;
  ExperimentOptions cli{"Store microbench — ingest events/sec and query pruning"};
  cli.flag("events", &events, "events per ingest rep")
      .flag("reps", &reps, "take the best rate over this many reps")
      .flag("baseline", &baseline_path, "BENCH_store.json to gate regressions against")
      .flag("max-regression-pct", &max_regression_pct, "allowed ingest drop vs baseline")
      .parse(argc, argv);
  if (events < 1) events = 1;
  if (reps < 1) reps = 1;

  print_title("Flow-event store microbench");

  // Phase 1: in-memory ingest (shard buffers -> memtable -> seal ->
  // compaction, no WAL). This is the number the baseline gates.
  double best_mem = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    store::FlowEventStore fs;
    const double wall = ingest_run(fs, events);
    const double eps = static_cast<double>(events) / wall;
    std::printf("  mem ingest rep %d: %.3fs (%.2fM events/s, %zu segments)\n", rep, wall,
                eps / 1e6, fs.segment_count());
    if (eps > best_mem) best_mem = eps;
  }

  // Phase 2: durable ingest — same stream through the CRC-framed WAL and
  // segment files in a scratch directory.
  const auto dir = std::filesystem::temp_directory_path() / "netseer_bench_store";
  double best_dur = -1.0;
  std::uint64_t wal_bytes = 0;
  for (int rep = 0; rep < reps; ++rep) {
    std::filesystem::remove_all(dir);
    store::StoreOptions options;
    options.dir = dir.string();
    store::FlowEventStore fs(options);
    const double wall = ingest_run(fs, events);
    const double eps = static_cast<double>(events) / wall;
    wal_bytes = fs.stats().wal_bytes;
    std::printf("  wal ingest rep %d: %.3fs (%.2fM events/s, %.1f MB WAL)\n", rep, wall,
                eps / 1e6, static_cast<double>(wal_bytes) / 1e6);
    if (eps > best_dur) best_dur = eps;
  }
  std::filesystem::remove_all(dir);

  // Phase 3: query engine over a sealed in-memory store. Narrow time
  // windows must prune most segments via the min/max fences.
  store::FlowEventStore fs;
  (void)ingest_run(fs, events);
  fs.seal_active();
  const util::SimTime span = static_cast<util::SimTime>(events) * 100;
  EventGen qgen;
  const int kQueries = 2000;
  const auto qstart = std::chrono::steady_clock::now();
  std::size_t total_matches = 0;
  for (int q = 0; q < kQueries; ++q) {
    backend::EventQuery query;
    const auto r = qgen.rnd();
    const auto from = static_cast<util::SimTime>(r % static_cast<std::uint64_t>(span));
    query.from = from;
    query.to = from + span / 256;
    if (q % 2 == 0) query.type = core::EventType::kCongestion;
    total_matches += fs.count(query);
  }
  const double qwall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - qstart).count();
  const auto& stats = fs.stats();
  std::printf("\n  queries           %d time-windowed (%.0f/s), %zu matches\n", kQueries,
              kQueries / qwall, total_matches);
  std::printf("  segments          %zu; scanned %llu, pruned %llu (%.1f%% pruned)\n",
              fs.segment_count(), static_cast<unsigned long long>(stats.segments_scanned),
              static_cast<unsigned long long>(stats.segments_pruned),
              100.0 * static_cast<double>(stats.segments_pruned) /
                  static_cast<double>(stats.segments_scanned + stats.segments_pruned));
  std::printf("  ingest mem        %.2fM events/s\n", best_mem / 1e6);
  std::printf("  ingest wal        %.2fM events/s\n", best_dur / 1e6);

  if (stats.segments_pruned == 0) {
    std::fprintf(stderr, "FAIL: time-windowed queries pruned zero segments\n");
    return 1;
  }

  if (cli.metrics_enabled()) telemetry::collect(cli.registry(), fs);

  if (!baseline_path.empty()) {
    FILE* f = std::fopen(baseline_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::string text;
    char buffer[4096];
    for (std::size_t n; (n = std::fread(buffer, 1, sizeof(buffer), f)) > 0;) {
      text.append(buffer, n);
    }
    std::fclose(f);
    const double baseline_eps = read_json_number(text, "baseline_ingest_events_per_sec");
    if (baseline_eps <= 0) {
      std::fprintf(stderr, "no \"baseline_ingest_events_per_sec\" in %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const double floor = baseline_eps * (1.0 - max_regression_pct / 100.0);
    std::printf("\n  baseline          %.0f events/s (%s)\n", baseline_eps,
                baseline_path.c_str());
    std::printf("  regression floor  %.0f events/s (-%g%%)\n", floor, max_regression_pct);
    if (best_mem < floor) {
      std::fprintf(stderr, "FAIL: ingest %.0f events/s below floor %.0f\n", best_mem, floor);
      return 1;
    }
    std::printf("  gate              PASS\n");
  }
  return cli.write_metrics();
}
