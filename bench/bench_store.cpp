// Flow-event store microbench: ingest throughput (in-memory, legacy
// inline-durability, and group-commit durable), plus the query engine's
// index/pruning behaviour and scatter-gather parallelism over a sealed
// store.
//
//   bench_store --events 2000000 --reps 3
//   bench_store --events 2000000 --baseline bench/BENCH_store.json
//
// With --baseline the run exits 1 if the best in-memory ingest rate or
// the best group-commit durable rate lands more than
// --max-regression-pct below its checked-in value — the CI perf-smoke
// gate, same contract as bench_engine. The parallel-query phase always
// asserts result parity with the serial cursor; its speedup gate is
// hardware-aware (min_speedup_per_core x available cores, skipped on
// single-core machines), same contract as bench_scalability. The query
// phase asserts that time-windowed queries actually prune segments (the
// whole point of the per-segment time fences); zero pruning fails the
// run. All gated numbers also land in the --metrics-out snapshot, which
// is what CI parses.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/event.h"
#include "experiment.h"
#include "store/store.h"
#include "table.h"
#include "telemetry/collect.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

// Deterministic event mix: 64 switches, 4096 flows, monotonically
// increasing detected_at so segments get disjoint time fences (the
// realistic shape — events arrive roughly in detection order).
struct EventGen {
  std::uint64_t state = 7;
  std::uint64_t rnd() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
  core::FlowEvent next(std::uint64_t i) {
    const auto r = rnd();
    packet::FlowKey flow{packet::Ipv4Addr::from_octets(10, (r >> 8) & 15, (r >> 4) & 255, 1),
                         packet::Ipv4Addr::from_octets(10, 128, (r >> 12) & 255, 2), 6,
                         static_cast<std::uint16_t>(1024 + (r & 4095)), 80};
    auto ev = core::make_event(
        r % 5 == 0 ? core::EventType::kCongestion : core::EventType::kDrop, flow,
        static_cast<util::NodeId>(r % 64), static_cast<util::SimTime>(i * 100));
    ev.counter = static_cast<std::uint16_t>(1 + (r % 50));
    return ev;
  }
};

double read_json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

double ingest_run(store::FlowEventStore& fs, std::uint64_t events) {
  EventGen gen;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < events; ++i) {
    const auto ev = gen.next(i);
    fs.add(ev, ev.detected_at + 50);
  }
  fs.flush();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// The 2000-query time-window workload shared by the serial and
/// parallel query phases: narrow windows (span/256) over the sealed
/// store, every second one type-filtered.
std::size_t query_sweep(const store::FlowEventStore& fs, util::SimTime span, double* wall_out) {
  EventGen qgen;
  constexpr int kQueries = 2000;
  const auto start = std::chrono::steady_clock::now();
  std::size_t total_matches = 0;
  for (int q = 0; q < kQueries; ++q) {
    backend::EventQuery query;
    const auto r = qgen.rnd();
    const auto from = static_cast<util::SimTime>(r % static_cast<std::uint64_t>(span));
    query.since(from).until(from + span / 256);
    if (q % 2 == 0) query.of_type(core::EventType::kCongestion);
    total_matches += fs.count(query);
  }
  *wall_out = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return total_matches;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t events = 2'000'000;
  int reps = 3;
  std::uint64_t gc_shard_batch = 2048;
  std::uint64_t gc_chunk = 2048;
  std::string baseline_path;
  double max_regression_pct = 20.0;
  ExperimentOptions cli{"Store microbench — ingest events/sec and query pruning"};
  cli.flag("events", &events, "events per ingest rep")
      .flag("reps", &reps, "take the best rate over this many reps")
      .flag("gc-shard-batch", &gc_shard_batch, "shard batch for the group-commit phase")
      .flag("gc-chunk", &gc_chunk, "add_batch chunk size for the group-commit phase")
      .flag("baseline", &baseline_path, "BENCH_store.json to gate regressions against")
      .flag("max-regression-pct", &max_regression_pct, "allowed ingest drop vs baseline")
      .parse(argc, argv);
  if (events < 1) events = 1;
  if (reps < 1) reps = 1;
  if (gc_chunk < 1) gc_chunk = 1;

  print_title("Flow-event store microbench");

  // Phase 1: in-memory ingest (shard buffers -> memtable -> seal ->
  // compaction, no WAL), per-event add(). One of the two gated numbers.
  double best_mem = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    store::FlowEventStore fs;
    const double wall = ingest_run(fs, events);
    const double eps = static_cast<double>(events) / wall;
    std::printf("  mem ingest rep %d: %.3fs (%.2fM events/s, %zu segments)\n", rep, wall,
                eps / 1e6, fs.segment_count());
    if (eps > best_mem) best_mem = eps;
  }

  // Phase 2: legacy durable ingest — per-event add() through the WAL,
  // event generation inside the clock. Kept for continuity with the
  // pre-group-commit baseline history; not gated.
  const auto dir = std::filesystem::temp_directory_path() / "netseer_bench_store";
  double best_dur = -1.0;
  std::uint64_t wal_bytes = 0;
  for (int rep = 0; rep < reps; ++rep) {
    std::filesystem::remove_all(dir);
    store::StoreOptions options;
    options.dir = dir.string();
    store::FlowEventStore fs(options);
    const double wall = ingest_run(fs, events);
    const double eps = static_cast<double>(events) / wall;
    wal_bytes = fs.stats().wal_bytes;
    std::printf("  wal ingest rep %d: %.3fs (%.2fM events/s, %.1f MB WAL)\n", rep, wall,
                eps / 1e6, static_cast<double>(wal_bytes) / 1e6);
    if (eps > best_dur) best_dur = eps;
  }

  // Phase 3: group-commit durable ingest — the batch-first API fed
  // pre-generated events (the clock sees the store, not the generator),
  // acknowledged ONLY by the durable watermark: no inline fsync, one
  // blocking sync() at the end, and the run fails unless every event is
  // inside the watermark afterwards. The other gated number.
  std::vector<core::FlowEvent> pregen;
  pregen.reserve(events);
  {
    EventGen gen;
    for (std::uint64_t i = 0; i < events; ++i) pregen.push_back(gen.next(i));
  }
  double best_gc = -1.0;
  std::uint64_t gc_groups = 0, gc_max_group = 0, gc_queue_waits = 0;
  for (int rep = 0; rep < reps; ++rep) {
    std::filesystem::remove_all(dir);
    store::StoreOptions options;
    options.dir = dir.string();
    options.shard_batch = gc_shard_batch;
    options.writer_queue = 128;
    options.wal_segment_bytes = 16ull << 20u;
    store::FlowEventStore fs(options);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t off = 0; off < events; off += gc_chunk) {
      const auto n = static_cast<std::size_t>(std::min<std::uint64_t>(gc_chunk, events - off));
      fs.add_batch(std::span<const core::FlowEvent>{pregen.data() + off, n},
                   pregen[off].detected_at + 50);
    }
    const bool synced = fs.sync();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (!synced || fs.durable_watermark() < events) {
      std::fprintf(stderr, "FAIL: group-commit sync did not cover the run (watermark %llu)\n",
                   static_cast<unsigned long long>(fs.durable_watermark()));
      return 1;
    }
    const double eps = static_cast<double>(events) / wall;
    const auto& s = fs.stats();
    std::printf(
        "  gc  ingest rep %d: %.3fs (%.2fM events/s, %llu fsync groups, max %llu batches)\n",
        rep, wall, eps / 1e6, static_cast<unsigned long long>(s.groups_committed),
        static_cast<unsigned long long>(s.max_group_batches));
    if (eps > best_gc) {
      best_gc = eps;
      gc_groups = s.groups_committed;
      gc_max_group = s.max_group_batches;
      gc_queue_waits = s.writer_queue_waits;
    }
  }
  std::filesystem::remove_all(dir);

  // Phase 4: query engine over a sealed in-memory store. Narrow time
  // windows must prune most segments via the min/max fences.
  store::FlowEventStore fs;
  (void)ingest_run(fs, events);
  fs.seal_active();
  const util::SimTime span = static_cast<util::SimTime>(events) * 100;
  double serial_qwall = 0;
  const std::size_t serial_matches = query_sweep(fs, span, &serial_qwall);
  const auto& stats = fs.stats();
  std::printf("\n  queries           2000 time-windowed (%.0f/s), %zu matches\n",
              2000 / serial_qwall, serial_matches);
  std::printf("  segments          %zu; scanned %llu, pruned %llu (%.1f%% pruned)\n",
              fs.segment_count(), static_cast<unsigned long long>(stats.segments_scanned),
              static_cast<unsigned long long>(stats.segments_pruned),
              100.0 * static_cast<double>(stats.segments_pruned) /
                  static_cast<double>(stats.segments_scanned + stats.segments_pruned));
  if (stats.segments_pruned == 0) {
    std::fprintf(stderr, "FAIL: time-windowed queries pruned zero segments\n");
    return 1;
  }

  // Phase 5: the same sweep scatter-gathered over a query pool. Result
  // parity with the serial cursor is unconditional; the speedup gate is
  // hardware-aware and skipped below 2 cores.
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t pool_threads = std::min<std::size_t>(hw_threads > 1 ? hw_threads : 2, 8);
  fs.set_query_threads(pool_threads);
  double parallel_qwall = 0;
  const std::size_t parallel_matches = query_sweep(fs, span, &parallel_qwall);
  fs.set_query_threads(1);
  if (parallel_matches != serial_matches) {
    std::fprintf(stderr, "FAIL: parallel query matches %zu != serial %zu\n", parallel_matches,
                 serial_matches);
    return 1;
  }
  const double speedup = serial_qwall / parallel_qwall;
  std::printf("  parallel queries  %zu threads: %.0f/s (%.2fx serial, parity ok)\n",
              pool_threads, 2000 / parallel_qwall, speedup);

  std::printf("  ingest mem        %.2fM events/s\n", best_mem / 1e6);
  std::printf("  ingest wal        %.2fM events/s (inline add, generator on the clock)\n",
              best_dur / 1e6);
  std::printf("  ingest gc         %.2fM events/s (group commit, watermark acks, "
              "%llu groups, %llu queue waits)\n",
              best_gc / 1e6, static_cast<unsigned long long>(gc_groups),
              static_cast<unsigned long long>(gc_queue_waits));

  if (cli.metrics_enabled()) {
    telemetry::collect(cli.registry(), fs);
    auto& reg = cli.registry();
    reg.gauge("bench_store", "ingest_mem_eps").update_max(static_cast<std::int64_t>(best_mem));
    reg.gauge("bench_store", "ingest_wal_eps").update_max(static_cast<std::int64_t>(best_dur));
    reg.gauge("bench_store", "ingest_gc_eps").update_max(static_cast<std::int64_t>(best_gc));
    reg.gauge("bench_store", "gc_fsync_groups")
        .update_max(static_cast<std::int64_t>(gc_groups));
    reg.gauge("bench_store", "gc_max_group_batches")
        .update_max(static_cast<std::int64_t>(gc_max_group));
    reg.gauge("bench_store", "query_serial_per_sec")
        .update_max(static_cast<std::int64_t>(2000 / serial_qwall));
    reg.gauge("bench_store", "query_parallel_per_sec")
        .update_max(static_cast<std::int64_t>(2000 / parallel_qwall));
    reg.gauge("bench_store", "query_parallel_speedup_pct")
        .update_max(static_cast<std::int64_t>(speedup * 100));
    reg.gauge("bench_store", "query_parity").update_max(1);
  }

  if (!baseline_path.empty()) {
    FILE* f = std::fopen(baseline_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::string text;
    char buffer[4096];
    for (std::size_t n; (n = std::fread(buffer, 1, sizeof(buffer), f)) > 0;) {
      text.append(buffer, n);
    }
    std::fclose(f);
    const double baseline_eps = read_json_number(text, "baseline_ingest_events_per_sec");
    if (baseline_eps <= 0) {
      std::fprintf(stderr, "no \"baseline_ingest_events_per_sec\" in %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const double floor = baseline_eps * (1.0 - max_regression_pct / 100.0);
    std::printf("\n  baseline mem      %.0f events/s, floor %.0f (-%g%%)\n", baseline_eps,
                floor, max_regression_pct);
    if (best_mem < floor) {
      std::fprintf(stderr, "FAIL: ingest %.0f events/s below floor %.0f\n", best_mem, floor);
      return 1;
    }
    const double baseline_gc = read_json_number(text, "baseline_durable_events_per_sec");
    if (baseline_gc <= 0) {
      std::fprintf(stderr, "no \"baseline_durable_events_per_sec\" in %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const double gc_floor = baseline_gc * (1.0 - max_regression_pct / 100.0);
    std::printf("  baseline gc       %.0f events/s, floor %.0f (-%g%%)\n", baseline_gc,
                gc_floor, max_regression_pct);
    if (best_gc < gc_floor) {
      std::fprintf(stderr, "FAIL: group-commit ingest %.0f events/s below floor %.0f\n",
                   best_gc, gc_floor);
      return 1;
    }
    // Hardware-aware parallel-query gate, BENCH_parallel.json-style:
    // on a single hardware thread a pool cannot beat the serial cursor,
    // so only parity is enforced there.
    const double target_speedup = read_json_number(text, "query_target_speedup");
    const double per_core = read_json_number(text, "query_min_speedup_per_core");
    if (hw_threads >= 2 && target_speedup > 0 && per_core > 0) {
      const double need = std::min(
          target_speedup, per_core * static_cast<double>(std::min<std::size_t>(
                                         pool_threads, hw_threads)));
      std::printf("  speedup gate      need %.2fx on %u cores, got %.2fx\n", need, hw_threads,
                  speedup);
      if (speedup < need) {
        std::fprintf(stderr, "FAIL: parallel-query speedup %.2fx below %.2fx\n", speedup,
                     need);
        return 1;
      }
    } else {
      std::printf("  speedup gate      skipped (%u hardware thread%s)\n", hw_threads,
                  hw_threads == 1 ? "" : "s");
    }
    std::printf("  gate              PASS\n");
  }
  return cli.write_metrics();
}
