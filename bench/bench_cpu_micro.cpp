// Microbenchmarks (google-benchmark) of the hot NetSeer data structures:
//  - FP elimination with vs without the pipeline's pre-computed hash
//    (§3.6 claims offloading saves 71.4% of CPU cycles, 2.5x capacity);
//  - FP elimination vs resident flow count (the Fig. 14b curve);
//  - group-cache offers (Algorithm 1), the per-event-packet cost;
//  - 24-byte event record encode/decode;
//  - inter-switch TX tagging+recording, the per-packet egress cost.
#include <benchmark/benchmark.h>

#include "experiment.h"

#include "core/detect/interswitch.h"
#include "core/event.h"
#include "core/group_cache.h"
#include "core/switch_cpu.h"
#include "packet/builder.h"
#include "util/rng.h"

namespace {

using namespace netseer;

std::vector<core::FlowEvent> make_events(std::size_t n, std::uint64_t seed = 7) {
  util::Rng rng(seed);
  std::vector<core::FlowEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    packet::FlowKey flow;
    flow.src.value = static_cast<std::uint32_t>(rng.next());
    flow.dst.value = static_cast<std::uint32_t>(rng.next());
    flow.proto = 6;
    flow.sport = static_cast<std::uint16_t>(rng.next());
    flow.dport = 80;
    events.push_back(core::make_event(core::EventType::kDrop, flow, 1, 0));
  }
  return events;
}

void BM_FpEliminate(benchmark::State& state) {
  const bool offload = state.range(0) != 0;
  const auto flows = static_cast<std::size_t>(state.range(1));
  core::FpEliminatorConfig config;
  config.use_precomputed_hash = offload;
  config.max_entries = flows * 2 + 1024;
  core::FpEliminator fp(config);
  const auto events = make_events(flows);
  for (const auto& ev : events) (void)fp.admit(ev, 0);

  std::size_t i = 0;
  util::SimTime t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp.admit(events[i], ++t));
    if (++i == events.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(offload ? "precomputed-hash" : "cpu-recomputes-hash");
}
BENCHMARK(BM_FpEliminate)
    ->ArgsProduct({{0, 1}, {1 << 10, 1 << 14, 1 << 17, 1 << 20}})
    ->ArgNames({"offload", "flows"});

void BM_GroupCacheOffer(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  core::GroupCache cache(core::GroupCacheConfig{.entries = 4096});
  const auto events = make_events(flows);
  std::size_t i = 0;
  std::uint64_t sink = 0;
  const auto emit = [&sink](const core::FlowEvent& ev) { sink += ev.counter; };
  for (auto _ : state) {
    cache.offer(events[i], emit);
    if (++i == events.size()) i = 0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GroupCacheOffer)->Arg(16)->Arg(1024)->Arg(65536);

void BM_EventSerialize(benchmark::State& state) {
  const auto events = make_events(256);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(events[i].serialize());
    if (++i == events.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventSerialize);

void BM_EventParse(benchmark::State& state) {
  const auto events = make_events(256);
  std::vector<std::array<std::byte, core::FlowEvent::kWireSize>> raws;
  for (const auto& ev : events) raws.push_back(ev.serialize());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FlowEvent::parse(raws[i]));
    if (++i == raws.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventParse);

void BM_InterSwitchTx(benchmark::State& state) {
  core::InterSwitchConfig config;
  config.ring_slots = static_cast<std::size_t>(state.range(0));
  core::InterSwitchTx tx(config);
  auto pkt = packet::make_tcp(packet::FlowKey{packet::Ipv4Addr::from_octets(1, 1, 1, 1),
                                              packet::Ipv4Addr::from_octets(2, 2, 2, 2), 6,
                                              1000, 80},
                              1000);
  const auto emit = [](const packet::FlowKey&, std::uint32_t) {};
  for (auto _ : state) {
    tx.on_tx(pkt, emit);
    benchmark::DoNotOptimize(pkt.seq_tag);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterSwitchTx)->Arg(1024)->Arg(65536);

void BM_FlowKeyHash(benchmark::State& state) {
  const auto events = make_events(256);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(events[i].flow.crc32());
    if (++i == events.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowKeyHash);

}  // namespace

// BENCHMARK_MAIN, with --metrics-out stripped before google-benchmark
// parses the remaining flags. The registry stays empty here (benchmark
// reports its own timings); the flag still produces a valid snapshot so
// every bench binary honours the same interface.
int main(int argc, char** argv) {
  netseer::bench::ExperimentOptions cli{
      "Microbenchmarks — switch-CPU event processing hot paths"};
  // google-benchmark owns the rest of the flag surface (--benchmark_*).
  cli.allow_unknown().parse(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return cli.write_metrics();
}
