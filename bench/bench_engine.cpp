// Microbenchmark for the discrete-event engine hot path. A fixed amount
// of simulated work — packet hop chains riding the packet pool exactly
// like net::Link / net::TxPort hops, self-rescheduling timers, and
// periodic tasks with occasional cancel/re-arm — runs to a fixed virtual
// time while the wall clock measures it. Fixing simulated time makes the
// event count deterministic, so events/sec comparisons across engine
// versions measure the engine alone, and the count doubles as a
// determinism check across reps.
//
//   bench_engine --duration-ms 500 --reps 5
//   bench_engine --duration-ms 500 --baseline bench/BENCH_engine.json
//
// With --baseline the run exits 1 if best events/sec lands more than
// --max-regression-pct below the checked-in value — the CI perf-smoke
// gate. Wall time is min-over-reps: the minimum is the run least
// disturbed by the machine, which is the right estimator for throughput.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "experiment.h"
#include "packet/builder.h"
#include "packet/pool.h"
#include "sim/simulator.h"
#include "table.h"
#include "telemetry/collect.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

// The churn mix: 1024 packets forever in flight (each hop re-schedules
// the next), 512 one-shot timers that re-arm themselves, 128 periodics
// that the timers occasionally cancel and replace. The population and
// delays model a loaded testbed: ~1.7k pending events, hop delays of
// 16 ns – 8.2 us (store-and-forward serialization across link speeds),
// timers an order of magnitude further out so many ride the overflow
// heap. Packet hops are ~83% of events — in a loaded run nearly every
// event carries a frame across link -> switch -> link — with the same
// capture sizes as the real hops.
struct EngineBench {
  sim::Simulator sim;
  std::uint64_t state = 99;  // deterministic LCG, independent of util::Rng
  std::uint64_t hops = 0;
  std::vector<sim::TaskHandle> periodics;

  std::uint64_t rnd() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }

  static packet::Packet make_packet() {
    packet::Packet pkt;
    pkt.uid = packet::next_packet_uid();
    pkt.ip = packet::Ipv4Header{};
    pkt.ip->ttl = 64;
    pkt.l4.sport = 1234;
    pkt.l4.dport = 80;
    pkt.payload_bytes = 1000;
    return pkt;
  }

  void hop(packet::Packet&& pkt) {
    ++hops;
    pkt.payload_bytes = static_cast<std::uint32_t>(64 + (rnd() & 1023));
    pkt.meta.enqueue_time = sim.now();
    // Identical shape to Link::send: this + pooled slot, 24 B inline.
    (void)sim.schedule_after(static_cast<util::SimDuration>(16 * (1 + (rnd() % 512))),
                       [this, slot = packet::Pool::local().acquire(std::move(pkt))]() mutable {
                         hop(slot.take());
                       });
  }

  void timer_fire(std::uint32_t idx) {
    const auto r = rnd();
    if ((r & 1023u) == 0 && !periodics.empty()) {
      const std::size_t victim = r % periodics.size();
      periodics[victim].cancel();
      periodics[victim] = sim.schedule_every(
          static_cast<util::SimDuration>(16 * (128 + (rnd() % 512))), [this] { rnd(); });
    }
    (void)sim.schedule_after(static_cast<util::SimDuration>(16 * (64 + (r % 2048))),
                       [this, idx] { timer_fire(idx); });
  }

  void setup() {
    for (int i = 0; i < 1024; ++i) {
      (void)sim.schedule_at(static_cast<util::SimTime>(rnd() % 1024),
                      [this, slot = packet::Pool::local().acquire(make_packet())]() mutable {
                        hop(slot.take());
                      });
    }
    for (std::uint32_t i = 0; i < 512; ++i) {
      (void)sim.schedule_at(static_cast<util::SimTime>(rnd() % 1024), [this, i] { timer_fire(i); });
    }
    for (int i = 0; i < 128; ++i) {
      periodics.push_back(sim.schedule_every(
          static_cast<util::SimDuration>(16 * (128 + (rnd() % 512))), [this] { rnd(); }));
    }
  }
};

// Pull one numeric field out of BENCH_engine.json without a JSON parser:
// scan for `"<key>":` and read the number after it. Returns < 0 if absent.
double read_json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  int duration_ms = 1000;
  int reps = 5;
  std::string baseline_path;
  double max_regression_pct = 20.0;
  ExperimentOptions cli{"Engine microbench — events/sec on the simulator hot path"};
  cli.flag("duration-ms", &duration_ms, "simulated time per rep")
      .flag("reps", &reps, "take the best wall time over this many reps")
      .flag("baseline", &baseline_path, "BENCH_engine.json to gate regressions against")
      .flag("max-regression-pct", &max_regression_pct, "allowed events/sec drop vs baseline")
      .parse(argc, argv);
  if (duration_ms < 1) duration_ms = 1;
  if (reps < 1) reps = 1;

  print_title("Event-engine microbench (fixed simulated work, min-wall over reps)");

  std::uint64_t events = 0;
  std::uint64_t heap_allocs = 0;
  double best_wall = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    EngineBench bench;
    bench.setup();
    const auto start = std::chrono::steady_clock::now();
    bench.sim.run_until(util::milliseconds(duration_ms));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    if (rep == 0) {
      events = bench.sim.events_processed();
    } else if (bench.sim.events_processed() != events) {
      std::fprintf(stderr,
                   "non-deterministic run: rep %d processed %llu events, rep 0 %llu\n", rep,
                   static_cast<unsigned long long>(bench.sim.events_processed()),
                   static_cast<unsigned long long>(events));
      return 1;
    }
    heap_allocs = bench.sim.task_heap_allocs();
    if (best_wall < 0 || wall < best_wall) best_wall = wall;
    if (cli.metrics_enabled()) {
      // Gauges max-merge, so the folded snapshot keeps the best rep.
      telemetry::collect(cli.registry(), bench.sim, wall);
    }
    std::printf("  rep %d: wall %.3fs (%.2fM events/s)\n", rep, wall,
                static_cast<double>(events) / wall / 1e6);
  }

  const double best_eps = static_cast<double>(events) / best_wall;
  const auto& pool = packet::Pool::local();
  const double hit_rate =
      pool.acquires() > 0
          ? static_cast<double>(pool.reuses()) / static_cast<double>(pool.acquires())
          : 0.0;
  std::printf("\n  events            %llu (%d ms simulated)\n",
              static_cast<unsigned long long>(events), duration_ms);
  std::printf("  best wall         %.3f s\n", best_wall);
  std::printf("  events/sec        %.0f\n", best_eps);
  std::printf("  task heap allocs  %llu (%.2f ppm of schedules)\n",
              static_cast<unsigned long long>(heap_allocs),
              1e6 * static_cast<double>(heap_allocs) / static_cast<double>(events));
  std::printf("  pool hit rate     %.1f%%\n", 100.0 * hit_rate);

  if (!baseline_path.empty()) {
    FILE* f = std::fopen(baseline_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::string text;
    char buffer[4096];
    for (std::size_t n; (n = std::fread(buffer, 1, sizeof(buffer), f)) > 0;) {
      text.append(buffer, n);
    }
    std::fclose(f);
    const double baseline_eps = read_json_number(text, "baseline_events_per_sec");
    if (baseline_eps <= 0) {
      std::fprintf(stderr, "no \"baseline_events_per_sec\" in %s\n", baseline_path.c_str());
      return 1;
    }
    const double floor = baseline_eps * (1.0 - max_regression_pct / 100.0);
    std::printf("\n  baseline          %.0f events/s (%s)\n", baseline_eps,
                baseline_path.c_str());
    std::printf("  regression floor  %.0f events/s (-%g%%)\n", floor, max_regression_pct);
    if (best_eps < floor) {
      std::fprintf(stderr, "PERF REGRESSION: %.0f events/s is below the floor\n", best_eps);
      return 1;
    }
    std::printf("  verdict           ok (%+.1f%% vs baseline)\n",
                100.0 * (best_eps / baseline_eps - 1.0));
  }
  return cli.write_metrics();
}
