// Figure 10: congestion event coverage across the five workloads.
// Paper result: NetSeer & NetSight full; sampling roughly proportional
// to its rate (1:10 > 1:100 > 1:1000); EverFlow tiny; Pingmesh detects
// only the existence of ~0.02% of congestion events and never the flows.
#include "experiment.h"
#include "table.h"

using namespace netseer;
using namespace netseer::bench;

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 10 — congestion event coverage per monitoring system"};
  cli.parse(argc, argv);
  print_title("Figure 10 — congestion event coverage");
  print_paper("NetSeer/NetSight 100%; sampling ~ rate; EverFlow <1%; Pingmesh existence only");

  ExperimentConfig config;
  cli.configure(config);
  std::printf("\n  %-8s %9s %9s %9s %9s %9s %9s %9s %12s\n", "workload", "groups", "NetSeer",
              "NetSight", "EverFlow", "1:10", "1:100", "1:1000", "Ping(exist)");
  for (const auto* workload : traffic::all_workloads()) {
    const auto result = run_workload_experiment(*workload, config);
    const auto& row = result.congestion;
    std::printf("  %-8s %9zu %9s %9s %9s %9s %9s %9s %12s\n", result.workload.c_str(),
                row.truth_groups, pct(row.netseer).c_str(), pct(row.netsight).c_str(),
                pct(row.everflow).c_str(), pct(row.sample10).c_str(),
                pct(row.sample100).c_str(), pct(row.sample1000).c_str(),
                pct(row.pingmesh_existence).c_str());
  }
  print_note("Pingmesh column is existence-level detection; its flow-level coverage is 0.");
  return cli.write_metrics();
}
