// Figure 8(a): the five real incident replays — cause-location time with
// NetSeer (measured in-simulation: fault onset -> first attributable
// backend event) versus the operator hours the paper reports without it.
#include "experiment.h"
#include "scenarios/incidents.h"
#include "table.h"

using namespace netseer;
using namespace netseer::bench;

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 8(a) — incident cause-location time with vs without NetSeer"};
  cli.parse(argc, argv);
  print_title("Figure 8(a) — incident cause-location time, with vs without NetSeer");
  print_paper("location time cut 61%-99%: e.g. #1 162min -> 14s, #3 ~17h -> 30s");

  scenarios::IncidentSuite suite(42);
  suite.set_metrics(cli.sink());
  const auto reports = suite.run_all();

  std::printf("\n  %-3s %-42s %12s %12s %14s\n", "id", "incident", "paper w/o", "paper w/",
              "measured w/");
  for (const auto& report : reports) {
    char measured[48];
    if (report.network_exonerated) {
      std::snprintf(measured, sizeof(measured), "exonerated");
    } else if (report.located()) {
      std::snprintf(measured, sizeof(measured), "%s",
                    util::format_duration(report.detection_latency).c_str());
    } else {
      std::snprintf(measured, sizeof(measured), "NOT FOUND");
    }
    std::printf("  %-3s %-42s %9.0f min %9.0f s %14s\n", report.id.c_str(),
                report.name.c_str(), report.paper_without_minutes, report.paper_with_seconds,
                measured);
    std::printf("      -> %s\n", report.evidence.c_str());
  }
  print_note("measured w/ = simulated time from fault onset to the first backend event");
  print_note("naming the victim flow and faulty device (plus query round-trip in practice).");
  return cli.write_metrics();
}
