// Figure 3 (motivation): the production mix of NPA-causing packet drops.
// The underlying ticket data is proprietary; this bench prints the
// published fractions (encoded in scenarios/production_stats.h, they
// weight the incident scenarios) and then reproduces the *simulator's*
// drop-type mix when the corresponding fault types are injected with
// those frequencies.
#include "experiment.h"
#include "scenarios/harness.h"
#include "scenarios/production_stats.h"
#include "table.h"
#include "traffic/generator.h"

using namespace netseer;
using namespace netseer::bench;

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 3 — packet-drop mix behind NPAs, reproduced per fault class"};
  cli.parse(argc, argv);
  print_title("Figure 3 — packet drops that cause NPAs");
  print_note("published production fractions (Alibaba tickets, not reproducible):");
  std::printf("\n  %-14s %10s %18s\n", "type", "fraction", "avg locate (min)");
  for (const auto& entry : scenarios::stats::kDropMix) {
    std::printf("  %-14s %9.0f%% %18.0f\n", std::string(entry.type).c_str(),
                100 * entry.fraction, entry.avg_location_minutes);
  }
  std::printf("\n  NPAs caused by drops: %.0f%%; >180min locations that are inter-switch: %.0f%%\n",
              100 * scenarios::stats::kNpaFractionFromDrops,
              100 * scenarios::stats::kSlowLocationInterSwitchShare);

  // Simulator reproduction: inject each covered fault class and show the
  // resulting drop-reason mix as seen by NetSeer (ASIC/MMU hardware
  // failures are out of scope, §3.7).
  scenarios::HarnessOptions options;
  options.seed = 5;
  options.topo.host_rate = util::BitRate::gbps(5);
  options.topo.fabric_rate = util::BitRate::gbps(20);
  scenarios::Harness harness{options};
  auto& tb = harness.testbed();
  auto& sim = harness.simulator();

  traffic::GeneratorConfig gen;
  gen.sizes = &traffic::web();
  gen.load = 0.5;
  gen.flow_rate = util::BitRate::gbps(1);
  gen.stop = util::milliseconds(20);
  harness.add_workload(gen);

  // Pipeline drops: blackhole one host at one agg.
  (void)sim.schedule_at(util::milliseconds(4), [&tb] {
    tb.aggs[0]->routes().set_corrupted(packet::Ipv4Prefix{tb.hosts[3]->addr(), 32}, true);
  });
  // ACL drop: deny one prefix at a ToR.
  (void)sim.schedule_at(util::milliseconds(4), [&tb] {
    pdp::AclRule rule;
    rule.rule_id = 9;
    rule.dst = packet::Ipv4Prefix{tb.hosts[12]->addr(), 32};
    rule.permit = false;
    tb.tors[1]->acl().add_rule(rule);
  });
  // Inter-switch: lossy fabric link window.
  net::Link* bad = tb.tors[2]->link(static_cast<util::PortId>(options.topo.hosts_per_tor));
  (void)sim.schedule_at(util::milliseconds(6), [bad] {
    net::LinkFaultModel faults;
    faults.drop_prob = 0.01;
    bad->set_fault_model(faults);
  });
  // Congestion: a 16-way incast into one 5G host downlink.
  std::vector<net::Host*> senders(tb.hosts.begin() + 16, tb.hosts.end());
  traffic::launch_incast(senders, tb.hosts[9]->addr(), 200 * 1000, 1000,
                         util::milliseconds(4));

  harness.run_and_settle(util::milliseconds(30));

  std::uint64_t by_reason[16] = {};
  std::uint64_t acl = 0, total = 0;
  for (const auto& stored : harness.store().all()) {
    if (stored.event.type == core::EventType::kAclDrop) {
      acl += stored.event.counter;
      total += stored.event.counter;
    } else if (stored.event.type == core::EventType::kDrop) {
      by_reason[stored.event.drop_code & 0xf] += stored.event.counter;
      total += stored.event.counter;
    }
  }
  std::printf("\n  simulator reproduction (dropped packets by NetSeer-reported reason):\n");
  const auto row = [&](const char* name, std::uint64_t count) {
    if (total > 0) {
      std::printf("  %-14s %9.1f%% (%llu pkts)\n", name,
                  100.0 * static_cast<double>(count) / static_cast<double>(total),
                  static_cast<unsigned long long>(count));
    }
  };
  row("route-miss", by_reason[static_cast<int>(pdp::DropReason::kRouteMiss)]);
  row("acl", acl);
  row("congestion", by_reason[static_cast<int>(pdp::DropReason::kCongestion)]);
  row("inter-switch", by_reason[static_cast<int>(pdp::DropReason::kLinkLoss)]);
  if (cli.metrics_enabled()) harness.collect_metrics(cli.registry());
  return cli.write_metrics();
}
