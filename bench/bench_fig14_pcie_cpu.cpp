// Figure 14: (a) PCIe channel capacity versus batch size for 1 and 2
// cores — paper: ~9.5 Gb/s / 57 Meps with one core and ~18 Gb/s /
// 110 Meps with two once batches reach ~20; (b) switch-CPU event
// processing capacity versus concurrent flows — paper: 82 Meps at 1K
// flows declining to 4.5 Meps at 1M flows (measure the real data
// structure: see also bench_cpu_micro for the wall-clock version).
#include <chrono>

#include "core/pcie.h"
#include "core/switch_cpu.h"
#include "experiment.h"
#include "table.h"
#include "util/rng.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

core::FlowEvent random_event(util::Rng& rng) {
  packet::FlowKey flow;
  flow.src.value = static_cast<std::uint32_t>(rng.next());
  flow.dst.value = static_cast<std::uint32_t>(rng.next());
  flow.proto = 6;
  flow.sport = static_cast<std::uint16_t>(rng.next());
  flow.dport = 80;
  return core::make_event(core::EventType::kDrop, flow, 1, 0);
}

/// Wall-clock Meps of the real FP-elimination map with `flows` resident
/// flows (the Fig. 14b sweep).
double measured_cpu_meps(std::size_t flows) {
  util::Rng rng(99);
  core::FpEliminatorConfig config;
  config.max_entries = flows * 2 + 1024;
  core::FpEliminator fp(config);

  std::vector<core::FlowEvent> events;
  events.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) events.push_back(random_event(rng));
  // Warm the map.
  for (const auto& ev : events) (void)fp.admit(ev, 0);

  const std::size_t iterations = std::max<std::size_t>(1'000'000 / flows, 4) * flows;
  std::size_t index = 0;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t admitted = 0;
  for (std::size_t i = 0; i < iterations; ++i) {
    admitted += fp.admit(events[index], static_cast<util::SimTime>(i));
    if (++index == events.size()) index = 0;
  }
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  (void)admitted;
  return static_cast<double>(iterations) / elapsed.count() / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 14 — PCIe and switch-CPU capacity"};
  cli.parse(argc, argv);
  print_title("Figure 14(a) — PCIe capacity vs batch size, 1 vs 2 cores");
  print_paper("batch>=20: ~9.5 Gb/s (57 Meps) @1 core, ~18 Gb/s (110 Meps) @2 cores");

  std::printf("\n  %-8s %12s %12s %12s %12s\n", "batch", "1core Meps", "1core Gb/s",
              "2core Meps", "2core Gb/s");
  for (int batch : {1, 5, 10, 20, 30, 40, 50, 60, 70}) {
    core::PcieConfig one;
    one.cpu_cores = 1;
    one.phys_bandwidth = util::BitRate::gbps(10);
    core::PcieConfig two;
    two.cpu_cores = 2;
    const double eps1 = core::PcieChannel::throughput_eps(one, batch);
    const double eps2 = core::PcieChannel::throughput_eps(two, batch);
    std::printf("  %-8d %12.1f %12.2f %12.1f %12.2f\n", batch, eps1 / 1e6,
                eps1 * 24 * 8 / 1e9, eps2 / 1e6, eps2 * 24 * 8 / 1e9);
  }

  print_title("Figure 14(b) — switch CPU capacity vs concurrent flows (measured)");
  print_paper("82 Meps @1K flows declining to 4.5 Meps @1M flows (2 Xeon cores)");
  std::printf("\n  %-12s %12s\n", "flows", "Meps (1 core here)");
  for (std::size_t flows : {1'000ul, 10'000ul, 100'000ul, 250'000ul, 500'000ul, 1'000'000ul}) {
    const double meps = measured_cpu_meps(flows);
    std::printf("  %-12zu %12.1f\n", flows, meps);
    if (cli.metrics_enabled()) {
      cli.registry().histogram("bench", "fig14.cpu_meps").record(meps);
    }
  }
  print_note("absolute Meps depends on this machine; the declining shape with flow count");
  print_note("(cache misses in the FP-elimination hash map) is the figure's claim.");
  return cli.write_metrics();
}
