// Figure 7: PDP resource occupation, overall (switch.p4 + NetSeer) and
// per NetSeer component. Hardware compilation cannot run here, so the
// model derives chip fractions from this repository's actual
// configuration (table/register sizes) plus the baseline usage the paper
// reports for switch.p4, and reproduces the figure's shape: everything
// under ~20% except stateful ALU (~40%), dominated by the event batcher
// and inter-switch detection.
#include "core/capacity.h"
#include "core/netseer_app.h"
#include "experiment.h"
#include "pdp/resources.h"
#include "table.h"

using namespace netseer;
using namespace netseer::bench;
using pdp::Resource;

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 7 — PDP resource usage modeled from configuration"};
  cli.parse(argc, argv);
  print_title("Figure 7 — PDP resource usage (modeled from configuration)");
  print_paper("all resources <20% except stateful ALU ~40%; batcher+inter-switch ~28% sALU");

  core::NetSeerConfig config;  // defaults as deployed in the benches
  pdp::ResourceModel model;

  // Baseline switch.p4 usage (as reported for the reference L3 program).
  const char* base = "switch.p4";
  model.add(base, Resource::kExactXbar, 0.30);
  model.add(base, Resource::kTernaryXbar, 0.28);
  model.add(base, Resource::kHashBits, 0.30);
  model.add(base, Resource::kSram, 0.28);
  model.add(base, Resource::kTcam, 0.30);
  model.add(base, Resource::kVliwActions, 0.30);
  model.add(base, Resource::kStatefulAlu, 0.12);
  model.add(base, Resource::kPhv, 0.40);

  // Event detection: congestion threshold compare, drop tracing, pause
  // status table, path-change flow table.
  const char* detect = "event detection";
  const std::int64_t path_table_bytes =
      static_cast<std::int64_t>(config.path_change.entries) * (13 + 2 + 2 + 4);
  model.add(detect, Resource::kSram, pdp::sram_fraction(path_table_bytes));
  model.add(detect, Resource::kStatefulAlu, 0.04);
  model.add(detect, Resource::kPhv, 0.03);
  model.add(detect, Resource::kVliwActions, 0.02);
  model.add(detect, Resource::kHashBits, 0.02);

  // Inter-switch drop detection: per-port ring buffers + seq counters.
  const char* interswitch = "inter-switch";
  const std::int64_t ring_bytes = static_cast<std::int64_t>(
      core::capacity::ring_sram_bytes(32, config.interswitch.ring_slots));
  model.add(interswitch, Resource::kSram, pdp::sram_fraction(ring_bytes));
  model.add(interswitch, Resource::kStatefulAlu, 0.13);  // per-packet seq/record updates
  model.add(interswitch, Resource::kPhv, 0.02);
  model.add(interswitch, Resource::kHashBits, 0.01);

  // Deduplication: one group-cache table per event type.
  const char* dedup = "dedup";
  const std::int64_t cache_bytes =
      4 * static_cast<std::int64_t>(config.group_cache.entries) * (13 + 4 + 4 + 4);
  model.add(dedup, Resource::kSram, pdp::sram_fraction(cache_bytes));
  model.add(dedup, Resource::kStatefulAlu, 0.08);
  model.add(dedup, Resource::kHashBits, 0.04);
  model.add(dedup, Resource::kExactXbar, 0.03);

  // Batching: event stack registers + CEBP circulation.
  const char* batching = "batching";
  const std::int64_t stack_bytes =
      static_cast<std::int64_t>(config.event_stack_capacity) * 24;
  model.add(batching, Resource::kSram, pdp::sram_fraction(stack_bytes));
  model.add(batching, Resource::kStatefulAlu, 0.15);  // stack push/pop across stages
  model.add(batching, Resource::kVliwActions, 0.04);
  model.add(batching, Resource::kPhv, 0.03);

  std::printf("\n%s\n", model.report().c_str());

  // The paper's claim is about NetSeer's ADDITIONAL usage on top of
  // switch.p4: below 20% for everything except stateful ALU (~40%).
  std::printf("  NetSeer-only usage (total minus switch.p4):\n");
  for (std::size_t r = 0; r < pdp::kNumResources; ++r) {
    const auto resource = static_cast<Resource>(r);
    const double netseer_only =
        model.total(resource) - model.component_usage(base, resource);
    std::printf("    %-14s %5.1f%%\n", pdp::to_string(resource), 100 * netseer_only);
    if (cli.metrics_enabled()) {
      // Modeled chip fractions in percent; gauges since this is a level,
      // not an accumulating count.
      const std::string name = std::string("resources.") + pdp::to_string(resource);
      cli.registry().gauge("pdp", name + ".total_pct")
          .set(static_cast<std::int64_t>(100 * model.total(resource)));
      cli.registry().gauge("pdp", name + ".netseer_pct")
          .set(static_cast<std::int64_t>(100 * netseer_only));
    }
  }
  std::printf("  NetSeer stateful-ALU: batcher+inter-switch contribute %.0f%% of the chip\n",
              100 * (model.component_usage(interswitch, Resource::kStatefulAlu) +
                     model.component_usage(batching, Resource::kStatefulAlu)));
  return cli.write_metrics();
}
