#include "experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "traffic/generator.h"

namespace netseer::bench {

namespace {

using monitors::EventGroupSet;

double existence_fraction(const monitors::GroundTruth& truth,
                          const monitors::PingmeshProber* prober, core::EventType type,
                          util::SimDuration rtt_threshold) {
  if (prober == nullptr) return 0.0;
  std::size_t total = 0, detected = 0;
  for (const auto& ev : truth.events()) {
    if (ev.type != type) continue;
    ++total;
    if (prober->anomaly_in_window(ev.at - util::milliseconds(1), ev.at + util::milliseconds(1),
                                  rtt_threshold)) {
      ++detected;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(detected) / static_cast<double>(total);
}

}  // namespace

WorkloadResult run_workload_experiment(const traffic::EmpiricalCdf& workload,
                                       const ExperimentConfig& config) {
  WorkloadResult result;
  result.workload = workload.name();

  scenarios::HarnessOptions options;
  options.seed = config.seed;
  options.topo.host_rate = config.host_rate;
  options.topo.fabric_rate = config.fabric_rate;
  options.enable_netsight = true;
  options.sampling_rates = {10, 100, 1000};
  options.enable_everflow = true;
  options.everflow.telemetry_flows = 1000;
  options.everflow.reselect_interval = util::milliseconds(5);  // scaled from 1 min
  options.enable_pingmesh = true;
  options.pingmesh_interval = util::milliseconds(2);  // scaled from 1 s
  options.enable_snmp = true;
  options.snmp_interval = util::milliseconds(5);
  scenarios::Harness harness{options};
  auto& tb = harness.testbed();
  auto& sim = harness.simulator();

  if (config.verify != VerifyMode::kOff) {
    verify::VerifyOptions verify_options;
    verify_options.strict = config.verify == VerifyMode::kStrict;
    const verify::Report report = harness.verify_deployment(verify_options);
    if (!report.ok(verify_options.strict)) {
      std::fputs(report.render_text().c_str(), stderr);
      std::fprintf(stderr, "experiment aborted: deployment failed static verification\n");
      std::exit(1);
    }
  }

  // The paper's traffic: every host talks to every other host, average
  // link utilization 70%.
  traffic::GeneratorConfig gen;
  gen.sizes = &workload;
  gen.load = config.load;
  gen.flow_rate = util::BitRate::bps(config.host_rate.bits_per_second() / 4);
  gen.stop = config.duration;
  harness.add_workload(gen);

  // Injected events (§5.2: "we manually inject inter-switch drop,
  // pipeline drop, and path change events").
  //
  // Inter-switch: a corrupting + silently dropping fabric link.
  const auto uplink_port = static_cast<util::PortId>(options.topo.hosts_per_tor);
  net::Link* bad_link = tb.tors[0]->link(uplink_port);
  sim.schedule_at(config.duration / 4, [bad_link] {
    net::LinkFaultModel faults;
    faults.drop_prob = 0.005;
    faults.corrupt_prob = 0.002;
    bad_link->set_fault_model(faults);
  });
  sim.schedule_at(config.duration * 3 / 4, [bad_link] {
    bad_link->set_fault_model(net::LinkFaultModel{});
  });

  // Pipeline drop: a parity-corrupted route entry on one agg blackholes
  // part of the ECMP spread toward one host.
  sim.schedule_at(config.duration / 2, [&tb] {
    tb.aggs[1]->routes().set_corrupted(
        packet::Ipv4Prefix{tb.hosts[1]->addr(), 32}, true);
  });

  // Path change: a "network update" pins tor0-0's route toward hosts[8]
  // (which lives under tor0-1) to a single agg uplink; flows that were
  // ECMP'd onto the other uplink change paths.
  sim.schedule_at(config.duration / 2, [&tb, uplink_port] {
    tb.tors[0]->routes().insert(packet::Ipv4Prefix{tb.hosts[8]->addr(), 32},
                                pdp::EcmpGroup{{uplink_port}});
  });

  // An incast burst guarantees MMU drops on top of natural congestion.
  std::vector<net::Host*> incast_senders(tb.hosts.begin() + 16, tb.hosts.begin() + 24);
  traffic::launch_incast(incast_senders, tb.hosts[9]->addr(), 200 * 1000, 1000,
                         config.duration / 3);

  harness.run_and_settle(config.duration + util::milliseconds(20));

  // ---- Score ---------------------------------------------------------------
  auto& truth = harness.truth();
  const auto netseer_all = harness.netseer_groups();
  const auto netsight_drops = harness.netsight()->drop_groups();
  const auto everflow_drops = harness.everflow()->drop_groups();
  const auto threshold = options.netseer.congestion_threshold;

  const auto fill = [&](CoverageRow& row, const EventGroupSet& actual,
                        const EventGroupSet& ns_detected, const EventGroupSet& nsight,
                        const EventGroupSet& ef, const EventGroupSet& s10,
                        const EventGroupSet& s100, const EventGroupSet& s1000) {
    row.truth_groups = actual.size();
    row.netseer = scenarios::Harness::coverage(ns_detected, actual);
    row.netsight = scenarios::Harness::coverage(nsight, actual);
    row.everflow = scenarios::Harness::coverage(ef, actual);
    row.sample10 = scenarios::Harness::coverage(s10, actual);
    row.sample100 = scenarios::Harness::coverage(s100, actual);
    row.sample1000 = scenarios::Harness::coverage(s1000, actual);
  };

  const EventGroupSet empty;
  auto* s10 = harness.sampler(10);
  auto* s100 = harness.sampler(100);
  auto* s1000 = harness.sampler(1000);

  fill(result.pipeline_drop, truth.drop_groups(pdp::DropReason::kRouteMiss), netseer_all,
       netsight_drops, everflow_drops, empty, empty, empty);
  fill(result.mmu_drop, truth.drop_groups(pdp::DropReason::kCongestion), netseer_all,
       netsight_drops, everflow_drops, empty, empty, empty);
  {
    auto wire = truth.drop_groups(pdp::DropReason::kLinkLoss);
    for (const auto& g : truth.drop_groups(pdp::DropReason::kCorruption)) wire.insert(g);
    fill(result.interswitch_drop, wire, netseer_all, netsight_drops, everflow_drops, empty,
         empty, empty);
  }
  fill(result.congestion, truth.groups(core::EventType::kCongestion), netseer_all,
       harness.netsight()->congestion_groups(threshold),
       harness.everflow()->congestion_groups(threshold), s10->congestion_groups(threshold),
       s100->congestion_groups(threshold), s1000->congestion_groups(threshold));
  fill(result.path_change, truth.groups(core::EventType::kPathChange), netseer_all,
       harness.netsight()->path_groups(), harness.everflow()->path_groups(),
       s10->path_groups(), s100->path_groups(), s1000->path_groups());

  result.congestion.pingmesh_existence = existence_fraction(
      truth, harness.pingmesh(), core::EventType::kCongestion, util::microseconds(100));

  // ---- Overheads -------------------------------------------------------------
  const auto funnel = harness.total_funnel();
  result.funnel = funnel;
  result.traffic_bytes = funnel.traffic_bytes;
  const double traffic = std::max<double>(1.0, static_cast<double>(funnel.traffic_bytes));
  result.netseer_overhead = static_cast<double>(funnel.report_bytes) / traffic;
  result.netsight_overhead =
      static_cast<double>(harness.netsight()->overhead_bytes()) / traffic;
  result.everflow_overhead =
      static_cast<double>(harness.everflow()->overhead_bytes()) / traffic;
  result.sample10_overhead = static_cast<double>(s10->log().overhead_bytes()) / traffic;
  result.sample100_overhead = static_cast<double>(s100->log().overhead_bytes()) / traffic;
  result.sample1000_overhead = static_cast<double>(s1000->log().overhead_bytes()) / traffic;
  result.pingmesh_overhead =
      static_cast<double>(harness.pingmesh()->probe_bytes()) / traffic;
  result.snmp_overhead = static_cast<double>(harness.snmp()->overhead_bytes()) / traffic;
  result.netseer_events_stored = harness.store().size();

  // ---- Accuracy: zero FN / zero FP vs omniscient ground truth ----------------
  for (const auto type :
       {core::EventType::kDrop, core::EventType::kCongestion, core::EventType::kPathChange}) {
    const auto actual = truth.groups(type);
    const auto detected = harness.netseer_groups(type);
    for (const auto& group : actual) {
      if (!detected.contains(group)) result.netseer_zero_fn = false;
    }
    if (type == core::EventType::kPathChange) continue;  // expiry re-reports are legal
    for (const auto& group : detected) {
      if (!actual.contains(group)) result.netseer_zero_fp = false;
    }
  }

  if (config.metrics != nullptr) harness.collect_metrics(*config.metrics);
  return result;
}

}  // namespace netseer::bench
