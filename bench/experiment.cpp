#include "experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "telemetry/snapshot.h"
#include "traffic/generator.h"

namespace netseer::bench {

ExperimentOptions::ExperimentOptions(std::string summary) : summary_(std::move(summary)) {}

ExperimentOptions& ExperimentOptions::add(std::string_view name, Kind kind, void* out,
                                          std::string_view help) {
  specs_.push_back(Spec{std::string(name), kind, out, std::string(help)});
  return *this;
}

ExperimentOptions& ExperimentOptions::flag(std::string_view name, std::string* out,
                                           std::string_view help) {
  return add(name, Kind::kString, out, help);
}
ExperimentOptions& ExperimentOptions::flag(std::string_view name, int* out,
                                           std::string_view help) {
  return add(name, Kind::kInt, out, help);
}
ExperimentOptions& ExperimentOptions::flag(std::string_view name, double* out,
                                           std::string_view help) {
  return add(name, Kind::kDouble, out, help);
}
ExperimentOptions& ExperimentOptions::flag(std::string_view name, std::uint64_t* out,
                                           std::string_view help) {
  return add(name, Kind::kUint64, out, help);
}
ExperimentOptions& ExperimentOptions::flag(std::string_view name, bool* out,
                                           std::string_view help) {
  return add(name, Kind::kSwitch, out, help);
}

ExperimentOptions& ExperimentOptions::allow_unknown() {
  allow_unknown_ = true;
  return *this;
}

ExperimentOptions& ExperimentOptions::parse(int& argc, char** argv) {
  if (argc > 0 && argv[0] != nullptr) {
    const std::string_view path = argv[0];
    const auto slash = path.rfind('/');
    program_ = std::string(slash == std::string_view::npos ? path : path.substr(slash + 1));
  }

  const auto fail = [this](const std::string& message) {
    std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), message.c_str(), usage().c_str());
    std::exit(2);
  };

  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }

    std::string_view name = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); arg.starts_with("--") && eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = std::string(arg.substr(eq + 1));
    }
    const auto take_value = [&]() -> std::string {
      if (inline_value) return *inline_value;
      if (i + 1 < argc) return argv[++i];
      fail(std::string(name) + " needs a value");
      return {};  // unreachable
    };

    if (name == "--metrics-out") {
      metrics_path_ = take_value();
      continue;
    }
    if (name == "--verify") {
      verify_requested_ = true;
      verify_strict_ = inline_value && *inline_value == "strict";
      if (inline_value && !inline_value->empty() && !verify_strict_) {
        std::fprintf(stderr, "ignoring unknown --verify mode '%s' (want --verify[=strict])\n",
                     inline_value->c_str());
      }
      continue;
    }

    const Spec* match = nullptr;
    if (name.starts_with("--")) {
      for (const auto& spec : specs_) {
        if (name.substr(2) == spec.name) {
          match = &spec;
          break;
        }
      }
    }
    if (match == nullptr) {
      if (!allow_unknown_) fail("unknown argument '" + std::string(arg) + "'");
      argv[kept++] = argv[i];
      continue;
    }

    if (match->kind == Kind::kSwitch) {
      *static_cast<bool*>(match->out) = true;
      continue;
    }
    const std::string text = take_value();
    char* end = nullptr;
    switch (match->kind) {
      case Kind::kString:
        *static_cast<std::string*>(match->out) = text;
        break;
      case Kind::kInt:
        *static_cast<int*>(match->out) = static_cast<int>(std::strtol(text.c_str(), &end, 10));
        break;
      case Kind::kDouble:
        *static_cast<double*>(match->out) = std::strtod(text.c_str(), &end);
        break;
      case Kind::kUint64:
        *static_cast<std::uint64_t*>(match->out) = std::strtoull(text.c_str(), &end, 10);
        break;
      case Kind::kSwitch:
        break;  // handled above
    }
    if (end != nullptr && (end == text.c_str() || *end != '\0')) {
      fail("bad value '" + text + "' for --" + match->name);
    }
  }
  argc = kept;
  argv[argc] = nullptr;
  return *this;
}

std::string ExperimentOptions::default_of(const Spec& spec) const {
  switch (spec.kind) {
    case Kind::kString:
      return *static_cast<const std::string*>(spec.out);
    case Kind::kInt:
      return std::to_string(*static_cast<const int*>(spec.out));
    case Kind::kDouble: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%g", *static_cast<const double*>(spec.out));
      return buffer;
    }
    case Kind::kUint64:
      return std::to_string(*static_cast<const std::uint64_t*>(spec.out));
    case Kind::kSwitch:
      return {};
  }
  return {};
}

std::string ExperimentOptions::usage() const {
  std::string text = summary_;
  text += "\n\nusage: " + program_ + " [flags]\n";
  const auto row = [&text](const std::string& lhs, const std::string& help) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-26s %s\n", lhs.c_str(), help.c_str());
    text += line;
  };
  for (const auto& spec : specs_) {
    const std::string lhs =
        "--" + spec.name + (spec.kind == Kind::kSwitch ? "" : "=<value>");
    std::string help = spec.help;
    if (const std::string dflt = default_of(spec); !dflt.empty()) {
      help += " (default " + dflt + ")";
    }
    row(lhs, help);
  }
  row("--metrics-out=<path>", "write a metrics snapshot (.json or .csv) on exit");
  row("--verify[=strict]", "statically verify the deployment before running");
  row("--help", "show this message");
  return text;
}

int ExperimentOptions::write_metrics() const {
  if (metrics_path_.empty()) return 0;
  const auto snapshot = telemetry::MetricsSnapshot::capture(registry_);
  if (!snapshot.write_file(metrics_path_)) {
    std::fprintf(stderr, "failed to write metrics snapshot to %s\n", metrics_path_.c_str());
    return 1;
  }
  std::fprintf(stderr, "metrics snapshot (%zu series) written to %s\n", registry_.size(),
               metrics_path_.c_str());
  return 0;
}

namespace {

using monitors::EventGroupSet;

double existence_fraction(const monitors::GroundTruth& truth,
                          const monitors::PingmeshProber* prober, core::EventType type,
                          util::SimDuration rtt_threshold) {
  if (prober == nullptr) return 0.0;
  std::size_t total = 0, detected = 0;
  for (const auto& ev : truth.events()) {
    if (ev.type != type) continue;
    ++total;
    if (prober->anomaly_in_window(ev.at - util::milliseconds(1), ev.at + util::milliseconds(1),
                                  rtt_threshold)) {
      ++detected;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(detected) / static_cast<double>(total);
}

}  // namespace

WorkloadResult run_workload_experiment(const traffic::EmpiricalCdf& workload,
                                       const ExperimentConfig& config) {
  WorkloadResult result;
  result.workload = workload.name();

  scenarios::HarnessOptions options;
  options.seed = config.seed;
  options.topo.host_rate = config.host_rate;
  options.topo.fabric_rate = config.fabric_rate;
  options.enable_netsight = true;
  options.sampling_rates = {10, 100, 1000};
  options.enable_everflow = true;
  options.everflow.telemetry_flows = 1000;
  options.everflow.reselect_interval = util::milliseconds(5);  // scaled from 1 min
  options.enable_pingmesh = true;
  options.pingmesh_interval = util::milliseconds(2);  // scaled from 1 s
  options.enable_snmp = true;
  options.snmp_interval = util::milliseconds(5);
  scenarios::Harness harness{options};
  auto& tb = harness.testbed();
  auto& sim = harness.simulator();

  if (config.verify != VerifyMode::kOff) {
    verify::VerifyOptions verify_options;
    verify_options.strict = config.verify == VerifyMode::kStrict;
    const verify::Report report = harness.verify_deployment(verify_options);
    if (!report.ok(verify_options.strict)) {
      std::fputs(report.render_text().c_str(), stderr);
      std::fprintf(stderr, "experiment aborted: deployment failed static verification\n");
      std::exit(1);
    }
  }

  // The paper's traffic: every host talks to every other host, average
  // link utilization 70%.
  traffic::GeneratorConfig gen;
  gen.sizes = &workload;
  gen.load = config.load;
  gen.flow_rate = util::BitRate::bps(config.host_rate.bits_per_second() / 4);
  gen.stop = config.duration;
  harness.add_workload(gen);

  // Injected events (§5.2: "we manually inject inter-switch drop,
  // pipeline drop, and path change events").
  //
  // Inter-switch: a corrupting + silently dropping fabric link.
  const auto uplink_port = static_cast<util::PortId>(options.topo.hosts_per_tor);
  net::Link* bad_link = tb.tors[0]->link(uplink_port);
  (void)sim.schedule_at(config.duration / 4, [bad_link] {
    net::LinkFaultModel faults;
    faults.drop_prob = 0.005;
    faults.corrupt_prob = 0.002;
    bad_link->set_fault_model(faults);
  });
  (void)sim.schedule_at(config.duration * 3 / 4, [bad_link] {
    bad_link->set_fault_model(net::LinkFaultModel{});
  });

  // Pipeline drop: a parity-corrupted route entry on one agg blackholes
  // part of the ECMP spread toward one host.
  (void)sim.schedule_at(config.duration / 2, [&tb] {
    tb.aggs[1]->routes().set_corrupted(
        packet::Ipv4Prefix{tb.hosts[1]->addr(), 32}, true);
  });

  // Path change: a "network update" pins tor0-0's route toward hosts[8]
  // (which lives under tor0-1) to a single agg uplink; flows that were
  // ECMP'd onto the other uplink change paths.
  (void)sim.schedule_at(config.duration / 2, [&tb, uplink_port] {
    tb.tors[0]->routes().insert(packet::Ipv4Prefix{tb.hosts[8]->addr(), 32},
                                pdp::EcmpGroup{{uplink_port}});
  });

  // An incast burst guarantees MMU drops on top of natural congestion.
  std::vector<net::Host*> incast_senders(tb.hosts.begin() + 16, tb.hosts.begin() + 24);
  traffic::launch_incast(incast_senders, tb.hosts[9]->addr(), 200 * 1000, 1000,
                         config.duration / 3);

  harness.run_and_settle(config.duration + util::milliseconds(20));

  // ---- Score ---------------------------------------------------------------
  auto& truth = harness.truth();
  const auto netseer_all = harness.netseer_groups();
  auto* netsight = harness.monitor<monitors::NetSightMonitor>();
  auto* everflow = harness.monitor<monitors::EverflowMonitor>();
  auto* pingmesh = harness.monitor<monitors::PingmeshProber>();
  auto* snmp = harness.monitor<monitors::SnmpMonitor>();
  const auto netsight_drops = netsight->drop_groups();
  const auto everflow_drops = everflow->drop_groups();
  const auto threshold = options.netseer.congestion_threshold;

  const auto fill = [&](CoverageRow& row, const EventGroupSet& actual,
                        const EventGroupSet& ns_detected, const EventGroupSet& nsight,
                        const EventGroupSet& ef, const EventGroupSet& s10,
                        const EventGroupSet& s100, const EventGroupSet& s1000) {
    row.truth_groups = actual.size();
    row.netseer = scenarios::Harness::coverage(ns_detected, actual);
    row.netsight = scenarios::Harness::coverage(nsight, actual);
    row.everflow = scenarios::Harness::coverage(ef, actual);
    row.sample10 = scenarios::Harness::coverage(s10, actual);
    row.sample100 = scenarios::Harness::coverage(s100, actual);
    row.sample1000 = scenarios::Harness::coverage(s1000, actual);
  };

  const EventGroupSet empty;
  auto* s10 = harness.monitor<monitors::SamplingMonitor>(10);
  auto* s100 = harness.monitor<monitors::SamplingMonitor>(100);
  auto* s1000 = harness.monitor<monitors::SamplingMonitor>(1000);

  fill(result.pipeline_drop, truth.drop_groups(pdp::DropReason::kRouteMiss), netseer_all,
       netsight_drops, everflow_drops, empty, empty, empty);
  fill(result.mmu_drop, truth.drop_groups(pdp::DropReason::kCongestion), netseer_all,
       netsight_drops, everflow_drops, empty, empty, empty);
  {
    auto wire = truth.drop_groups(pdp::DropReason::kLinkLoss);
    for (const auto& g : truth.drop_groups(pdp::DropReason::kCorruption)) wire.insert(g);
    fill(result.interswitch_drop, wire, netseer_all, netsight_drops, everflow_drops, empty,
         empty, empty);
  }
  fill(result.congestion, truth.groups(core::EventType::kCongestion), netseer_all,
       netsight->congestion_groups(threshold), everflow->congestion_groups(threshold),
       s10->congestion_groups(threshold), s100->congestion_groups(threshold),
       s1000->congestion_groups(threshold));
  fill(result.path_change, truth.groups(core::EventType::kPathChange), netseer_all,
       netsight->path_groups(), everflow->path_groups(), s10->path_groups(),
       s100->path_groups(), s1000->path_groups());

  result.congestion.pingmesh_existence = existence_fraction(
      truth, pingmesh, core::EventType::kCongestion, util::microseconds(100));

  // ---- Overheads -------------------------------------------------------------
  const auto funnel = harness.total_funnel();
  result.funnel = funnel;
  result.traffic_bytes = funnel.traffic_bytes;
  const double traffic = std::max<double>(1.0, static_cast<double>(funnel.traffic_bytes));
  result.netseer_overhead = static_cast<double>(funnel.report_bytes) / traffic;
  result.netsight_overhead = static_cast<double>(netsight->overhead_bytes()) / traffic;
  result.everflow_overhead = static_cast<double>(everflow->overhead_bytes()) / traffic;
  result.sample10_overhead = static_cast<double>(s10->log().overhead_bytes()) / traffic;
  result.sample100_overhead = static_cast<double>(s100->log().overhead_bytes()) / traffic;
  result.sample1000_overhead = static_cast<double>(s1000->log().overhead_bytes()) / traffic;
  result.pingmesh_overhead = static_cast<double>(pingmesh->probe_bytes()) / traffic;
  result.snmp_overhead = static_cast<double>(snmp->overhead_bytes()) / traffic;
  result.netseer_events_stored = harness.store().size();

  // ---- Accuracy: zero FN / zero FP vs omniscient ground truth ----------------
  for (const auto type :
       {core::EventType::kDrop, core::EventType::kCongestion, core::EventType::kPathChange}) {
    const auto actual = truth.groups(type);
    const auto detected = harness.netseer_groups(type);
    for (const auto& group : actual) {
      if (!detected.contains(group)) result.netseer_zero_fn = false;
    }
    if (type == core::EventType::kPathChange) continue;  // expiry re-reports are legal
    for (const auto& group : detected) {
      if (!actual.contains(group)) result.netseer_zero_fp = false;
    }
  }

  if (config.metrics != nullptr) harness.collect_metrics(*config.metrics);
  return result;
}

}  // namespace netseer::bench
