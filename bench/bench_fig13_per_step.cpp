// Figure 13: (a) the fraction of traffic that is event packets (<10% in
// the paper) and (b) how much each NetSeer step shrinks the monitoring
// volume: selection >90%, deduplication ~95%, extraction ~98%, with the
// final report volume <0.01% of traffic.
#include "experiment.h"
#include "table.h"

using namespace netseer;
using namespace netseer::bench;

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 13 — per-step bandwidth overhead reduction"};
  cli.parse(argc, argv);
  print_title("Figure 13 — per-step bandwidth overhead reduction");
  print_paper("event packets <10%; dedup -95%; extraction -98%; total <0.01%");

  ExperimentConfig config;
  cli.configure(config);
  std::printf("\n  %-8s %12s %12s %12s %12s %12s\n", "workload", "event-pkt%", "dedup-cut",
              "extract-cut", "fp-cut", "overall");
  for (const auto* workload : traffic::all_workloads()) {
    const auto result = run_workload_experiment(*workload, config);
    const auto& funnel = result.funnel;

    // Step volumes in bytes, as if each stage's output were shipped raw.
    const double traffic = static_cast<double>(funnel.traffic_bytes);
    const double step1 = static_cast<double>(funnel.event_packet_bytes);
    const double avg_event_pkt =
        funnel.event_packets ? step1 / static_cast<double>(funnel.event_packets) : 0.0;
    const double step2 = static_cast<double>(funnel.dedup_reports) * avg_event_pkt;
    const double step3 = static_cast<double>(funnel.extracted_bytes);
    const double step4 = static_cast<double>(funnel.report_bytes);

    // Dedup is measured over eligible events only: path changes bypass
    // the group caches by design (§3.4), so including them would
    // understate the mechanism.
    const double dedup_cut =
        funnel.eligible_event_packets
            ? 1.0 - static_cast<double>(funnel.eligible_reports) /
                        static_cast<double>(funnel.eligible_event_packets)
            : 0.0;
    const auto cut = [](double before, double after) {
      return before > 0 ? 1.0 - after / before : 0.0;
    };
    std::printf("  %-8s %12s %12s %12s %12s %12s\n", result.workload.c_str(),
                pct(step1 / traffic).c_str(), pct(dedup_cut).c_str(),
                pct(cut(step2, step3)).c_str(), pct(cut(step3, step4)).c_str(),
                pct(step4 / traffic).c_str());
  }
  print_note("step volumes: selected event packets -> deduped flow events ->");
  print_note("24B extracted records -> CPU-filtered batched reports.");
  return cli.write_metrics();
}
