// Scalability (§3.2 "linearly scalable with network size" and the §5.2
// extrapolation: a 3-tier network of 400 switches / 10,000 servers emits
// at most 400 x 640 Mb/s = 256 Gb/s of monitoring traffic, 3 collector
// servers, 0.03% processing overhead).
//
// Two parts: (1) measured — run the same per-host workload on growing
// fat-trees and show per-switch NetSeer overhead stays flat (events
// scale with traffic, not with topology size); (2) analytic — the
// paper's own production extrapolation from the per-switch ceiling.
// Part (3), behind --shards=N: the parallel-engine figure. A 128-switch
// testbed is partitioned pod-aware (fabric::partition_testbed), tokens
// hop switch-to-switch through sim::ParallelSimulator with per-shard
// packet pools and telemetry registries, and the serial (1-shard,
// unthreaded) run gates the N-shard run: identical per-switch hop counts
// (determinism) and, against BENCH_parallel.json, an absolute serial
// events/sec floor plus a hardware-aware speedup floor. Results go
// through the --metrics-out telemetry snapshot, not stdout scraping.
#include <chrono>
#include <cstring>
#include <thread>

#include "core/netseer_app.h"
#include "fabric/fat_tree.h"
#include "fabric/partition.h"
#include "experiment.h"
#include "packet/builder.h"
#include "packet/pool.h"
#include "scenarios/harness.h"
#include "sim/parallel.h"
#include "table.h"
#include "telemetry/collect.h"
#include "traffic/generator.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

struct ScaleResult {
  int switches;
  int hosts;
  double traffic_mb;
  double overhead_ratio;
  double events_per_switch;
  double report_mbps_per_switch;
};

ScaleResult run_scale(int k_or_testbed, util::SimTime duration,
                      telemetry::Registry* metrics) {
  scenarios::HarnessOptions options;
  options.seed = 13;
  options.topo.host_rate = util::BitRate::gbps(5);
  options.topo.fabric_rate = util::BitRate::gbps(20);
  if (k_or_testbed > 0) {
    options.topo.num_pods = k_or_testbed;
    options.topo.aggs_per_pod = k_or_testbed / 2;
    options.topo.tors_per_pod = k_or_testbed / 2;
    options.topo.num_cores = (k_or_testbed / 2) * (k_or_testbed / 2);
    options.topo.hosts_per_tor = k_or_testbed / 2;
  }
  scenarios::Harness harness{options};
  auto& tb = harness.testbed();

  traffic::GeneratorConfig gen;
  gen.sizes = &traffic::web();
  gen.load = 0.5;
  gen.flow_rate = util::BitRate::gbps(1);
  gen.stop = duration;
  harness.add_workload(gen);

  // A lossy link + an incast so every event class exists at any scale.
  net::Link* bad = tb.tors[0]->link(static_cast<util::PortId>(options.topo.hosts_per_tor));
  net::LinkFaultModel faults;
  faults.drop_prob = 0.002;
  bad->set_fault_model(faults);
  std::vector<net::Host*> senders(tb.hosts.begin(),
                                  tb.hosts.begin() + std::min<std::size_t>(8, tb.hosts.size()));
  traffic::launch_incast(senders, tb.hosts.back()->addr(), 100 * 1000, 1000, duration / 2);

  harness.run_and_settle(duration + util::milliseconds(10));

  const auto funnel = harness.total_funnel();
  ScaleResult result;
  result.switches = static_cast<int>(tb.all_switches().size());
  result.hosts = static_cast<int>(tb.hosts.size());
  result.traffic_mb = static_cast<double>(funnel.traffic_bytes) / 1e6;
  result.overhead_ratio = funnel.overhead_ratio();
  result.events_per_switch =
      static_cast<double>(harness.store().size()) / result.switches;
  result.report_mbps_per_switch = static_cast<double>(funnel.report_bytes) * 8.0 /
                                  util::to_seconds(duration) / 1e6 / result.switches;
  if (metrics != nullptr) harness.collect_metrics(*metrics);
  return result;
}

// ---- Parallel engine figure (--shards=N) ----------------------------------

/// 128 switches: 8 pods x (4 agg + 8 ToR) + 32 cores, 1 us links — the
/// "datacenter-scale" topology of the ISSUE acceptance criteria.
fabric::TestbedConfig parallel_topology() {
  fabric::TestbedConfig config;
  config.num_pods = 8;
  config.aggs_per_pod = 4;
  config.tors_per_pod = 8;
  config.num_cores = 32;
  config.hosts_per_tor = 1;
  return config;
}

/// Token-hop workload on the parallel engine: every switch is an actor;
/// a fixed token population hops along real topology links (arrival ->
/// pipeline-latency egress -> link-delay send), with each hop carrying a
/// pooled Packet so cross-shard handoffs exercise the pools' remote
/// release path. All mutable state is per-actor or per-shard, so the
/// engine's determinism contract applies: per-switch hop counts must be
/// identical for every shard count.
struct ParallelBench {
  struct alignas(64) ActorState {
    std::uint64_t rng = 0;
    std::uint64_t hops = 0;
  };

  fabric::TestbedConfig topo;
  fabric::Testbed bed;  // topology source only; its own simulator is unused
  fabric::PartitionPlan plan;
  // Declared before the engine: events still queued at teardown hold
  // PooledPacket handles, so the pools must outlive the shards' slabs.
  std::vector<std::unique_ptr<packet::Pool>> pools;     // by shard
  std::vector<std::unique_ptr<telemetry::Registry>> registries;  // by shard
  sim::ParallelSimulator engine;
  std::vector<sim::ActorId> ids;                        // by switch index
  std::vector<std::vector<std::uint32_t>> neighbors;    // by switch index
  std::vector<ActorState> state;                        // by switch index

  ParallelBench(std::uint32_t shards, bool use_threads, std::uint64_t seed)
      : topo(parallel_topology()),
        bed(fabric::make_testbed(topo, /*seed=*/3)),
        plan(fabric::partition_testbed(bed, topo, shards)),
        engine(sim::ParallelConfig{shards, plan.lookahead, use_threads, 1024}) {
    const auto switches = bed.all_switches();
    state.resize(switches.size());
    std::unordered_map<util::NodeId, std::uint32_t> index_of;
    ids.reserve(switches.size());
    for (std::uint32_t i = 0; i < switches.size(); ++i) {
      index_of.emplace(switches[i]->id(), i);
      ids.push_back(engine.add_actor(plan.shard_of(switches[i]->id())));
      state[i].rng = seed * 0x9e3779b97f4a7c15ull + i;
    }
    neighbors.resize(switches.size());
    for (const auto& link : bed.net->links()) {
      const auto from = index_of.find(link->from_node());
      const auto to = index_of.find(link->peer().id());
      if (from == index_of.end() || to == index_of.end()) continue;
      neighbors[from->second].push_back(to->second);
    }
    for (std::uint32_t s = 0; s < shards; ++s) {
      pools.push_back(std::make_unique<packet::Pool>());
      registries.push_back(std::make_unique<telemetry::Registry>());
    }
  }

  static std::uint64_t rnd(ActorState& s) {
    s.rng = s.rng * 6364136223846793005ull + 1442695040888963407ull;
    return s.rng >> 33;
  }

  void arrival(std::uint32_t sw, packet::PooledPacket in) {
    in.reset();  // back to the SOURCE shard's pool — remote when cross-shard
    ++state[sw].hops;
    const util::SimTime at = engine.now_on(ids[sw]) + topo.pipeline_latency;
    (void)engine.schedule(ids[sw], at, [this, sw] { egress(sw); });
  }

  void egress(std::uint32_t sw) {
    ActorState& s = state[sw];
    const std::uint64_t r = rnd(s);
    const auto& out = neighbors[sw];
    const auto nb = out[r % out.size()];
    packet::Packet pkt;
    pkt.uid = packet::next_packet_uid();
    pkt.payload_bytes = static_cast<std::uint32_t>(64 + (r & 1023));
    auto slot = pools[plan.shard_of(bed.all_switches()[sw]->id())]->acquire(std::move(pkt));
    const util::SimTime at =
        engine.now_on(ids[sw]) + topo.link_delay + static_cast<util::SimDuration>(r % 256);
    engine.send(ids[sw], ids[nb], at,
                [this, nb, slot = std::move(slot)]() mutable { arrival(nb, std::move(slot)); });
  }

  /// Seed the token population and run. Tokens start at t >= 1; the t=0
  /// slot is reserved for each shard's pool-ownership bind.
  void run(int tokens_per_switch, util::SimTime horizon) {
    std::vector<bool> bound(engine.shards(), false);
    for (std::uint32_t sw = 0; sw < ids.size(); ++sw) {
      const std::uint32_t shard = engine.shard_of(ids[sw]);
      if (!bound[shard]) {
        bound[shard] = true;
        packet::Pool* pool = pools[shard].get();
        (void)engine.schedule(ids[sw], 0, [pool] { pool->bind_owner(); });
      }
      for (int t = 0; t < tokens_per_switch; ++t) {
        const util::SimTime at = 1 + static_cast<util::SimTime>(rnd(state[sw]) % 512);
        (void)engine.schedule(ids[sw], at, [this, sw] { egress(sw); });
      }
    }
    engine.run_until(horizon);
  }

  /// Fold the run into the per-shard registries (per-switch hop counters
  /// on each switch's owning shard), then merge every shard into `out` —
  /// the per-shard-registry -> merge_from flow the parallel engine
  /// prescribes. Returns the hop vector for determinism comparison.
  std::vector<std::uint64_t> finish(telemetry::Registry* out) {
    std::vector<std::uint64_t> hops;
    hops.reserve(state.size());
    const auto switches = bed.all_switches();
    for (std::uint32_t sw = 0; sw < state.size(); ++sw) {
      hops.push_back(state[sw].hops);
      registries[plan.shard_of(switches[sw]->id())]
          ->counter("scalability", "switch.hops", switches[sw]->id())
          .add(state[sw].hops);
    }
    if (out != nullptr) {
      for (const auto& reg : registries) out->merge_from(*reg);
    }
    return hops;
  }

  [[nodiscard]] std::uint64_t pool_remote_returns() const {
    std::uint64_t total = 0;
    for (const auto& pool : pools) total += pool->remote_returns();
    return total;
  }
};

struct ParallelRun {
  double best_wall = -1.0;
  std::uint64_t events = 0;
  std::vector<std::uint64_t> hops;
};

ParallelRun run_parallel(std::uint32_t shards, bool use_threads, int reps,
                         int tokens_per_switch, util::SimTime horizon,
                         telemetry::Registry* metrics) {
  ParallelRun result;
  for (int rep = 0; rep < reps; ++rep) {
    ParallelBench bench(shards, use_threads, /*seed=*/13);
    const auto start = std::chrono::steady_clock::now();
    bench.run(tokens_per_switch, horizon);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const auto hops = bench.finish(rep == 0 ? metrics : nullptr);
    // One pool-bind event per shard is setup, not workload — exclude it
    // so serial (1 bind) and sharded (N binds) counts are comparable.
    const std::uint64_t events = bench.engine.events_processed() - bench.engine.shards();
    if (rep == 0) {
      result.events = events;
      result.hops = hops;
    } else if (events != result.events || hops != result.hops) {
      std::fprintf(stderr, "non-deterministic parallel run at shards=%u rep %d\n", shards,
                   rep);
      std::exit(1);
    }
    if (result.best_wall < 0 || wall < result.best_wall) result.best_wall = wall;
    if (metrics != nullptr && rep == 0) {
      telemetry::collect(*metrics, bench.engine, wall);
      metrics->gauge("scalability", "parallel.pool_remote_returns")
          .update_max(static_cast<std::int64_t>(bench.pool_remote_returns()));
    }
  }
  return result;
}

// Pull one numeric field out of BENCH_parallel.json without a JSON
// parser (same scheme as bench_engine). Returns < 0 if absent.
double read_json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

int run_parallel_figure(std::uint32_t shards, int reps, int tokens_per_switch,
                        int duration_ms, const std::string& baseline_path,
                        double max_regression_pct, ExperimentOptions& cli) {
  const util::SimTime horizon = util::milliseconds(duration_ms);
  print_title("Parallel engine — sharded conservative execution, 128-switch testbed");
  print_paper("partition by switch; lookahead = min link delay (CMB conservative bound)");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("\n  shards requested  %u (hardware threads: %u)\n", shards, hw);

  const auto serial = run_parallel(1, /*use_threads=*/false, reps, tokens_per_switch,
                                   horizon, nullptr);
  const double serial_eps = static_cast<double>(serial.events) / serial.best_wall;
  std::printf("  serial (1 shard)  %llu events, best wall %.3fs (%.2fM events/s)\n",
              static_cast<unsigned long long>(serial.events), serial.best_wall,
              serial_eps / 1e6);

  const auto parallel = run_parallel(shards, /*use_threads=*/true, reps, tokens_per_switch,
                                     horizon, cli.sink());
  const double parallel_eps = static_cast<double>(parallel.events) / parallel.best_wall;
  const double speedup = parallel_eps / serial_eps;
  std::printf("  parallel          %llu events, best wall %.3fs (%.2fM events/s)\n",
              static_cast<unsigned long long>(parallel.events), parallel.best_wall,
              parallel_eps / 1e6);
  std::printf("  speedup           %.2fx\n", speedup);

  // Determinism gate: the sharded run must reproduce the serial run's
  // per-switch hop counts and total event count exactly.
  if (parallel.events != serial.events || parallel.hops != serial.hops) {
    std::fprintf(stderr, "DETERMINISM FAILURE: sharded run diverged from serial run\n");
    return 1;
  }
  std::printf("  determinism       ok (%zu per-switch hop counts identical)\n",
              parallel.hops.size());

  if (telemetry::Registry* sink = cli.sink()) {
    sink->gauge("scalability", "parallel.serial_events_per_sec")
        .update_max(static_cast<std::int64_t>(serial_eps));
    sink->gauge("scalability", "parallel.events_per_sec")
        .update_max(static_cast<std::int64_t>(parallel_eps));
    sink->gauge("scalability", "parallel.speedup_milli")
        .update_max(static_cast<std::int64_t>(speedup * 1000.0));
    sink->gauge("scalability", "parallel.shards")
        .update_max(static_cast<std::int64_t>(shards));
    sink->gauge("scalability", "parallel.hw_threads").update_max(hw);
  }

  if (!baseline_path.empty()) {
    FILE* f = std::fopen(baseline_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::string text;
    char buffer[4096];
    for (std::size_t n; (n = std::fread(buffer, 1, sizeof(buffer), f)) > 0;) {
      text.append(buffer, n);
    }
    std::fclose(f);

    const double baseline_serial = read_json_number(text, "baseline_serial_events_per_sec");
    if (baseline_serial <= 0) {
      std::fprintf(stderr, "no \"baseline_serial_events_per_sec\" in %s\n",
                   baseline_path.c_str());
      return 1;
    }
    const double serial_floor = baseline_serial * (1.0 - max_regression_pct / 100.0);
    std::printf("\n  serial baseline   %.0f events/s, floor %.0f (-%g%%)\n", baseline_serial,
                serial_floor, max_regression_pct);
    if (serial_eps < serial_floor) {
      std::fprintf(stderr, "PERF REGRESSION: serial %.0f events/s below the floor\n",
                   serial_eps);
      return 1;
    }

    // Speedup gate, hardware-aware: the checked-in target (4x at 8
    // shards per the acceptance criteria) applies when the machine has
    // the cores; with fewer cores the requirement scales as
    // per_core_floor x usable cores, and a single-core machine skips it
    // (conservative sharding cannot beat serial there).
    const double target = read_json_number(text, "target_speedup");
    const double per_core = read_json_number(text, "min_speedup_per_core");
    if (target > 0 && per_core > 0) {
      if (hw < 2) {
        std::printf("  speedup gate      skipped (single hardware thread)\n");
      } else {
        const double usable = static_cast<double>(std::min<unsigned>(shards, hw));
        const double required = std::min(target, per_core * usable);
        std::printf("  speedup floor     %.2fx (target %.2fx, %.2fx/core over %.0f cores)\n",
                    required, target, per_core, usable);
        if (speedup < required) {
          std::fprintf(stderr, "PERF REGRESSION: speedup %.2fx below required %.2fx\n",
                       speedup, required);
          return 1;
        }
      }
    }
    std::printf("  verdict           ok\n");
  }
  return cli.write_metrics();
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 0;
  int reps = 3;
  int tokens_per_switch = 4;
  int parallel_duration_ms = 4;
  std::string baseline_path;
  double max_regression_pct = 30.0;
  ExperimentOptions cli{"Scalability — per-switch NetSeer cost vs network size"};
  cli.flag("shards", &shards, "run ONLY the parallel-engine figure with this many shards")
      .flag("reps", &reps, "parallel figure: best wall time over this many reps")
      .flag("tokens-per-switch", &tokens_per_switch, "parallel figure: token population")
      .flag("parallel-duration-ms", &parallel_duration_ms, "parallel figure: simulated time")
      .flag("baseline", &baseline_path, "BENCH_parallel.json to gate regressions against")
      .flag("max-regression-pct", &max_regression_pct, "allowed serial events/sec drop")
      .parse(argc, argv);
  if (shards > 0) {
    return run_parallel_figure(static_cast<std::uint32_t>(shards), std::max(1, reps),
                               std::max(1, tokens_per_switch),
                               std::max(1, parallel_duration_ms), baseline_path,
                               max_regression_pct, cli);
  }
  print_title("Scalability — per-switch NetSeer cost vs network size");
  print_paper("distributed FET scales linearly: per-switch overhead independent of size");

  std::printf("\n  %-14s %8s %8s %12s %12s %16s\n", "topology", "switches", "hosts",
              "traffic MB", "overhead", "report Mb/s/sw");
  struct Row {
    const char* name;
    int k;
    util::SimTime duration;
  };
  for (const Row& row : {Row{"testbed(10sw)", 0, util::milliseconds(15)},
                         Row{"fat-tree k=4", 4, util::milliseconds(15)},
                         Row{"fat-tree k=6", 6, util::milliseconds(10)},
                         Row{"fat-tree k=8", 8, util::milliseconds(8)}}) {
    const auto result = run_scale(row.k, row.duration, cli.sink());
    std::printf("  %-14s %8d %8d %12.1f %12s %16.2f\n", row.name, result.switches,
                result.hosts, result.traffic_mb, pct(result.overhead_ratio).c_str(),
                result.report_mbps_per_switch);
  }

  print_title("Production extrapolation (§5.2)");
  print_paper("400 switches -> <=256 Gb/s monitoring traffic, 3 collectors, 0.03% overhead");
  const double per_switch_cap_mbps = 640.0;  // paper's 6.4 Tb/s switch at 0.01%
  const int switches = 400;
  const double total_gbps = per_switch_cap_mbps * switches / 1000.0;
  const int collectors = static_cast<int>(total_gbps / 100.0 + 1);
  std::printf("\n  %d switches x %.0f Mb/s ceiling = %.0f Gb/s monitoring traffic\n", switches,
              per_switch_cap_mbps, total_gbps);
  std::printf("  -> %d collector servers with 100G NICs; %.2f%% of 10,000 servers\n",
              collectors, 100.0 * collectors / 10000.0);
  return cli.write_metrics();
}
