// Scalability (§3.2 "linearly scalable with network size" and the §5.2
// extrapolation: a 3-tier network of 400 switches / 10,000 servers emits
// at most 400 x 640 Mb/s = 256 Gb/s of monitoring traffic, 3 collector
// servers, 0.03% processing overhead).
//
// Two parts: (1) measured — run the same per-host workload on growing
// fat-trees and show per-switch NetSeer overhead stays flat (events
// scale with traffic, not with topology size); (2) analytic — the
// paper's own production extrapolation from the per-switch ceiling.
#include "core/netseer_app.h"
#include "fabric/fat_tree.h"
#include "experiment.h"
#include "scenarios/harness.h"
#include "table.h"
#include "traffic/generator.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

struct ScaleResult {
  int switches;
  int hosts;
  double traffic_mb;
  double overhead_ratio;
  double events_per_switch;
  double report_mbps_per_switch;
};

ScaleResult run_scale(int k_or_testbed, util::SimTime duration,
                      telemetry::Registry* metrics) {
  scenarios::HarnessOptions options;
  options.seed = 13;
  options.topo.host_rate = util::BitRate::gbps(5);
  options.topo.fabric_rate = util::BitRate::gbps(20);
  if (k_or_testbed > 0) {
    options.topo.num_pods = k_or_testbed;
    options.topo.aggs_per_pod = k_or_testbed / 2;
    options.topo.tors_per_pod = k_or_testbed / 2;
    options.topo.num_cores = (k_or_testbed / 2) * (k_or_testbed / 2);
    options.topo.hosts_per_tor = k_or_testbed / 2;
  }
  scenarios::Harness harness{options};
  auto& tb = harness.testbed();

  traffic::GeneratorConfig gen;
  gen.sizes = &traffic::web();
  gen.load = 0.5;
  gen.flow_rate = util::BitRate::gbps(1);
  gen.stop = duration;
  harness.add_workload(gen);

  // A lossy link + an incast so every event class exists at any scale.
  net::Link* bad = tb.tors[0]->link(static_cast<util::PortId>(options.topo.hosts_per_tor));
  net::LinkFaultModel faults;
  faults.drop_prob = 0.002;
  bad->set_fault_model(faults);
  std::vector<net::Host*> senders(tb.hosts.begin(),
                                  tb.hosts.begin() + std::min<std::size_t>(8, tb.hosts.size()));
  traffic::launch_incast(senders, tb.hosts.back()->addr(), 100 * 1000, 1000, duration / 2);

  harness.run_and_settle(duration + util::milliseconds(10));

  const auto funnel = harness.total_funnel();
  ScaleResult result;
  result.switches = static_cast<int>(tb.all_switches().size());
  result.hosts = static_cast<int>(tb.hosts.size());
  result.traffic_mb = static_cast<double>(funnel.traffic_bytes) / 1e6;
  result.overhead_ratio = funnel.overhead_ratio();
  result.events_per_switch =
      static_cast<double>(harness.store().size()) / result.switches;
  result.report_mbps_per_switch = static_cast<double>(funnel.report_bytes) * 8.0 /
                                  util::to_seconds(duration) / 1e6 / result.switches;
  if (metrics != nullptr) harness.collect_metrics(*metrics);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentOptions cli{"Scalability — per-switch NetSeer cost vs network size"};
  cli.parse(argc, argv);
  print_title("Scalability — per-switch NetSeer cost vs network size");
  print_paper("distributed FET scales linearly: per-switch overhead independent of size");

  std::printf("\n  %-14s %8s %8s %12s %12s %16s\n", "topology", "switches", "hosts",
              "traffic MB", "overhead", "report Mb/s/sw");
  struct Row {
    const char* name;
    int k;
    util::SimTime duration;
  };
  for (const Row& row : {Row{"testbed(10sw)", 0, util::milliseconds(15)},
                         Row{"fat-tree k=4", 4, util::milliseconds(15)},
                         Row{"fat-tree k=6", 6, util::milliseconds(10)},
                         Row{"fat-tree k=8", 8, util::milliseconds(8)}}) {
    const auto result = run_scale(row.k, row.duration, cli.sink());
    std::printf("  %-14s %8d %8d %12.1f %12s %16.2f\n", row.name, result.switches,
                result.hosts, result.traffic_mb, pct(result.overhead_ratio).c_str(),
                result.report_mbps_per_switch);
  }

  print_title("Production extrapolation (§5.2)");
  print_paper("400 switches -> <=256 Gb/s monitoring traffic, 3 collectors, 0.03% overhead");
  const double per_switch_cap_mbps = 640.0;  // paper's 6.4 Tb/s switch at 0.01%
  const int switches = 400;
  const double total_gbps = per_switch_cap_mbps * switches / 1000.0;
  const int collectors = static_cast<int>(total_gbps / 100.0 + 1);
  std::printf("\n  %d switches x %.0f Mb/s ceiling = %.0f Gb/s monitoring traffic\n", switches,
              per_switch_cap_mbps, total_gbps);
  std::printf("  -> %d collector servers with 100G NICs; %.2f%% of 10,000 servers\n",
              collectors, 100.0 * collectors / 10000.0);
  return cli.write_metrics();
}
