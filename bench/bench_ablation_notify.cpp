// Ablation of §3.3's notification redundancy: NetSeer sends THREE copies
// of each loss notification on a high-priority queue so the notification
// survives the very link whose losses it reports. This bench sweeps the
// copy count against link loss rates and measures how many inter-switch
// drop events actually reach the backend.
#include "backend/collector.h"
#include "backend/event_store.h"
#include "core/netseer_app.h"
#include "core/nic_agent.h"
#include "fabric/network.h"
#include "experiment.h"
#include "packet/builder.h"
#include "table.h"
#include "telemetry/collect.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

struct Outcome {
  std::uint64_t dropped;
  std::uint64_t recovered;
};

Outcome run(int copies, double loss_both_ways, std::uint64_t seed,
            telemetry::Registry* metrics) {
  fabric::Network net(seed);
  pdp::SwitchConfig sc;
  sc.num_ports = 4;
  sc.port_rate = util::BitRate::gbps(10);
  auto& s1 = net.add_switch("s1", sc);
  auto& s2 = net.add_switch("s2", sc);
  auto& h1 = net.add_host("h1", packet::Ipv4Addr::from_octets(10, 0, 0, 1),
                          util::BitRate::gbps(10));
  auto& h2 = net.add_host("h2", packet::Ipv4Addr::from_octets(10, 0, 1, 1),
                          util::BitRate::gbps(10));
  net.connect_host(s1, 0, h1, util::microseconds(1));
  net.connect_host(s2, 0, h2, util::microseconds(1));
  auto [fwd, rev] = net.connect_switches(s1, 1, s2, 1, util::microseconds(1));
  net.compute_routes();

  core::ReportChannel channel(net.simulator(), util::Rng(3), util::milliseconds(1), 0.0);
  backend::EventStore store;
  backend::Collector collector(net.simulator(), 1000, channel, store);
  core::NetSeerConfig config;
  config.interswitch.notify_copies = copies;
  core::NetSeerApp app1(s1, config, &channel, 1000);
  core::NetSeerApp app2(s2, config, &channel, 1000);
  core::NetSeerNicAgent nic1, nic2;
  h1.set_nic_agent(&nic1);
  h2.set_nic_agent(&nic2);

  const packet::FlowKey flow{h1.addr(), h2.addr(), 6, 1000, 80};
  // Sync, then lossy window in BOTH directions (the notifications cross
  // the same sick link), then clean tail.
  for (int i = 0; i < 5; ++i) h1.send(packet::make_tcp(flow, 500));
  net.simulator().run();
  net::LinkFaultModel faults;
  faults.drop_prob = loss_both_ways;
  fwd->set_fault_model(faults);
  rev->set_fault_model(faults);
  for (int i = 0; i < 600; ++i) h1.send(packet::make_tcp(flow, 500));
  net.simulator().run();
  fwd->set_fault_model(net::LinkFaultModel{});
  rev->set_fault_model(net::LinkFaultModel{});
  for (int i = 0; i < 30; ++i) h1.send(packet::make_tcp(flow, 500));
  net.simulator().run();
  app1.flush();
  app2.flush();
  net.simulator().run();
  app1.flush();
  net.simulator().run();

  Outcome outcome{fwd->packets_dropped(), 0};
  for (const auto& stored : store.all()) {
    if (stored.event.type == core::EventType::kDrop &&
        stored.event.switch_id == s1.id()) {
      outcome.recovered += stored.event.counter;
    }
  }
  if (metrics != nullptr) {
    telemetry::collect(*metrics, app1);
    telemetry::collect(*metrics, app2);
    telemetry::collect(*metrics, collector);
    telemetry::collect(*metrics, store);
    telemetry::collect(*metrics, net.simulator(), 0.0);
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentOptions cli{"Ablation — loss-notification redundancy (x1/x2/x3 copies)"};
  cli.parse(argc, argv);
  print_title("Ablation — loss-notification redundancy (x1/x2/x3 copies)");
  print_paper("three redundant copies 'to protect their arrival at the upstream switch'");

  std::printf("\n  %-12s %8s %8s %8s\n", "link loss", "x1", "x2", "x3");
  for (const double loss : {0.01, 0.05, 0.10, 0.20, 0.30}) {
    std::printf("  %-11.0f%%", loss * 100);
    for (const int copies : {1, 2, 3}) {
      double recovered_sum = 0, dropped_sum = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto outcome = run(copies, loss, seed, cli.sink());
        recovered_sum += static_cast<double>(outcome.recovered);
        dropped_sum += static_cast<double>(outcome.dropped);
      }
      std::printf(" %7.1f%%", dropped_sum > 0 ? 100.0 * recovered_sum / dropped_sum : 100.0);
    }
    std::printf("\n");
  }
  print_note("cells: dropped packets whose flow was recovered at the upstream switch.");
  print_note("Notifications cross the lossy link too; redundancy keeps recovery high.");
  return cli.write_metrics();
}
