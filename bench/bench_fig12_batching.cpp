// Figure 12: circulating-event-batching capacity versus batch size.
// Paper: throughput rises with batch size to ~86 Meps / ~17.7 Gb/s.
// The analytic model is cross-checked by actually running the simulated
// CebpBatcher to saturation at a small scale.
#include "core/capacity.h"
#include "core/cebp.h"
#include "core/event_stack.h"
#include "experiment.h"
#include "table.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

/// Drive the real CebpBatcher at saturation and measure delivered eps.
double simulated_eps(int batch_size, telemetry::Registry* metrics) {
  sim::Simulator sim;
  core::EventStack stack(1 << 20);
  core::CebpConfig config;
  config.batch_size = batch_size;
  std::uint64_t delivered = 0;
  core::CebpBatcher batcher(sim, 1, stack, config,
                            [&](core::EventBatch&& batch) { delivered += batch.events.size(); });

  const auto flow = packet::FlowKey{packet::Ipv4Addr::from_octets(1, 1, 1, 1),
                                    packet::Ipv4Addr::from_octets(2, 2, 2, 2), 6, 1, 2};
  const auto ev = core::make_event(core::EventType::kDrop, flow, 1, 0);
  // Keep the stack saturated while the clock advances 2 ms.
  const util::SimTime horizon = util::milliseconds(2);
  for (util::SimTime t = 0; t < horizon; t += util::microseconds(50)) {
    (void)sim.schedule_at(t, [&] {
      while (stack.size() < 100000 && stack.push(ev)) {
      }
      // One notify per push in real operation; here a bulk refill wakes
      // every idle CEBP.
      for (int i = 0; i < config.num_cebps; ++i) batcher.notify();
    });
  }
  sim.run_until(horizon);
  const double eps = static_cast<double>(delivered) / util::to_seconds(horizon);
  if (metrics != nullptr) {
    metrics->counter("core", "cebp.recirculations").add(batcher.recirculations());
    metrics->counter("core", "cebp.events_batched").add(delivered);
    metrics->histogram("bench", "fig12.cebp_sim_meps").record(eps / 1e6);
  }
  return eps;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentOptions cli{"Figure 12 — event batching capacity vs batch size"};
  cli.parse(argc, argv);
  print_title("Figure 12 — event batching capacity vs batch size");
  print_paper("~86 Meps / 17.7 Gb/s around batch size 50-70");

  core::CebpConfig config;
  std::printf("\n  %-10s %12s %12s %14s\n", "batch", "model Meps", "model Gb/s",
              "simulated Meps");
  for (int batch : {1, 5, 10, 20, 30, 40, 50, 60, 70}) {
    const double model_eps = core::capacity::cebp_throughput_eps(config, batch);
    const double model_gbps = core::capacity::cebp_throughput_gbps(config, batch);
    const double sim_eps = simulated_eps(batch, cli.sink());
    std::printf("  %-10d %12.1f %12.2f %14.1f\n", batch, model_eps / 1e6, model_gbps,
                sim_eps / 1e6);
  }
  print_note("model: num_cebps * batch / (batch*recirc + flush); simulated: the actual");
  print_note("CebpBatcher run to saturation in virtual time.");
  return cli.write_metrics();
}
