#include "metrics_cli.h"

#include <cstdio>
#include <cstring>

namespace netseer::bench {

std::optional<std::string> take_flag(int& argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::optional<std::string> value;
    int consumed = 0;
    if (arg.size() > name.size() + 1 && arg.substr(0, name.size()) == name &&
        arg[name.size()] == '=') {
      value = std::string(arg.substr(name.size() + 1));
      consumed = 1;
    } else if (arg == name && i + 1 < argc) {
      value = std::string(argv[i + 1]);
      consumed = 2;
    }
    if (consumed == 0) continue;
    for (int j = i; j + consumed <= argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
    return value;
  }
  return std::nullopt;
}

std::optional<std::string> take_switch(int& argc, char** argv, std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::optional<std::string> value;
    if (arg == name) {
      value = std::string{};
    } else if (arg.size() > name.size() + 1 && arg.substr(0, name.size()) == name &&
               arg[name.size()] == '=') {
      value = std::string(arg.substr(name.size() + 1));
    } else {
      continue;
    }
    for (int j = i; j + 1 <= argc; ++j) argv[j] = argv[j + 1];
    argc -= 1;
    return value;
  }
  return std::nullopt;
}

MetricsCli::MetricsCli(int& argc, char** argv) {
  if (auto path = take_flag(argc, argv, "--metrics-out")) path_ = std::move(*path);
  if (auto mode = take_switch(argc, argv, "--verify")) {
    verify_ = true;
    verify_strict_ = (*mode == "strict");
    if (!mode->empty() && !verify_strict_) {
      std::fprintf(stderr, "ignoring unknown --verify mode '%s' (want --verify[=strict])\n",
                   mode->c_str());
    }
  }
}

int MetricsCli::write() const {
  if (path_.empty()) return 0;
  const auto snapshot = telemetry::MetricsSnapshot::capture(registry_);
  if (!snapshot.write_file(path_)) {
    std::fprintf(stderr, "failed to write metrics snapshot to %s\n", path_.c_str());
    return 1;
  }
  std::fprintf(stderr, "metrics snapshot (%zu series) written to %s\n", registry_.size(),
               path_.c_str());
  return 0;
}

}  // namespace netseer::bench
