// Ablation of partial deployment (§2.3): "a partial deployment of
// NetSeer to monitor flows of specific applications can also enable
// fine-grained network monitoring for these applications." Sweep the
// monitored fraction of the address space and measure report overhead
// and coverage of monitored vs unmonitored flows.
#include "core/netseer_app.h"
#include "experiment.h"
#include "scenarios/harness.h"
#include "table.h"
#include "traffic/generator.h"

using namespace netseer;
using namespace netseer::bench;

namespace {

struct Outcome {
  double overhead;
  double monitored_coverage;
  double unmonitored_coverage;
  std::uint64_t filtered;
};

Outcome run(int monitored_tors, telemetry::Registry* metrics) {
  scenarios::HarnessOptions options;
  options.seed = 17;
  options.topo.host_rate = util::BitRate::gbps(5);
  options.topo.fabric_rate = util::BitRate::gbps(20);
  // Monitor the address space of the first `monitored_tors` ToRs:
  // hosts are 10.<pod>.<tor>.x, i.e. /24 per ToR.
  for (int t = 0; t < monitored_tors; ++t) {
    options.netseer.monitored_prefixes.push_back(packet::Ipv4Prefix{
        packet::Ipv4Addr::from_octets(10, static_cast<std::uint8_t>(t / 2),
                                      static_cast<std::uint8_t>(t % 2), 0),
        24});
  }
  scenarios::Harness harness{options};
  auto& tb = harness.testbed();

  traffic::GeneratorConfig gen;
  gen.sizes = &traffic::web();
  gen.load = 0.5;
  gen.flow_rate = util::BitRate::gbps(1);
  gen.stop = util::milliseconds(15);
  harness.add_workload(gen);

  // Lossy fabric links on both a monitored ToR's uplink and the LAST
  // ToR's uplink (unmonitored unless all four ToRs are in scope), so the
  // filter demonstrably drops out-of-scope events.
  net::LinkFaultModel faults;
  faults.drop_prob = 0.003;
  tb.tors[0]->link(static_cast<util::PortId>(options.topo.hosts_per_tor))
      ->set_fault_model(faults);
  tb.tors[3]->link(static_cast<util::PortId>(options.topo.hosts_per_tor))
      ->set_fault_model(faults);

  harness.run_and_settle(util::milliseconds(25));

  const auto in_scope = [&](const packet::FlowKey& flow) {
    for (const auto& prefix : options.netseer.monitored_prefixes) {
      if (prefix.contains(flow.src) || prefix.contains(flow.dst)) return true;
    }
    return options.netseer.monitored_prefixes.empty();
  };

  std::size_t monitored_truth = 0, monitored_hit = 0;
  std::size_t unmonitored_truth = 0, unmonitored_hit = 0;
  const auto detected = harness.netseer_groups(core::EventType::kDrop);
  for (const auto& group : harness.truth().groups(core::EventType::kDrop)) {
    // Recover the flow key by membership query against detected groups;
    // ground-truth events carry the flow.
    (void)group;
  }
  for (const auto& ev : harness.truth().events()) {
    if (ev.type != core::EventType::kDrop) continue;
    const monitors::EventGroup group{ev.node, ev.flow.hash64(), core::EventType::kDrop};
    if (in_scope(ev.flow)) {
      ++monitored_truth;
      monitored_hit += detected.contains(group);
    } else {
      ++unmonitored_truth;
      unmonitored_hit += detected.contains(group);
    }
  }

  Outcome outcome;
  const auto funnel = harness.total_funnel();
  outcome.overhead = funnel.overhead_ratio();
  outcome.monitored_coverage =
      monitored_truth ? static_cast<double>(monitored_hit) / monitored_truth : 1.0;
  outcome.unmonitored_coverage =
      unmonitored_truth ? static_cast<double>(unmonitored_hit) / unmonitored_truth : -1.0;
  std::uint64_t filtered = 0;
  for (std::size_t i = 0; i < harness.app_count(); ++i) {
    filtered += harness.app(i).filtered_events();
  }
  outcome.filtered = filtered;
  if (metrics != nullptr) harness.collect_metrics(*metrics);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentOptions cli{"Ablation — partial deployment coverage and overhead"};
  cli.parse(argc, argv);
  print_title("Ablation — partial deployment (§2.3)");
  print_paper("monitoring only specific applications' flows still gives them full coverage");

  std::printf("\n  %-16s %10s %12s %14s %12s\n", "monitored ToRs", "overhead",
              "cov(monitored)", "cov(other)", "filtered ev");
  for (int tors : {4, 2, 1}) {
    const auto outcome = run(tors, cli.sink());
    std::printf("  %-16d %10s %12s %14s %12llu\n", tors, pct(outcome.overhead).c_str(),
                pct(outcome.monitored_coverage).c_str(),
                outcome.unmonitored_coverage < 0 ? "n/a"
                                                 : pct(outcome.unmonitored_coverage).c_str(),
                static_cast<unsigned long long>(outcome.filtered));
  }
  print_note("coverage of in-scope flows stays full while report overhead and event");
  print_note("volume shrink with the monitored fraction; out-of-scope events are filtered.");
  return cli.write_metrics();
}
